"""Figure 13 benchmark: parallel vs non-parallel iterations (threshold 0.3).

The parallel labeler must compress C crowdsourced pairs from C one-pair
iterations into a handful of front-loaded rounds.
"""

from __future__ import annotations

from repro.experiments.fig13_14_parallel_iterations import run


def test_figure13_paper(benchmark, paper_config, paper_prepared):
    result = benchmark.pedantic(
        run, args=(paper_config,), kwargs={"threshold": 0.3}, rounds=1, iterations=1
    )
    sizes = result.series["parallel_round_sizes"]
    total = sum(sizes)
    assert sizes[0] == max(sizes), "first round is the largest"
    assert sizes[0] > total / 2, "rounds are front-loaded"
    assert len(sizes) <= total / 5, "far fewer rounds than pairs"
    print("\n" + result.render())


def test_figure13_product(benchmark, product_config, product_prepared):
    result = benchmark.pedantic(
        run, args=(product_config,), kwargs={"threshold": 0.3}, rounds=1, iterations=1
    )
    sizes = result.series["parallel_round_sizes"]
    assert sizes[0] == max(sizes)
    assert len(sizes) < sum(sizes)
    print("\n" + result.render())
