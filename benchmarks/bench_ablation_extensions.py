"""Ablation: the future-work extensions on the Product workload.

* one-to-one rule — extra deductions on a strictly 1-1 bipartite catalogue;
* budget cap — the money/coverage curve, which must be concave-ish (early
  questions buy disproportionate coverage under the heuristic order).
"""

from __future__ import annotations

from repro.core.ordering import expected_order
from repro.core.sequential import label_sequential
from repro.datasets import ClusterSizeSpec, generate_product_dataset
from repro.ext.budget import coverage_curve
from repro.ext.one_to_one import label_sequential_one_to_one
from repro.matcher import CandidateGenerator, TfIdfCosine, word_tokens

ONE_TO_ONE_SPEC = ClusterSizeSpec.from_mapping({2: 200, 1: 80})


def one_to_one_workload(seed: int = 3):
    dataset = generate_product_dataset(spec=ONE_TO_ONE_SPEC, seed=seed)
    tokens = {rid: word_tokens(text) for rid, text in dataset.texts().items()}
    tfidf = TfIdfCosine(tokens.values())
    generator = CandidateGenerator(
        similarity=lambda a, b: tfidf.similarity(tokens[a], tokens[b]),
        tokens=tokens,
        source_of=dataset.source_of(),
        max_block_size=150,
    )
    candidates = expected_order(list(generator.generate(dataset.ids(), threshold=0.25)))
    return dataset, candidates


def test_one_to_one_rule_saves_questions(benchmark):
    dataset, candidates = one_to_one_workload()
    truth = dataset.truth_oracle()
    source_of = dataset.source_of()

    def run():
        return label_sequential_one_to_one(candidates, truth, source_of)

    one_to_one = benchmark(run)
    plain = label_sequential(candidates, truth)
    assert one_to_one.n_crowdsourced < plain.n_crowdsourced, (
        "the one-to-one rule must add savings on 1-1 data"
    )
    for pair, label in one_to_one.labels().items():
        assert label is truth.label(pair), "and stay sound on 1-1 truth"
    print(
        f"\nplain: {plain.n_crowdsourced} crowdsourced; "
        f"one-to-one: {one_to_one.n_crowdsourced} "
        f"({plain.n_crowdsourced - one_to_one.n_crowdsourced} saved)"
    )


def test_budget_coverage_curve(benchmark):
    dataset, candidates = one_to_one_workload(seed=4)
    truth = dataset.truth_oracle()
    full_cost = label_sequential(candidates, truth).n_crowdsourced
    budgets = [0, full_cost // 4, full_cost // 2, 3 * full_cost // 4, full_cost]

    def run():
        return coverage_curve(candidates, truth, budgets=budgets)

    curve = benchmark.pedantic(run, rounds=1, iterations=1)
    values = [curve[b] for b in budgets]
    assert values == sorted(values), "coverage is monotone in budget"
    assert values[-1] == 1.0, "the full budget resolves everything"
    assert values[2] >= 0.4 * values[-1], (
        "coverage roughly tracks spend; on 1-1 data (few deductions) it is "
        "close to linear rather than strongly concave"
    )
    print("\nbudget -> coverage: " + ", ".join(f"{b}:{curve[b]:.2f}" for b in budgets))
