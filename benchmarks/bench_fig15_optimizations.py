"""Figure 15 benchmark: instant-decision and non-matching-first.

Checks the availability shapes: the plain parallel labeler starves the
platform between rounds, ID keeps it stocked, ID+NF keeps it fullest; all
three crowdsource the same pairs.
"""

from __future__ import annotations

from repro.experiments.fig15_optimizations import run


def test_figure15_paper(benchmark, paper_config, paper_prepared):
    result = benchmark.pedantic(
        run, args=(paper_config,), kwargs={"threshold": 0.3}, rounds=1, iterations=1
    )
    plain = result.row_lookup(variant="parallel")
    with_id = result.row_lookup(variant="parallel_id")
    with_nf = result.row_lookup(variant="parallel_id_nf")
    assert with_id["starvation_events"] <= plain["starvation_events"]
    assert with_nf["mean_available"] >= plain["mean_available"]
    assert plain["crowdsourced"] == with_id["crowdsourced"] == with_nf["crowdsourced"]
    print("\n" + result.render())


def test_figure15_product(benchmark, product_config, product_prepared):
    result = benchmark.pedantic(
        run, args=(product_config,), kwargs={"threshold": 0.3}, rounds=1, iterations=1
    )
    plain = result.row_lookup(variant="parallel")
    with_id = result.row_lookup(variant="parallel_id")
    assert plain["starvation_events"] >= 1, "round boundaries drain the pool"
    assert with_id["starvation_events"] == 0, "ID keeps the pool stocked"
    print("\n" + result.render())
