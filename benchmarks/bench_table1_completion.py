"""Table 1 benchmark: Parallel(ID) vs Non-Parallel completion time.

Same HITs, same money; serial publication pays the crowd pickup latency per
HIT while parallel publication overlaps it — the speedup must be substantial.
"""

from __future__ import annotations

import pytest

from repro.experiments.table1_completion_time import run


def test_table1_paper(benchmark, paper_config, paper_prepared):
    result = benchmark.pedantic(
        run, args=(paper_config,), kwargs={"threshold": 0.3}, rounds=1, iterations=1
    )
    serial = result.row_lookup(strategy="non_parallel")
    parallel = result.row_lookup(strategy="parallel_id")
    assert parallel["n_hits"] == serial["n_hits"], "identical HITs by construction"
    assert parallel["cost_usd"] == pytest.approx(serial["cost_usd"])
    assert serial["hours"] > 2 * parallel["hours"], "parallel must be much faster"
    print("\n" + result.render())


def test_table1_product(benchmark, product_config, product_prepared):
    result = benchmark.pedantic(
        run, args=(product_config,), kwargs={"threshold": 0.3}, rounds=1, iterations=1
    )
    serial = result.row_lookup(strategy="non_parallel")
    parallel = result.row_lookup(strategy="parallel_id")
    assert serial["hours"] > parallel["hours"]
    print("\n" + result.render())
