"""Ablation: incremental deduction-sweep index vs the naive full scan.

The instant labeler re-checks pending pairs after every answer.  The
:class:`~repro.core.sweep.PendingPairIndex` narrows each re-check to pairs
whose endpoint clusters actually changed.  Both paths must produce identical
results; the index must not be slower.
"""

from __future__ import annotations

from repro.engine.dispatch import AnswerPolicy, InstantDispatch
from repro.core.ordering import expected_order


def _workload(prepared, threshold=0.3):
    return expected_order(prepared.candidates_above(threshold)), prepared.truth


def test_instant_labeler_with_index(benchmark, paper_prepared):
    order, truth = _workload(paper_prepared)
    labeler = InstantDispatch(
        instant_decision=True, answer_policy=AnswerPolicy.RANDOM, seed=0, use_index=True
    )
    run = benchmark.pedantic(lambda: labeler.run(order, truth), rounds=1, iterations=1)
    assert run.trace[-1].n_available == 0


def test_instant_labeler_naive_sweep(benchmark, paper_prepared):
    order, truth = _workload(paper_prepared)
    naive = InstantDispatch(
        instant_decision=True,
        answer_policy=AnswerPolicy.RANDOM,
        seed=0,
        use_index=False,
    )
    run = benchmark.pedantic(lambda: naive.run(order, truth), rounds=1, iterations=1)
    # identical outcome to the indexed run
    indexed = InstantDispatch(
        instant_decision=True, answer_policy=AnswerPolicy.RANDOM, seed=0, use_index=True
    ).run(order, truth)
    assert run.result.labels() == indexed.result.labels()
    assert run.trace == indexed.trace
