"""Figure 12 benchmark: crowdsourced pairs under different labeling orders.

Checks the paper's ordering hierarchy: optimal <= expected <= random <=
worst (up to noise), with the worst order blowing up at low thresholds.
"""

from __future__ import annotations

from repro.experiments.fig12_labeling_orders import run


def test_figure12_paper(benchmark, paper_config, paper_prepared):
    result = benchmark.pedantic(run, args=(paper_config,), rounds=1, iterations=1)
    for row in result.rows:
        assert row["optimal"] <= row["expected"]
        assert row["optimal"] <= row["random"]
        assert row["expected"] <= row["worst"]
    low = result.row_lookup(threshold=0.1)
    assert low["worst"] > 3 * low["optimal"], "worst order must blow up"
    print("\n" + result.render())


def test_figure12_product(benchmark, product_config, product_prepared):
    result = benchmark.pedantic(run, args=(product_config,), rounds=1, iterations=1)
    for row in result.rows:
        assert row["optimal"] <= row["expected"]
        assert row["expected"] <= row["worst"]
    print("\n" + result.render())


def test_figure12_expected_tracks_optimal(benchmark, paper_config, paper_prepared):
    """The heuristic order stays within a few percent of optimal — the
    paper's justification for using it everywhere."""
    result = benchmark.pedantic(run, args=(paper_config,), rounds=1, iterations=1)
    for row in result.rows:
        assert row["expected"] <= row["optimal"] * 1.25 + 5
