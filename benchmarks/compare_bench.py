"""Compare two BENCH_core.json artifacts and gate on timing regressions.

``bench_core_micro.py`` emits a machine-readable timing artifact
(``BENCH_core.json``) after every run; the committed copy in the repo root
is the *baseline* perf trajectory.  This tool diffs a freshly produced
artifact against that baseline, prints a per-metric table (optionally into
the GitHub Actions job summary), and exits non-zero when any tracked timing
regressed by more than the threshold — the CI ``bench-trajectory`` job runs
it on every push.

Tracked timings are the ``mean_s`` / ``total_s`` / ``*_s`` fields of each
result entry (lower is better); counters and derived speedups are reported
informationally but never gate.  A tracked timing that *disappears* from
the fresh artifact fails the gate too — losing a benchmark silently would
erode the trajectory; retire one by regenerating the committed baseline in
the same PR.  Two exemptions keep the gate honest across heterogeneous
runners:

* entries carrying a ``requires`` field name an optional dependency (e.g.
  the vectorized backend's ``"numpy"``); when such an entry is absent from
  one artifact it reports as *optional* instead of failing — the dependency
  simply was not installed on that runner;
* entries whose ``n_cpus`` fields disagree between the two artifacts (e.g.
  a baseline recorded on a 1-CPU container diffed on a 16-core runner)
  report as *hw-mismatch* and never gate: comparing parallel-scaling
  timings across different core counts asserts nothing about the code.

Single-sample timings (anything but a multi-round ``mean_s``) are gated at
``--single-sample-slack`` times the threshold, since one-shot totals carry
far more run-to-run variance than pytest-benchmark means.

Because the committed baseline usually comes from different hardware than
the CI runner, ``--calibrate`` rescales the baseline by a machine-speed
proxy before gating: ``--calibrate median`` (recommended; used in CI) uses
the median fresh/baseline ratio across all shared timings, which a single
genuine regression cannot shift, and exempts nothing; ``--calibrate
METRIC`` uses one designated metric's ratio and exempts that metric from
gating.

Usage:
    python benchmarks/compare_bench.py \
        --baseline BENCH_core.json.baseline --fresh BENCH_core.json \
        [--threshold 0.25] [--calibrate median] \
        [--summary "$GITHUB_STEP_SUMMARY"]
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from statistics import median
from typing import Dict, List, Optional, Tuple

#: Result fields treated as gated timings (seconds, lower is better).
TIMING_SUFFIX = "_s"
DEFAULT_THRESHOLD = 0.25


@dataclass(frozen=True)
class MetricDelta:
    """One (metric, field) timing comparison."""

    metric: str
    field: str
    baseline_s: Optional[float]
    fresh_s: Optional[float]
    calibrated: bool = False
    #: The entry declares an optional dependency (``requires`` field):
    #: absence from either artifact is tolerated, not a lost benchmark.
    optional: bool = False
    #: The two artifacts recorded different ``n_cpus`` for this entry, so
    #: its timings compare different hardware and never gate.
    hw_mismatch: bool = False

    @property
    def ratio(self) -> Optional[float]:
        """fresh / baseline, or None when either side is missing/zero."""
        if not self.baseline_s or self.fresh_s is None:
            return None
        return self.fresh_s / self.baseline_s

    @property
    def single_sample(self) -> bool:
        """True for one-shot timings (``total_s``, ``build_s``, ...); only
        ``mean_s`` comes from repeated pytest-benchmark rounds."""
        return self.field != "mean_s"

    def status(self, threshold: float, single_sample_slack: float = 1.0) -> str:
        """'new' | 'gone' | 'optional' | 'hw-mismatch' | 'calibration' |
        'ok' | 'faster' | 'regressed'.

        ``single_sample_slack`` widens the threshold for one-shot timings,
        which carry far more run-to-run variance than multi-round means.
        """
        if self.baseline_s is None:
            return "new"
        if self.fresh_s is None:
            return "optional" if self.optional else "gone"
        if self.calibrated:
            return "calibration"
        if self.hw_mismatch:
            return "hw-mismatch"
        ratio = self.ratio
        if ratio is None:
            return "ok"
        if self.single_sample:
            threshold *= single_sample_slack
        if ratio > 1.0 + threshold:
            return "regressed"
        if ratio < 1.0 - threshold:
            return "faster"
        return "ok"


def _timing_fields(entry: dict) -> Dict[str, float]:
    """The gated timing fields of one result entry."""
    return {
        key: value
        for key, value in entry.items()
        if key.endswith(TIMING_SUFFIX) and isinstance(value, (int, float))
    }


def _is_optional(*entries: dict) -> bool:
    """True when any side of the comparison declares an optional
    dependency via the ``requires`` field."""
    return any(isinstance(entry.get("requires"), str) for entry in entries)


def _is_hw_mismatch(baseline_entry: dict, fresh_entry: dict) -> bool:
    """True when both entries recorded ``n_cpus`` and they disagree — the
    timings then measure different hardware, not different code."""
    base_cpus = baseline_entry.get("n_cpus")
    fresh_cpus = fresh_entry.get("n_cpus")
    return (
        isinstance(base_cpus, int)
        and isinstance(fresh_cpus, int)
        and base_cpus != fresh_cpus
    )


def load_results(path: Path) -> Dict[str, dict]:
    """The ``results`` table of a BENCH artifact."""
    payload = json.loads(path.read_text())
    results = payload.get("results")
    if not isinstance(results, dict):
        raise ValueError(f"{path}: not a BENCH artifact (no 'results' table)")
    return results


def _shared_ratios(
    baseline: Dict[str, dict], fresh: Dict[str, dict]
) -> List[float]:
    """fresh/baseline ratios of every timing present in both artifacts.

    Entries with mismatched ``n_cpus`` are left out: their ratios reflect
    the core-count difference, not machine speed, and would skew the
    median calibration proxy.
    """
    ratios: List[float] = []
    for metric in baseline.keys() & fresh.keys():
        if _is_hw_mismatch(baseline[metric], fresh[metric]):
            continue
        base_fields = _timing_fields(baseline[metric])
        fresh_fields = _timing_fields(fresh[metric])
        for field in base_fields.keys() & fresh_fields.keys():
            if base_fields[field]:
                ratios.append(fresh_fields[field] / base_fields[field])
    return ratios


def compute_deltas(
    baseline: Dict[str, dict],
    fresh: Dict[str, dict],
    calibrate: Optional[str] = None,
) -> Tuple[List[MetricDelta], float]:
    """Compare every tracked timing of ``fresh`` against ``baseline``.

    ``calibrate`` is either ``"median"`` (scale the baseline by the median
    shared-timing ratio; no metric is exempted) or a metric name (scale by
    that metric's ratio; the metric itself is exempted from gating).

    Returns:
        (deltas sorted by metric/field, calibration scale applied to the
        baseline timings — 1.0 when not calibrating).

    Raises:
        ValueError: if calibration has nothing comparable to work with.
    """
    scale = 1.0
    if calibrate == "median":
        ratios = _shared_ratios(baseline, fresh)
        if not ratios:
            raise ValueError("median calibration needs at least one shared timing")
        scale = median(ratios)
        calibrate = None  # nothing is exempt: every metric still gates
    elif calibrate is not None:
        base_entry = _timing_fields(baseline.get(calibrate, {}))
        fresh_entry = _timing_fields(fresh.get(calibrate, {}))
        shared = sorted(base_entry.keys() & fresh_entry.keys())
        if not shared or not base_entry[shared[0]]:
            raise ValueError(
                f"calibration metric {calibrate!r} has no comparable timing "
                "in both artifacts"
            )
        scale = fresh_entry[shared[0]] / base_entry[shared[0]]
    deltas: List[MetricDelta] = []
    for metric in sorted(baseline.keys() | fresh.keys()):
        base_entry = baseline.get(metric, {})
        fresh_entry = fresh.get(metric, {})
        base_fields = _timing_fields(base_entry)
        fresh_fields = _timing_fields(fresh_entry)
        for field in sorted(base_fields.keys() | fresh_fields.keys()):
            deltas.append(
                MetricDelta(
                    metric=metric,
                    field=field,
                    baseline_s=(
                        base_fields[field] * scale if field in base_fields else None
                    ),
                    fresh_s=fresh_fields.get(field),
                    calibrated=metric == calibrate,
                    optional=_is_optional(base_entry, fresh_entry),
                    hw_mismatch=_is_hw_mismatch(base_entry, fresh_entry),
                )
            )
    return deltas, scale


DEFAULT_SINGLE_SAMPLE_SLACK = 2.0


def gate_failures(
    deltas: List[MetricDelta],
    threshold: float,
    single_sample_slack: float = DEFAULT_SINGLE_SAMPLE_SLACK,
) -> List[MetricDelta]:
    """The deltas that fail the gate: regressions, plus tracked timings that
    vanished from the fresh artifact (silently losing a benchmark erodes the
    trajectory; retire one by regenerating the committed baseline)."""
    return [
        d
        for d in deltas
        if d.status(threshold, single_sample_slack) in ("regressed", "gone")
    ]


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "—"
    if value < 1e-3:
        return f"{value * 1e6:.1f}µs"
    if value < 1.0:
        return f"{value * 1e3:.2f}ms"
    return f"{value:.3f}s"


_STATUS_ICON = {
    "ok": "✅ ok",
    "faster": "🚀 faster",
    "regressed": "❌ regressed",
    "new": "🆕 new",
    "gone": "❌ gone",
    "optional": "➖ optional",
    "hw-mismatch": "⚠️ hw-mismatch",
    "calibration": "⚖️ calibration",
}


def render_table(
    deltas: List[MetricDelta],
    threshold: float,
    scale: float,
    single_sample_slack: float = DEFAULT_SINGLE_SAMPLE_SLACK,
) -> str:
    """A GitHub-flavoured markdown report of every tracked timing."""
    lines = [
        "## Perf trajectory: BENCH_core.json vs committed baseline",
        "",
        f"Gate: fail on >{threshold:.0%} regression of any tracked mean timing, "
        f">{threshold * single_sample_slack:.0%} for single-sample timings"
        + (f"; baseline rescaled ×{scale:.3f} by calibration" if scale != 1.0 else "")
        + ".",
        "",
        "| metric | field | baseline | fresh | Δ | status |",
        "|---|---|---:|---:|---:|---|",
    ]
    for delta in deltas:
        ratio = delta.ratio
        change = f"{(ratio - 1.0) * 100:+.1f}%" if ratio is not None else "—"
        lines.append(
            f"| `{delta.metric}` | {delta.field} | {_fmt_seconds(delta.baseline_s)} "
            f"| {_fmt_seconds(delta.fresh_s)} | {change} "
            f"| {_STATUS_ICON[delta.status(threshold, single_sample_slack)]} |"
        )
    return "\n".join(lines) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, required=True, help="committed artifact")
    parser.add_argument("--fresh", type=Path, required=True, help="freshly produced artifact")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help=f"allowed fractional slowdown before failing (default {DEFAULT_THRESHOLD})",
    )
    parser.add_argument(
        "--calibrate",
        default=None,
        metavar="METRIC|median",
        help="rescale the baseline by a machine-speed proxy before gating: "
        "'median' uses the median shared-timing ratio (recommended; exempts "
        "nothing), a metric name uses that metric's ratio and exempts it",
    )
    parser.add_argument(
        "--single-sample-slack",
        type=float,
        default=DEFAULT_SINGLE_SAMPLE_SLACK,
        help="threshold multiplier for one-shot timings (every field except "
        f"mean_s), which carry more variance (default {DEFAULT_SINGLE_SAMPLE_SLACK})",
    )
    parser.add_argument(
        "--summary",
        type=Path,
        default=None,
        help="append the markdown table to this file (e.g. $GITHUB_STEP_SUMMARY)",
    )
    args = parser.parse_args(argv)

    baseline = load_results(args.baseline)
    fresh = load_results(args.fresh)
    deltas, scale = compute_deltas(baseline, fresh, calibrate=args.calibrate)
    table = render_table(deltas, args.threshold, scale, args.single_sample_slack)
    print(table)
    if args.summary is not None:
        with args.summary.open("a") as handle:
            handle.write(table)

    failed = gate_failures(deltas, args.threshold, args.single_sample_slack)
    if failed:
        for delta in failed:
            if delta.status(args.threshold, args.single_sample_slack) == "gone":
                print(
                    f"MISSING: {delta.metric}.{delta.field} "
                    f"(baseline {_fmt_seconds(delta.baseline_s)}) is no longer "
                    "emitted — restore the benchmark or regenerate the "
                    "committed baseline",
                    file=sys.stderr,
                )
            else:
                effective = args.threshold * (
                    args.single_sample_slack if delta.single_sample else 1.0
                )
                print(
                    f"REGRESSION: {delta.metric}.{delta.field} "
                    f"{_fmt_seconds(delta.baseline_s)} -> {_fmt_seconds(delta.fresh_s)} "
                    f"({(delta.ratio - 1.0) * 100:+.1f}% > +{effective:.0%})",
                    file=sys.stderr,
                )
        return 1
    print(f"perf trajectory OK: {len(deltas)} tracked timings within ±{args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
