"""Figure 14 benchmark: parallel labeling at threshold 0.4.

The paper's point for Figure 14: with a higher threshold the candidate graph
is sparser, so the parallel labeler needs no more (usually fewer) iterations
than at threshold 0.3.
"""

from __future__ import annotations

from repro.experiments.fig13_14_parallel_iterations import run


def test_figure14_paper(benchmark, paper_config, paper_prepared):
    result = benchmark.pedantic(
        run, args=(paper_config,), kwargs={"threshold": 0.4}, rounds=1, iterations=1
    )
    sizes = result.series["parallel_round_sizes"]
    assert sizes[0] == max(sizes)
    assert result.experiment_id == "figure14"
    print("\n" + result.render())


def test_figure14_fewer_or_equal_rounds_than_figure13(
    benchmark, product_config, product_prepared
):
    at_04 = benchmark.pedantic(
        run, args=(product_config,), kwargs={"threshold": 0.4}, rounds=1, iterations=1
    )
    at_03 = run(product_config, threshold=0.3)
    rounds_04 = len(at_04.series["parallel_round_sizes"])
    rounds_03 = len(at_03.series["parallel_round_sizes"])
    assert rounds_04 <= rounds_03, (
        f"higher threshold should not need more rounds ({rounds_04} vs {rounds_03})"
    )
    print("\n" + at_04.render())
