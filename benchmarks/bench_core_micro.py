"""Micro-benchmarks for the core data structures.

These quantify the constants behind the headline experiments: union-find
throughput, incremental ClusterGraph insertion, deduction queries, one
Algorithm-3 selection scan, the engine's incremental pending-pair frontier
against the pre-refactor full-rescan deduction sweep, and — at one million
candidate pairs — the sharded engine backend against the monolithic one,
the vectorized array-kernel backend against sharded (numpy installs only),
and the process-parallel and distributed (TCP socket) backends against
in-process sharding.

Machine-readable timings are emitted to ``BENCH_core.json`` in the repo
root after the session; ``compare_bench.py`` diffs that artifact against
the committed baseline in CI, so every PR extends the perf trajectory.
"""

from __future__ import annotations

import json
import platform as platform_module
import random
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import pytest

from repro.core.cluster_graph import ClusterGraph, ConflictPolicy
from repro.core.expected_cost import adaptive_expected_cost, expected_cost
from repro.core.oracle import GroundTruthOracle
from repro.core.ordering import expected_order
from repro.core.pairs import CandidatePair, Label, LabeledPair, Pair, candidate
from repro.core.parallel import parallel_crowdsourced_pairs
from repro.core.sweep import PendingPairIndex
from repro.core.union_find import UnionFind
from repro.crowd.aggregation import (
    WeightedAggregation,
    WorkerAccuracyTracker,
    summarize_assignments,
)
from repro.crowd.hit import HIT, Assignment
from repro.crowd.worker import LikelihoodAwareWorker
from repro.crowd.clients import (
    InMemoryCrowdBackend,
    ManualClock,
    PollingPlatformClient,
    SimulatedPlatformClient,
)
from repro.crowd.latency import ZeroLatency
from repro.crowd.platforms import RecordReplayBackend
from repro.crowd.platform import SimulatedPlatform
from repro.crowd.worker import make_worker_pool
from repro.datasets.distributions import ClusterSizeSpec
from repro.engine import (
    CrowdRuntime,
    HITDispatchAdapter,
    LabelingEngine,
    RuntimeMode,
    vectorized_available,
)

N_OBJECTS = 3000
N_PAIRS = 8000
# Answers driven through the sweep comparison (each costs the full-rescan
# path one O(pending) scan, so the cap bounds the benchmark's runtime).
SWEEP_STREAM_CAP = 1200

RESULTS: Dict[str, dict] = {}
_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_core.json"


def _record(name: str, **payload) -> None:
    RESULTS[name] = payload


def _timed(benchmark, name: str, fn):
    """Run ``fn`` under the benchmark fixture and harvest its mean timing."""
    result = benchmark(fn)
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    if stats is not None:
        _record(name, mean_s=stats.mean, rounds=stats.rounds)
    return result


@pytest.fixture(scope="module", autouse=True)
def _emit_artifact():
    """Write the machine-readable timing artifact after the module runs."""
    yield
    if not RESULTS:
        return
    _ARTIFACT.write_text(
        json.dumps(
            {
                "suite": "bench_core_micro",
                "config": {
                    "n_objects": N_OBJECTS,
                    "n_pairs": N_PAIRS,
                    "sweep_stream_cap": SWEEP_STREAM_CAP,
                },
                "python": platform_module.python_version(),
                "results": RESULTS,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )


def _workload(seed: int = 0):
    rng = random.Random(seed)
    entity_of = {i: rng.randrange(N_OBJECTS // 10) for i in range(N_OBJECTS)}
    truth = GroundTruthOracle(entity_of)
    pairs = []
    seen = set()
    while len(pairs) < N_PAIRS:
        a, b = rng.sample(range(N_OBJECTS), 2)
        pair = Pair(a, b)
        if pair not in seen:
            seen.add(pair)
            pairs.append(LabeledPair(pair, truth.label(pair)))
    return pairs, truth


PAIRS, TRUTH = _workload()


def test_union_find_unions(benchmark):
    edges = [(item.pair.left, item.pair.right) for item in PAIRS]

    def run():
        uf = UnionFind()
        for a, b in edges:
            uf.union(a, b)
        return uf.n_components

    components = _timed(benchmark, "union_find_unions", run)
    assert components >= 1


def test_cluster_graph_incremental_insert(benchmark):
    def run():
        graph = ClusterGraph()
        for item in PAIRS:
            graph.add(item.pair, item.label)
        return graph

    graph = _timed(benchmark, "cluster_graph_incremental_insert", run)
    assert graph.n_objects == N_OBJECTS or graph.n_objects > 0


def test_cluster_graph_deduce_queries(benchmark):
    graph = ClusterGraph(PAIRS)
    rng = random.Random(1)
    queries = [Pair(*rng.sample(range(N_OBJECTS), 2)) for _ in range(5000)]

    def run():
        return sum(1 for q in queries if graph.deduce(q) is not None)

    deduced = _timed(benchmark, "cluster_graph_deduce_queries", run)
    assert 0 <= deduced <= len(queries)


def test_algorithm3_selection_scan(benchmark):
    order = [item.pair for item in PAIRS]

    def run():
        return parallel_crowdsourced_pairs(order, labeled={})

    batch = _timed(benchmark, "algorithm3_selection_scan", run)
    assert 0 < len(batch) <= len(order)


# ----------------------------------------------------------------------
# incremental frontier vs the pre-refactor full-rescan sweep
# ----------------------------------------------------------------------
def _answer_stream() -> List[Tuple[Pair, Label]]:
    """The crowd answers a sequential run over the full workload produces,
    capped to bound the full-rescan driver's quadratic cost."""
    graph = ClusterGraph()
    stream: List[Tuple[Pair, Label]] = []
    for item in PAIRS:
        if graph.deduce(item.pair) is None:
            graph.add(item.pair, item.label)
            stream.append((item.pair, item.label))
            if len(stream) >= SWEEP_STREAM_CAP:
                break
    return stream


def _drive_full_rescan(stream: List[Tuple[Pair, Label]]) -> int:
    """Pre-refactor behaviour: after every answer, rescan every pending
    pair for deducibility — O(pending) per answer."""
    graph = ClusterGraph()
    pending = [item.pair for item in PAIRS]
    answered = set()
    for pair, label in stream:
        answered.add(pair)
        graph.add(pair, label)
        still: List[Pair] = []
        for waiting in pending:
            if waiting in answered or graph.deduce(waiting) is not None:
                continue
            still.append(waiting)
        pending = still
    return len(pending)


def _drive_incremental(stream: List[Tuple[Pair, Label]]) -> int:
    """Engine behaviour: the PendingPairIndex re-checks only pairs whose
    endpoint clusters changed."""
    graph = ClusterGraph()
    index = PendingPairIndex(graph, (item.pair for item in PAIRS))
    for pair, label in stream:
        index.remove(pair)
        graph.add(pair, label)
        index.note_objects_seen(pair.left, pair.right)
        index.sweep()
    return len(index)


def test_incremental_frontier_beats_full_rescan():
    """The refactor's headline perf claim, asserted on the largest
    configuration in this module: the incremental pending-pair frontier must
    beat the pre-refactor O(pending)-per-answer rescan — and resolve exactly
    the same pairs."""
    stream = _answer_stream()

    start = time.perf_counter()
    pending_full = _drive_full_rescan(stream)
    full_s = time.perf_counter() - start

    incremental_s = float("inf")
    for _ in range(3):  # best-of-3: the incremental path is fast enough
        start = time.perf_counter()
        pending_incremental = _drive_incremental(stream)
        incremental_s = min(incremental_s, time.perf_counter() - start)

    assert pending_incremental == pending_full
    _record(
        "pending_sweep_full_rescan",
        total_s=full_s,
        n_answers=len(stream),
        pending_left=pending_full,
    )
    _record(
        "pending_sweep_incremental",
        total_s=incremental_s,
        n_answers=len(stream),
        pending_left=pending_incremental,
    )
    _record(
        "pending_sweep_speedup",
        speedup=full_s / incremental_s if incremental_s else float("inf"),
    )
    # The gap is structural (O(dirty) vs O(pending) per answer; ~100x here),
    # so a 2x bar keeps the gate far from CI timing noise.
    assert full_s > incremental_s * 2, (
        f"incremental sweep ({incremental_s:.3f}s) must beat the full rescan "
        f"({full_s:.3f}s) on {len(stream)} answers over {N_PAIRS} pairs"
    )


def test_incremental_sweep_throughput(benchmark):
    """Steady-state timing of the incremental driver itself."""
    stream = _answer_stream()
    pending = _timed(
        benchmark, "incremental_sweep_throughput", lambda: _drive_incremental(stream)
    )
    assert 0 <= pending <= N_PAIRS


# ----------------------------------------------------------------------
# async crowd runtime vs the legacy synchronous campaign loop
# ----------------------------------------------------------------------
def _campaign_platform() -> SimulatedPlatform:
    """Deterministic HIT-granularity platform for the runtime comparison:
    perfect workers, zero latency, single assignment — the timing isolates
    the dispatch loop, not the worker simulation."""
    return SimulatedPlatform(
        workers=make_worker_pool(4, seed=3),
        truth=TRUTH,
        latency=ZeroLatency(),
        batch_size=20,
        n_assignments=1,
        seed=0,
    )


def _drive_legacy_sync_loop(candidates, platform):
    """The pre-async ``run_transitive`` body, frozen for comparison: the
    synchronous loop that *stepped* the simulator directly instead of
    awaiting completion events through a platform client."""
    engine = LabelingEngine(candidates, policy=ConflictPolicy.FIRST_WINS)

    def publish_chunk(chunk):
        platform.publish_pairs(chunk)

    adapter = HITDispatchAdapter(engine, publish_chunk, platform.batch_size)
    n_completions = 0
    adapter.select_new()
    adapter.flush(force=True)
    while not engine.is_done:
        if platform.n_outstanding_hits == 0:
            adapter.select_new()
            adapter.flush(force=True)
        completion = platform.step()
        assert completion is not None, "legacy campaign stalled"
        adapter.record_completion(list(completion.labels.items()), n_completions)
        adapter.sweep(n_completions)
        n_completions += 1
        if not engine.is_done:
            adapter.select_new()
    return engine, n_completions


def test_async_runtime_throughput_vs_legacy_loop():
    """The async-first refactor's overhead gate: completions applied per
    second through ``CrowdRuntime`` (asyncio event loop over the simulated
    platform client) versus the frozen legacy synchronous loop, on the same
    instant-decision campaign — with byte-identical labeling results."""
    candidates = [item.pair for item in PAIRS]

    start = time.perf_counter()
    legacy_engine, legacy_completions = _drive_legacy_sync_loop(
        candidates, _campaign_platform()
    )
    legacy_s = time.perf_counter() - start

    start = time.perf_counter()
    engine = LabelingEngine(candidates, policy=ConflictPolicy.FIRST_WINS)
    runtime = CrowdRuntime(
        engine,
        SimulatedPlatformClient(_campaign_platform()),
        mode=RuntimeMode.HIT_INSTANT,
    )
    report = runtime.run_sync()
    runtime_s = time.perf_counter() - start

    # Same code path, same platform seed => identical campaigns.
    assert engine.result.labels() == legacy_engine.result.labels()
    assert report.n_completions == legacy_completions

    _record(
        "async_runtime_legacy_loop",
        total_s=legacy_s,
        per_completion_s=legacy_s / legacy_completions,
        completions_per_sec=legacy_completions / legacy_s,
        n_completions=legacy_completions,
    )
    _record(
        "async_runtime_event_loop",
        total_s=runtime_s,
        per_completion_s=runtime_s / report.n_completions,
        completions_per_sec=report.n_completions / runtime_s,
        n_completions=report.n_completions,
    )
    _record(
        "async_runtime_overhead",
        ratio=runtime_s / legacy_s if legacy_s else float("inf"),
        n_pairs=len(candidates),
    )
    # The event loop adds scheduling overhead per completion (~12%
    # observed); the committed-baseline trajectory gate (compare_bench.py,
    # calibrated ±25%) polices drift, so this in-test bar is only a
    # catastrophic-regression backstop kept far from single-sample noise.
    assert runtime_s < legacy_s * 5, (
        f"CrowdRuntime ({runtime_s:.3f}s) must stay within 5x of the legacy "
        f"synchronous loop ({legacy_s:.3f}s) on {legacy_completions} completions"
    )


# ----------------------------------------------------------------------
# sharded vs monolithic engine backend at 1M+ candidate pairs
# ----------------------------------------------------------------------
# A blocked entity-resolution workload built from the datasets package's
# cluster-size machinery: every block holds a histogram of ground-truth
# clusters (all within-cluster pairs are candidates) plus cross-cluster
# near-miss pairs, mimicking what blocking emits.  Blocks share no objects,
# so the candidate graph has many components — the shape sharding exploits.
SHARD_BLOCK_SPEC = ClusterSizeSpec.from_mapping({8: 8, 4: 20, 2: 40, 1: 60})
SHARD_N_BLOCKS = 1024
SHARD_CROSS_PER_BLOCK = 640
# 1024 blocks x (384 within-cluster + 640 cross) = 1,048,576 pairs.
SHARD_N_PAIRS = SHARD_N_BLOCKS * (
    SHARD_BLOCK_SPEC.n_matching_pairs() + SHARD_CROSS_PER_BLOCK
)
# Answer events driven through the instant-decision loop per backend (each
# costs the monolithic path one O(order) frontier scan, so this caps the
# benchmark's runtime).
SHARD_N_EVENTS = 8


_SHARDED_WORKLOAD_CACHE: Optional[tuple] = None

#: Per-session cache of full ``_drive_backend`` results at the 1M-pair
#: scale, so the vectorized benchmark can reuse the sharded drive from the
#: sharded-vs-monolithic test instead of paying for a second one.
_SCALE_DRIVES: Dict[str, dict] = {}


def _sharded_workload_cached():
    """Build the 1M-pair blocked workload once per session (both the
    sharded-vs-monolithic and the parallel-vs-sharded benchmarks use it)."""
    global _SHARDED_WORKLOAD_CACHE
    if _SHARDED_WORKLOAD_CACHE is None:
        _SHARDED_WORKLOAD_CACHE = _sharded_workload()
    return _SHARDED_WORKLOAD_CACHE


def _sharded_workload(seed: int = 0):
    """(candidates sorted by likelihood, ground-truth oracle)."""
    rng = random.Random(seed)
    entity_of: Dict[int, int] = {}
    candidates: List[CandidatePair] = []
    next_obj = 0
    next_entity = 0
    for _ in range(SHARD_N_BLOCKS):
        block_start = next_obj
        clusters: List[range] = []
        for size in SHARD_BLOCK_SPEC.sizes():
            members = range(next_obj, next_obj + size)
            next_obj += size
            for obj in members:
                entity_of[obj] = next_entity
            next_entity += 1
            clusters.append(members)
        for members in clusters:
            for i, a in enumerate(members):
                for b in members[i + 1 :]:
                    candidates.append(
                        CandidatePair(Pair(a, b), rng.uniform(0.5, 1.0))
                    )
        seen = set()
        while len(seen) < SHARD_CROSS_PER_BLOCK:
            a = rng.randrange(block_start, next_obj)
            b = rng.randrange(block_start, next_obj)
            if a == b or entity_of[a] == entity_of[b]:
                continue
            pair = Pair(a, b)
            if pair not in seen:
                seen.add(pair)
                candidates.append(CandidatePair(pair, rng.uniform(0.0, 0.5)))
    # The paper's heuristic order: descending machine likelihood.  The sort
    # is stable and the likelihoods are draws from a seeded RNG, so the
    # order is deterministic.
    candidates.sort(key=lambda cand: -cand.likelihood)
    return candidates, GroundTruthOracle(entity_of)


def _drive_backend(backend: str, candidates, truth, answers=None):
    """Build an engine, publish the round-1 frontier, then run answer events
    through the instant-decision sweep+frontier path.

    Returns a dict with timings, the frontiers observed, the final labeled
    map, and engine statistics — everything the cross-backend parity
    assertions and the artifact entry need.
    """
    start = time.perf_counter()
    engine = LabelingEngine(candidates, backend=backend)
    build_s = time.perf_counter() - start

    start = time.perf_counter()
    first_frontier = engine.frontier()
    first_frontier_s = time.perf_counter() - start

    if answers is None:
        answers = first_frontier[:SHARD_N_EVENTS]
    # Round 1 publishes the whole frontier (Algorithm 2); answers then
    # arrive one at a time and each triggers the instant-decision path:
    # fold the answer in, sweep deductions, recompute the frontier.
    engine.publish(first_frontier)
    engine.frontier()  # re-cache after the publish (untimed warm-up)
    event_frontiers: List[List[Pair]] = []
    start = time.perf_counter()
    for round_index, pair in enumerate(answers):
        engine.record_answer(pair, truth.label(pair), round_index)
        engine.sweep(round_index)
        event_frontiers.append(engine.frontier())
    event_loop_s = time.perf_counter() - start

    stats = {
        "build_s": build_s,
        "first_frontier_s": first_frontier_s,
        "event_loop_s": event_loop_s,
        "per_event_s": event_loop_s / len(answers),
        "n_pairs": len(engine.pairs),
        "n_events": len(answers),
        "n_labeled": len(engine.labeled),
    }
    if backend == "sharded":
        stats["n_shards"] = engine.graph.n_shards
        stats["n_frontier_components"] = engine._sharded_frontier.n_components
    elif backend == "vectorized":
        stats["n_components"] = engine._vectorized.n_components
    return {
        "stats": stats,
        "first_frontier": first_frontier,
        "event_frontiers": event_frontiers,
        "labeled": dict(engine.labeled),
        "answers": list(answers),
    }


def test_sharded_backend_beats_monolithic_at_1m_pairs():
    """The tentpole claim, measured end to end at >=1M candidate pairs: with
    the order partitioned into components, the sharded backend's per-answer
    sweep+frontier work touches only the affected shard, while the
    monolithic backend re-scans the whole remaining order — and both
    backends observe byte-identical labeling behaviour."""
    candidates, truth = _sharded_workload_cached()
    assert len(candidates) >= 1_000_000

    monolithic = _drive_backend("monolithic", candidates, truth)
    sharded = _drive_backend(
        "sharded", candidates, truth, answers=monolithic["answers"]
    )
    _SCALE_DRIVES["sharded"] = sharded

    # Backend parity at scale: same round-1 frontier, same frontier after
    # every answer event, same final labels (answers + cascaded deductions).
    assert sharded["first_frontier"] == monolithic["first_frontier"]
    assert sharded["event_frontiers"] == monolithic["event_frontiers"]
    assert sharded["labeled"] == monolithic["labeled"]

    _record(
        "sharded_scale_monolithic",
        **monolithic["stats"],
        n_frontier_round1=len(monolithic["first_frontier"]),
    )
    _record(
        "sharded_scale_sharded",
        **sharded["stats"],
        n_frontier_round1=len(sharded["first_frontier"]),
    )
    mono_s = monolithic["stats"]["event_loop_s"]
    shard_s = sharded["stats"]["event_loop_s"]
    _record(
        "sharded_scale_speedup",
        event_loop_speedup=mono_s / shard_s if shard_s else float("inf"),
        n_pairs=len(candidates),
    )
    # The gap is structural — O(component) vs O(order) per answer event — so
    # a 3x bar keeps the gate far from timing noise (observed ~100x).
    assert mono_s > shard_s * 3, (
        f"sharded event loop ({shard_s:.3f}s) must beat monolithic "
        f"({mono_s:.3f}s) on {SHARD_N_EVENTS} answers over {len(candidates)} pairs"
    )


def test_vectorized_backend_beats_sharded_at_1m_pairs():
    """The array-kernel tentpole, measured end to end at >=1M candidate
    pairs: the vectorized backend replaces the sharded backend's per-answer
    Python sweep (one ``deduce`` call per dirty pending pair) with one bulk
    array pass per dirty component, and its Algorithm-3 frontier with the
    Boruvka spanning-forest kernel — with byte-identical labeling behaviour.

    The artifact entries carry ``requires: "numpy"`` so the trajectory gate
    (compare_bench.py) treats them as optional: on a numpy-less runner the
    whole test skips and the entries are simply absent.
    """
    if not vectorized_available():
        pytest.skip("numpy unavailable: the vectorized backend is the perf extra")
    import numpy

    from repro.engine.parallel import available_cpus

    candidates, truth = _sharded_workload_cached()
    assert len(candidates) >= 1_000_000

    sharded = _SCALE_DRIVES.get("sharded")
    if sharded is None:  # standalone invocation (-k vectorized)
        sharded = _SCALE_DRIVES["sharded"] = _drive_backend(
            "sharded", candidates, truth
        )
    vectorized = _drive_backend(
        "vectorized", candidates, truth, answers=sharded["answers"]
    )

    # Backend parity at scale: same round-1 frontier, same frontier after
    # every answer event, same final labels (answers + cascaded deductions).
    assert vectorized["first_frontier"] == sharded["first_frontier"]
    assert vectorized["event_frontiers"] == sharded["event_frontiers"]
    assert vectorized["labeled"] == sharded["labeled"]

    _record(
        "vectorized_scale_vectorized",
        **vectorized["stats"],
        n_frontier_round1=len(vectorized["first_frontier"]),
        n_cpus=available_cpus(),
        requires="numpy",
        numpy_version=numpy.__version__,
    )
    shard_s = sharded["stats"]["event_loop_s"]
    vec_s = vectorized["stats"]["event_loop_s"]
    _record(
        "vectorized_scale_speedup",
        event_loop_speedup=shard_s / vec_s if vec_s else float("inf"),
        n_pairs=len(candidates),
        requires="numpy",
        numpy_version=numpy.__version__,
    )
    # The per-event loop is ~99% sweep+frontier on both backends (the
    # record_answer bookkeeping is O(alpha)); observed ~80x, gated at 5x to
    # stay far from timing noise.
    assert shard_s > vec_s * 5, (
        f"vectorized event loop ({vec_s:.3f}s) must be >=5x faster than "
        f"sharded ({shard_s:.3f}s) on {SHARD_N_EVENTS} answers over "
        f"{len(candidates)} pairs"
    )


# ----------------------------------------------------------------------
# process-parallel vs in-process sharded backend at 1M+ candidate pairs
# ----------------------------------------------------------------------
# The parallel backend fans per-component sweeps and frontier recomputes
# across worker processes, so its win appears when one event dirties *many*
# components at once — the shape of a real campaign tick, where a burst of
# completions lands between frontier recomputes.  Each timed tick applies a
# batch of answers spread across components (untimed bookkeeping), then runs
# one sweep + one frontier recompute (timed: that is the work that fans out).
PARALLEL_WORKERS = 4
PARALLEL_EVENTS_PER_TICK = 32
PARALLEL_TICKS = 4


#: Cache of per-backend campaign-tick drives, so the parallel and
#: distributed scale tests share one in-process sharded baseline run.
_TICK_DRIVES: Dict[str, dict] = {}


def _drive_parallel_scale(backend: str, candidates, truth, answer_ticks=None):
    """Drive ``backend`` through the batched campaign-tick loop; returns
    timings plus everything the cross-backend parity assertions need."""
    from repro.engine.parallel import available_cpus

    if backend == "distributed":
        # Local worker hosts over loopback sockets: the real wire protocol,
        # same worker count as the pipe executor.
        backend_kwargs = dict(spawn_local_workers=PARALLEL_WORKERS)
    else:
        backend_kwargs = dict(parallel_threshold=0, n_workers=PARALLEL_WORKERS)
    start = time.perf_counter()
    engine = LabelingEngine(candidates, backend=backend, **backend_kwargs)
    build_s = time.perf_counter() - start
    try:
        start = time.perf_counter()
        first_frontier = engine.frontier()
        first_frontier_s = time.perf_counter() - start

        if answer_ticks is None:
            # Stride-sample the frontier so each tick's answers land in many
            # distinct components (deterministic: the frontier is).
            n_answers = PARALLEL_EVENTS_PER_TICK * PARALLEL_TICKS
            stride = max(1, len(first_frontier) // n_answers)
            sampled = first_frontier[::stride][:n_answers]
            answer_ticks = [
                sampled[i : i + PARALLEL_EVENTS_PER_TICK]
                for i in range(0, len(sampled), PARALLEL_EVENTS_PER_TICK)
            ]
        engine.publish(first_frontier)
        engine.frontier()  # re-cache after the publish (untimed warm-up)

        apply_s = 0.0
        sweep_frontier_s = 0.0
        tick_sweeps: List[List[Tuple[Pair, Label]]] = []
        tick_frontiers: List[List[Pair]] = []
        for tick, batch in enumerate(answer_ticks):
            start = time.perf_counter()
            for pair in batch:
                engine.record_answer(pair, truth.label(pair), tick)
            mid = time.perf_counter()
            tick_sweeps.append(engine.sweep(tick))
            tick_frontiers.append(engine.frontier())
            done = time.perf_counter()
            apply_s += mid - start
            sweep_frontier_s += done - mid

        n_events = sum(len(batch) for batch in answer_ticks)
        stats = {
            "build_s": build_s,
            "first_frontier_s": first_frontier_s,
            "answer_apply_s": apply_s,
            "sweep_frontier_s": sweep_frontier_s,
            "per_tick_s": sweep_frontier_s / len(answer_ticks),
            "n_pairs": len(engine.pairs),
            "n_events": n_events,
            "n_ticks": len(answer_ticks),
            "n_labeled": len(engine.labeled),
            "n_cpus": available_cpus(),
        }
        if backend in ("parallel", "distributed"):
            stats["n_workers"] = engine.executor.n_workers
            stats["n_components"] = engine.executor.n_components
        return {
            "stats": stats,
            "first_frontier": first_frontier,
            "tick_sweeps": tick_sweeps,
            "tick_frontiers": tick_frontiers,
            "labeled": dict(engine.labeled),
            "answer_ticks": answer_ticks,
        }
    finally:
        engine.close()


def test_parallel_backend_scales_sweep_and_frontier():
    """The process-parallel tentpole, measured at >=1M candidate pairs:
    batched sweep+frontier ticks fan out across worker processes, and both
    backends observe byte-identical labeling behaviour.  The >=2x throughput
    bar applies where the hardware can express it (>=4 CPUs, as on the CI
    bench runner); on smaller hosts the timings are recorded without gating
    and the artifact's ``n_cpus`` field says why.
    """
    from repro.engine.parallel import available_cpus

    candidates, truth = _sharded_workload_cached()
    assert len(candidates) >= 1_000_000

    sharded = _TICK_DRIVES.get("sharded")
    if sharded is None:
        sharded = _TICK_DRIVES["sharded"] = _drive_parallel_scale(
            "sharded", candidates, truth
        )
    parallel = _drive_parallel_scale(
        "parallel", candidates, truth, answer_ticks=sharded["answer_ticks"]
    )

    # Cross-backend parity at scale: same round-1 frontier, same deductions
    # and frontier after every tick, same final labels.
    assert parallel["first_frontier"] == sharded["first_frontier"]
    assert parallel["tick_sweeps"] == sharded["tick_sweeps"]
    assert parallel["tick_frontiers"] == sharded["tick_frontiers"]
    assert parallel["labeled"] == sharded["labeled"]

    _record("parallel_scale_sharded", **sharded["stats"])
    _record("parallel_scale_parallel", **parallel["stats"])
    shard_s = sharded["stats"]["sweep_frontier_s"]
    par_s = parallel["stats"]["sweep_frontier_s"]
    n_cpus = available_cpus()
    _record(
        "parallel_scale_speedup",
        sweep_frontier_speedup=shard_s / par_s if par_s else float("inf"),
        n_pairs=len(candidates),
        n_workers=PARALLEL_WORKERS,
        n_cpus=n_cpus,
    )
    if n_cpus >= 4:
        assert shard_s > par_s * 2, (
            f"parallel sweep+frontier ({par_s:.3f}s) must be >=2x faster than "
            f"in-process sharded ({shard_s:.3f}s) on {n_cpus} CPUs with "
            f"{PARALLEL_WORKERS} workers at {len(candidates)} pairs"
        )


def test_distributed_backend_scales_sweep_and_frontier():
    """The socket transport at >=1M candidate pairs: local ``ShardWorkerHost``
    processes over loopback TCP run the same batched campaign-tick loop as
    the pipe executor, byte-identical to in-process sharding.  The fan-out
    win must survive the JSON-over-socket framing: gated at >=1.5x over
    in-process sharding on a >=4-CPU host (the pipe executor's bar is 2x;
    the lower bar is the documented transport overhead budget).  On smaller
    hosts the timings are recorded without gating and the artifact's
    ``n_cpus`` field says why.
    """
    from repro.engine.parallel import available_cpus

    candidates, truth = _sharded_workload_cached()
    assert len(candidates) >= 1_000_000

    sharded = _TICK_DRIVES.get("sharded")
    if sharded is None:  # standalone invocation (-k distributed)
        sharded = _TICK_DRIVES["sharded"] = _drive_parallel_scale(
            "sharded", candidates, truth
        )
    distributed = _drive_parallel_scale(
        "distributed", candidates, truth, answer_ticks=sharded["answer_ticks"]
    )

    # Cross-backend parity at scale: same round-1 frontier, same deductions
    # and frontier after every tick, same final labels — over real sockets.
    assert distributed["first_frontier"] == sharded["first_frontier"]
    assert distributed["tick_sweeps"] == sharded["tick_sweeps"]
    assert distributed["tick_frontiers"] == sharded["tick_frontiers"]
    assert distributed["labeled"] == sharded["labeled"]

    _record("distributed_scale_sharded", **sharded["stats"])
    _record("distributed_scale_distributed", **distributed["stats"])
    shard_s = sharded["stats"]["sweep_frontier_s"]
    dist_s = distributed["stats"]["sweep_frontier_s"]
    n_cpus = available_cpus()
    _record(
        "distributed_scale_speedup",
        sweep_frontier_speedup=shard_s / dist_s if dist_s else float("inf"),
        n_pairs=len(candidates),
        n_workers=PARALLEL_WORKERS,
        n_cpus=n_cpus,
    )
    if n_cpus >= 4:
        assert shard_s > dist_s * 1.5, (
            f"distributed sweep+frontier ({dist_s:.3f}s) must be >=1.5x faster "
            f"than in-process sharded ({shard_s:.3f}s) on {n_cpus} CPUs with "
            f"{PARALLEL_WORKERS} socket workers at {len(candidates)} pairs"
        )


# ----------------------------------------------------------------------
# expected-value labeling order vs the static likelihood heuristic
# ----------------------------------------------------------------------
# The frozen reference instance from tests/engine/test_expected_dispatch.py:
# the best saved-questions gap found by a seeded 200-instance sweep over
# feasible quotients, pinned so the trajectory entry measures the same
# computation forever.  Expected costs: heuristic ~3.6285, adaptive ~3.4577.
EXPECTED_ORDER_CANDIDATES = [
    candidate("o0", "o3", 0.59),
    candidate("o1", "o3", 0.48),
    candidate("o2", "o3", 0.15),
    candidate("o1", "o2", 0.49),
    candidate("o0", "o2", 0.93),
]


def test_expected_order_saves_questions_over_heuristic():
    """The adaptive-ordering tentpole's bench gate: on the frozen reference
    instance, the expected-value policy (what ``ordering="expected-value"``
    prices each question with) must crowdsource strictly fewer expected
    questions than the paper's likelihood-descending heuristic — and both
    expected-cost computations land in BENCH_core.json with timings."""
    from repro.engine.expected import expected_value_choice

    candidates = EXPECTED_ORDER_CANDIDATES

    heuristic_s = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        heuristic_cost = expected_cost(expected_order(candidates))
        heuristic_s = min(heuristic_s, time.perf_counter() - start)

    adaptive_s = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        adaptive_cost = adaptive_expected_cost(candidates, expected_value_choice)
        adaptive_s = min(adaptive_s, time.perf_counter() - start)

    _record(
        "expected_order_heuristic",
        total_s=heuristic_s,
        expected_questions=heuristic_cost,
        n_pairs=len(candidates),
    )
    _record(
        "expected_order_adaptive",
        total_s=adaptive_s,
        expected_questions=adaptive_cost,
        n_pairs=len(candidates),
    )
    _record(
        "expected_order_saved",
        saved_expected_questions=heuristic_cost - adaptive_cost,
        saved_ratio=(heuristic_cost - adaptive_cost) / heuristic_cost,
        n_pairs=len(candidates),
    )
    # The frozen gap is ~0.17 expected questions; gate at a wide margin so
    # only a real aggregation/posterior regression can trip it.
    assert adaptive_cost < heuristic_cost - 0.1, (
        f"expected-value ordering ({adaptive_cost:.4f} expected questions) "
        f"must save >=0.1 over the heuristic ({heuristic_cost:.4f})"
    )


# ----------------------------------------------------------------------
# quality-aware weighted aggregation vs flat majority under seeded noise
# ----------------------------------------------------------------------
WEIGHTED_N_PAIRS = 300
WEIGHTED_N_GOLD = 40


def _weighted_aggregation_workload():
    """One strong worker (error 0.05) against two near-coin-flips (error
    0.45), gold-primed: (per-pair assignments, truths, primed tracker)."""
    crowd = {
        0: LikelihoodAwareWorker(base_error=0.05, ambiguous_error=0.05, seed=1),
        1: LikelihoodAwareWorker(base_error=0.45, ambiguous_error=0.45, seed=2),
        2: LikelihoodAwareWorker(base_error=0.45, ambiguous_error=0.45, seed=3),
    }
    tracker = WorkerAccuracyTracker()
    for i in range(WEIGHTED_N_GOLD):
        probe = Pair(f"gold{i}", f"gold{i}'")
        for worker_id, model in crowd.items():
            answer = model.answer(probe, Label.MATCHING, likelihood=0.9)
            tracker.record_gold(worker_id, correct=answer is Label.MATCHING)
    per_pair = []
    truths = []
    for i in range(WEIGHTED_N_PAIRS):
        hit = HIT(hit_id=i, pairs=(Pair(f"p{i}", f"q{i}"),), n_assignments=3)
        truth = Label.MATCHING if i % 2 == 0 else Label.NON_MATCHING
        truths.append(truth)
        per_pair.append(
            [
                Assignment(
                    hit=hit,
                    worker_id=worker_id,
                    answers={hit.pairs[0]: model.answer(hit.pairs[0], truth, 0.9)},
                )
                for worker_id, model in crowd.items()
            ]
        )
    return per_pair, truths, tracker


def test_weighted_aggregation_beats_flat_majority():
    """The quality-aware aggregation tentpole's bench gate: on the seeded
    heterogeneous crowd, gold-primed weighted majority must recover strictly
    more true labels than flat majority voting — and both aggregation passes
    land in BENCH_core.json with accuracy and timings."""
    per_pair, truths, tracker = _weighted_aggregation_workload()

    start = time.perf_counter()
    flat_correct = sum(
        summarize_assignments(assignments)[assignments[0].hit.pairs[0]].label
        is truth
        for assignments, truth in zip(per_pair, truths)
    )
    flat_s = time.perf_counter() - start

    aggregation = WeightedAggregation(tracker=tracker, update_from_agreement=False)
    start = time.perf_counter()
    weighted_correct = sum(
        aggregation.aggregate(assignments)[assignments[0].hit.pairs[0]].label
        is truth
        for assignments, truth in zip(per_pair, truths)
    )
    weighted_s = time.perf_counter() - start

    _record(
        "weighted_aggregation_flat",
        total_s=flat_s,
        accuracy=flat_correct / WEIGHTED_N_PAIRS,
        n_pairs=WEIGHTED_N_PAIRS,
    )
    _record(
        "weighted_aggregation_weighted",
        total_s=weighted_s,
        accuracy=weighted_correct / WEIGHTED_N_PAIRS,
        n_pairs=WEIGHTED_N_PAIRS,
    )
    _record(
        "weighted_aggregation_gain",
        accuracy_gain=(weighted_correct - flat_correct) / WEIGHTED_N_PAIRS,
        n_gold=WEIGHTED_N_GOLD,
    )
    assert weighted_correct > flat_correct, (
        f"weighted majority ({weighted_correct}/{WEIGHTED_N_PAIRS}) must beat "
        f"flat majority ({flat_correct}/{WEIGHTED_N_PAIRS}) under seeded noise"
    )
    assert weighted_correct / WEIGHTED_N_PAIRS > 0.9


# ----------------------------------------------------------------------
# polling-loop overhead: in-memory fake vs cassette replay
# ----------------------------------------------------------------------
def _drive_polling_campaign(backend, clock) -> tuple:
    """One HIT-instant campaign over ``PollingPlatformClient``; returns
    (engine, report).  Deterministic: manual clock, seeded latency."""
    client = PollingPlatformClient(
        backend,
        batch_size=20,
        n_assignments=1,
        poll_interval=0.5,
        clock=clock.now,
        sleep=clock.sleep,
    )
    engine = LabelingEngine([item.pair for item in PAIRS[:POLL_N_PAIRS]])
    runtime = CrowdRuntime(engine, client, mode=RuntimeMode.HIT_INSTANT)
    report = runtime.run_sync()
    return engine, report


POLL_N_PAIRS = 2000


def test_platform_poll_overhead_inmemory_vs_replay():
    """The live-platform seam's constant factors: the same polling campaign
    driven by the in-memory REST fake versus a recorded cassette's replay
    (the zero-credential CI path).  Both must produce identical labels;
    ``platform_poll_*`` lands in BENCH_core.json for the trajectory gate."""
    # Collect then freeze the heap the earlier scale benchmarks leave
    # behind: a gen-2 collection triggered mid-campaign would otherwise
    # traverse millions of surviving objects and land a ~1.7s pause inside
    # whichever timed segment is running (observed as a 3x one-sided spike
    # flipping between the two metrics across full-suite runs).
    import gc

    gc.collect()
    gc.freeze()
    try:
        # -- in-memory fake (records the cassette as it runs) -----------
        clock = ManualClock()
        inner = InMemoryCrowdBackend(
            oracle=TRUTH,
            clock=clock.now,
            latency=lambda rng: rng.uniform(0.1, 4.0),
            seed=9,
        )
        recorder = RecordReplayBackend("record", inner=inner)
        start = time.perf_counter()
        mem_engine, mem_report = _drive_polling_campaign(recorder, clock)
        inmemory_s = time.perf_counter() - start

        # -- cassette replay --------------------------------------------
        clock = ManualClock()
        replayer = RecordReplayBackend("replay", cassette=recorder.cassette)
        start = time.perf_counter()
        replay_engine, replay_report = _drive_polling_campaign(replayer, clock)
        replay_s = time.perf_counter() - start
        replayer.assert_exhausted()
    finally:
        gc.unfreeze()

    assert replay_engine.result.labels() == mem_engine.result.labels()
    assert replay_report.n_completions == mem_report.n_completions

    _record(
        "platform_poll_inmemory",
        total_s=inmemory_s,
        per_completion_s=inmemory_s / mem_report.n_completions,
        completions_per_sec=mem_report.n_completions / inmemory_s,
        n_completions=mem_report.n_completions,
        n_pairs=POLL_N_PAIRS,
    )
    _record(
        "platform_poll_replay",
        total_s=replay_s,
        per_completion_s=replay_s / replay_report.n_completions,
        completions_per_sec=replay_report.n_completions / replay_s,
        n_completions=replay_report.n_completions,
        n_pairs=POLL_N_PAIRS,
    )
    _record(
        "platform_poll_replay_ratio",
        ratio=replay_s / inmemory_s if inmemory_s else float("inf"),
        n_interactions=len(recorder.cassette),
    )
    # Replay swaps the fake's oracle work for JSON matching; it must stay
    # within the same order of magnitude so cassette-driven CI runs and
    # docs examples remain cheap.
    assert replay_s < inmemory_s * 10


# ----------------------------------------------------------------------
# campaign service: journaled live run vs restart replay
# ----------------------------------------------------------------------
SERVICE_N_PAIRS = 2000


def test_service_restart_replay_throughput():
    """The campaign service's restart cost: one journaled in-memory campaign
    run live (every platform event fsync-batched to the journal), then the
    same campaign recovered from that journal alone.  Replay feeds journal
    records through the identical answer-application path without platform
    traffic, so it must land on the byte-identical engine fingerprint — and
    ``service_restart_*`` records how fast it does."""
    import asyncio
    import tempfile

    from repro.service import CampaignService
    from repro.spec import CampaignSpec, PlatformConfig

    items = PAIRS[:SERVICE_N_PAIRS]
    spec = CampaignSpec(
        order=[item.pair for item in items],
        mode="instant",
        platform=PlatformConfig(
            kind="in-memory",
            batch_size=20,
            n_assignments=1,
            options={
                "answers": [
                    [item.pair.left, item.pair.right, item.label.value]
                    for item in items
                ]
            },
        ),
    )

    def fingerprint(engine) -> str:
        return json.dumps(engine.state_fingerprint(), sort_keys=True)

    async def live_run(root):
        service = CampaignService(root)
        campaign = await service.create(spec, campaign_id="bench")
        await service.wait("bench")
        assert campaign.state.value == "done", campaign.error
        fp = fingerprint(campaign.engine)
        n_records = campaign._journal.next_seq - 1
        await service.close()
        return fp, n_records

    async def restart(root):
        service = CampaignService(root)
        recovered = await service.recover()
        assert recovered == ["bench"]
        campaign = await service.wait("bench")
        assert campaign.state.value == "done", campaign.error
        fp = fingerprint(campaign.engine)
        await service.close()
        return fp

    with tempfile.TemporaryDirectory() as root:
        start = time.perf_counter()
        live_fp, n_records = asyncio.run(live_run(root))
        live_s = time.perf_counter() - start

        start = time.perf_counter()
        replay_fp = asyncio.run(restart(root))
        replay_s = time.perf_counter() - start

    assert replay_fp == live_fp, "replay must reproduce the live engine state"

    _record(
        "service_restart_live",
        total_s=live_s,
        n_journal_records=n_records,
        records_per_sec=n_records / live_s,
        n_pairs=SERVICE_N_PAIRS,
    )
    _record(
        "service_restart_replay",
        total_s=replay_s,
        n_journal_records=n_records,
        records_per_sec=n_records / replay_s,
        n_pairs=SERVICE_N_PAIRS,
    )
    _record(
        "service_restart_replay_ratio",
        ratio=replay_s / live_s if live_s else float("inf"),
        n_journal_records=n_records,
    )
    # Replay does strictly less work than the live run (no platform
    # simulation, no polling, no journal writes for replayed records); it
    # must stay within the same order of magnitude so restart never costs
    # more than the campaign it resurrects.
    assert replay_s < live_s * 10


# ----------------------------------------------------------------------
# campaign service: snapshot + tail recovery vs full journal replay
# ----------------------------------------------------------------------
# One assignment per single-pair HIT with a review policy journals three
# records per crowdsourced pair (issue, completion, review), so this pair
# count clears the 100k-record floor the compaction gate is specified at.
RECOVERY_N_PAIRS = 35_000


def _recovery_workload(n_pairs: int, seed: int = 0):
    n_objects = n_pairs // 3
    rng = random.Random(seed)
    entity_of = {i: rng.randrange(n_objects // 10) for i in range(n_objects)}
    truth = GroundTruthOracle(entity_of)
    pairs: List[Pair] = []
    seen = set()
    while len(pairs) < n_pairs:
        a, b = rng.sample(range(n_objects), 2)
        pair = Pair(a, b)
        if pair not in seen:
            seen.add(pair)
            pairs.append(pair)
    return pairs, truth


def test_service_recovery_compacted_throughput():
    """Bounded-time crash recovery: a 100k+-record journaled campaign
    recovered by full replay versus from its post-compaction snapshot +
    empty tail.  Replay cost grows with campaign age; the snapshot path is
    bounded by engine-state size — the ``service_recovery_compacted_*``
    entries pin the gap, and the in-test gates hold the snapshot path to
    >=10x full replay and batched replay itself well above the ~425
    records/sec per-record baseline this PR replaces.

    The artifact entries carry ``requires: "numpy"``: the 10x bound is
    specified against the vectorized backend's near-native array
    snapshot, so the whole test skips on a numpy-less runner.
    """
    if not vectorized_available():
        pytest.skip("numpy unavailable: the vectorized backend is the perf extra")
    import asyncio
    import tempfile

    from repro.crowd.review import ApproveAll
    from repro.service import CampaignService
    from repro.spec import CampaignSpec, PlatformConfig

    pairs, truth = _recovery_workload(RECOVERY_N_PAIRS)
    spec = CampaignSpec(
        order=pairs,
        mode="hit-rounds",
        backend="vectorized",
        review=ApproveAll(),
        platform=PlatformConfig(
            kind="in-memory",
            batch_size=1,
            n_assignments=1,
            options={
                "answers": [
                    [p.left, p.right, truth.label(p).value] for p in pairs
                ]
            },
        ),
    )

    def fingerprint(engine) -> str:
        return json.dumps(engine.state_fingerprint(), sort_keys=True)

    async def live_run(root):
        service = CampaignService(root)
        campaign = await service.create(spec, campaign_id="bench")
        await service.wait("bench")
        assert campaign.state.value == "done", campaign.error
        fp = fingerprint(campaign.engine)
        n_records = campaign._journal.next_seq - 1
        await service.close()
        return fp, n_records

    async def recover(root):
        # Timed section: recover + wait only.  The fingerprint is
        # verification, computed after the clock stops.
        import gc

        service = CampaignService(root)
        gc.collect()
        start = time.perf_counter()
        recovered = await service.recover()
        campaign = await service.wait("bench")
        elapsed = time.perf_counter() - start
        assert recovered == ["bench"]
        assert campaign.state.value == "done", campaign.error
        fp = fingerprint(campaign.engine)
        await service.close()
        return elapsed, fp

    def best_recover(root, n: int) -> Tuple[float, str]:
        # min-of-n: a single GC pause or scheduler hiccup lands squarely
        # inside a sub-second timed section, so one-shot timing would make
        # the ratio gate flaky on loaded runners.
        runs = [asyncio.run(recover(root)) for _ in range(n)]
        return min(t for t, _ in runs), runs[0][1]

    async def compact(root):
        service = CampaignService(root)
        await service.recover()
        await service.wait("bench")
        await service.compact("bench")
        await service.close()

    with tempfile.TemporaryDirectory() as root:
        live_fp, n_records = asyncio.run(live_run(root))
        assert n_records >= 100_000, n_records
        journal = Path(root) / "bench" / "journal.jsonl"
        full_bytes = journal.stat().st_size

        full_s, full_fp = best_recover(root, 2)
        asyncio.run(compact(root))
        compacted_bytes = journal.stat().st_size
        compacted_s, compacted_fp = best_recover(root, 3)

    assert full_fp == live_fp, "full replay must reproduce the live state"
    assert compacted_fp == live_fp, (
        "snapshot+tail recovery must reproduce the live state"
    )

    ratio = full_s / compacted_s if compacted_s else float("inf")
    _record(
        "service_recovery_full_replay",
        total_s=full_s,
        n_journal_records=n_records,
        records_per_sec=n_records / full_s,
        journal_bytes=full_bytes,
        n_pairs=RECOVERY_N_PAIRS,
        requires="numpy",
    )
    _record(
        "service_recovery_compacted",
        total_s=compacted_s,
        n_journal_records=n_records,
        journal_bytes=compacted_bytes,
        n_pairs=RECOVERY_N_PAIRS,
        requires="numpy",
    )
    _record(
        "service_recovery_compacted_ratio",
        ratio=ratio,
        n_journal_records=n_records,
        requires="numpy",
    )
    # Batched tail replay must beat the per-record baseline it replaced
    # (~425 records/sec in the PR-7 service_restart_replay entry) by a
    # wide margin even on a noisy runner.
    assert n_records / full_s > 425 * 4, (
        f"batched replay regressed to {n_records / full_s:.0f} records/sec"
    )
    # The tentpole bound: snapshot + empty tail beats replaying the full
    # journal by >=10x at 100k+ records.
    assert ratio >= 10, f"snapshot recovery only {ratio:.1f}x faster"
