"""Micro-benchmarks for the core data structures.

These quantify the constants behind the headline experiments: union-find
throughput, incremental ClusterGraph insertion, deduction queries, and one
Algorithm-3 selection scan.
"""

from __future__ import annotations

import random

from repro.core.cluster_graph import ClusterGraph
from repro.core.oracle import GroundTruthOracle
from repro.core.pairs import Label, LabeledPair, Pair
from repro.core.parallel import parallel_crowdsourced_pairs
from repro.core.union_find import UnionFind

N_OBJECTS = 3000
N_PAIRS = 8000


def _workload(seed: int = 0):
    rng = random.Random(seed)
    entity_of = {i: rng.randrange(N_OBJECTS // 10) for i in range(N_OBJECTS)}
    truth = GroundTruthOracle(entity_of)
    pairs = []
    seen = set()
    while len(pairs) < N_PAIRS:
        a, b = rng.sample(range(N_OBJECTS), 2)
        pair = Pair(a, b)
        if pair not in seen:
            seen.add(pair)
            pairs.append(LabeledPair(pair, truth.label(pair)))
    return pairs, truth


PAIRS, TRUTH = _workload()


def test_union_find_unions(benchmark):
    edges = [(item.pair.left, item.pair.right) for item in PAIRS]

    def run():
        uf = UnionFind()
        for a, b in edges:
            uf.union(a, b)
        return uf.n_components

    components = benchmark(run)
    assert components >= 1


def test_cluster_graph_incremental_insert(benchmark):
    def run():
        graph = ClusterGraph()
        for item in PAIRS:
            graph.add(item.pair, item.label)
        return graph

    graph = benchmark(run)
    assert graph.n_objects == N_OBJECTS or graph.n_objects > 0


def test_cluster_graph_deduce_queries(benchmark):
    graph = ClusterGraph(PAIRS)
    rng = random.Random(1)
    queries = [Pair(*rng.sample(range(N_OBJECTS), 2)) for _ in range(5000)]

    def run():
        return sum(1 for q in queries if graph.deduce(q) is not None)

    deduced = benchmark(run)
    assert 0 <= deduced <= len(queries)


def test_algorithm3_selection_scan(benchmark):
    order = [item.pair for item in PAIRS]

    def run():
        return parallel_crowdsourced_pairs(order, labeled={})

    batch = benchmark(run)
    assert 0 < len(batch) <= len(order)
