"""Micro-benchmarks for the core data structures.

These quantify the constants behind the headline experiments: union-find
throughput, incremental ClusterGraph insertion, deduction queries, one
Algorithm-3 selection scan, and the engine's incremental pending-pair
frontier against the pre-refactor full-rescan deduction sweep.

Machine-readable timings are emitted to ``BENCH_core.json`` in the repo
root after the session, so future PRs can track the perf trajectory.
"""

from __future__ import annotations

import json
import platform as platform_module
import random
import time
from pathlib import Path
from typing import Dict, List, Tuple

import pytest

from repro.core.cluster_graph import ClusterGraph
from repro.core.oracle import GroundTruthOracle
from repro.core.pairs import Label, LabeledPair, Pair
from repro.core.parallel import parallel_crowdsourced_pairs
from repro.core.sweep import PendingPairIndex
from repro.core.union_find import UnionFind

N_OBJECTS = 3000
N_PAIRS = 8000
# Answers driven through the sweep comparison (each costs the full-rescan
# path one O(pending) scan, so the cap bounds the benchmark's runtime).
SWEEP_STREAM_CAP = 1200

RESULTS: Dict[str, dict] = {}
_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_core.json"


def _record(name: str, **payload) -> None:
    RESULTS[name] = payload


def _timed(benchmark, name: str, fn):
    """Run ``fn`` under the benchmark fixture and harvest its mean timing."""
    result = benchmark(fn)
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    if stats is not None:
        _record(name, mean_s=stats.mean, rounds=stats.rounds)
    return result


@pytest.fixture(scope="module", autouse=True)
def _emit_artifact():
    """Write the machine-readable timing artifact after the module runs."""
    yield
    if not RESULTS:
        return
    _ARTIFACT.write_text(
        json.dumps(
            {
                "suite": "bench_core_micro",
                "config": {
                    "n_objects": N_OBJECTS,
                    "n_pairs": N_PAIRS,
                    "sweep_stream_cap": SWEEP_STREAM_CAP,
                },
                "python": platform_module.python_version(),
                "results": RESULTS,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )


def _workload(seed: int = 0):
    rng = random.Random(seed)
    entity_of = {i: rng.randrange(N_OBJECTS // 10) for i in range(N_OBJECTS)}
    truth = GroundTruthOracle(entity_of)
    pairs = []
    seen = set()
    while len(pairs) < N_PAIRS:
        a, b = rng.sample(range(N_OBJECTS), 2)
        pair = Pair(a, b)
        if pair not in seen:
            seen.add(pair)
            pairs.append(LabeledPair(pair, truth.label(pair)))
    return pairs, truth


PAIRS, TRUTH = _workload()


def test_union_find_unions(benchmark):
    edges = [(item.pair.left, item.pair.right) for item in PAIRS]

    def run():
        uf = UnionFind()
        for a, b in edges:
            uf.union(a, b)
        return uf.n_components

    components = _timed(benchmark, "union_find_unions", run)
    assert components >= 1


def test_cluster_graph_incremental_insert(benchmark):
    def run():
        graph = ClusterGraph()
        for item in PAIRS:
            graph.add(item.pair, item.label)
        return graph

    graph = _timed(benchmark, "cluster_graph_incremental_insert", run)
    assert graph.n_objects == N_OBJECTS or graph.n_objects > 0


def test_cluster_graph_deduce_queries(benchmark):
    graph = ClusterGraph(PAIRS)
    rng = random.Random(1)
    queries = [Pair(*rng.sample(range(N_OBJECTS), 2)) for _ in range(5000)]

    def run():
        return sum(1 for q in queries if graph.deduce(q) is not None)

    deduced = _timed(benchmark, "cluster_graph_deduce_queries", run)
    assert 0 <= deduced <= len(queries)


def test_algorithm3_selection_scan(benchmark):
    order = [item.pair for item in PAIRS]

    def run():
        return parallel_crowdsourced_pairs(order, labeled={})

    batch = _timed(benchmark, "algorithm3_selection_scan", run)
    assert 0 < len(batch) <= len(order)


# ----------------------------------------------------------------------
# incremental frontier vs the pre-refactor full-rescan sweep
# ----------------------------------------------------------------------
def _answer_stream() -> List[Tuple[Pair, Label]]:
    """The crowd answers a sequential run over the full workload produces,
    capped to bound the full-rescan driver's quadratic cost."""
    graph = ClusterGraph()
    stream: List[Tuple[Pair, Label]] = []
    for item in PAIRS:
        if graph.deduce(item.pair) is None:
            graph.add(item.pair, item.label)
            stream.append((item.pair, item.label))
            if len(stream) >= SWEEP_STREAM_CAP:
                break
    return stream


def _drive_full_rescan(stream: List[Tuple[Pair, Label]]) -> int:
    """Pre-refactor behaviour: after every answer, rescan every pending
    pair for deducibility — O(pending) per answer."""
    graph = ClusterGraph()
    pending = [item.pair for item in PAIRS]
    answered = set()
    for pair, label in stream:
        answered.add(pair)
        graph.add(pair, label)
        still: List[Pair] = []
        for waiting in pending:
            if waiting in answered or graph.deduce(waiting) is not None:
                continue
            still.append(waiting)
        pending = still
    return len(pending)


def _drive_incremental(stream: List[Tuple[Pair, Label]]) -> int:
    """Engine behaviour: the PendingPairIndex re-checks only pairs whose
    endpoint clusters changed."""
    graph = ClusterGraph()
    index = PendingPairIndex(graph, (item.pair for item in PAIRS))
    for pair, label in stream:
        index.remove(pair)
        graph.add(pair, label)
        index.note_objects_seen(pair.left, pair.right)
        index.sweep()
    return len(index)


def test_incremental_frontier_beats_full_rescan():
    """The refactor's headline perf claim, asserted on the largest
    configuration in this module: the incremental pending-pair frontier must
    beat the pre-refactor O(pending)-per-answer rescan — and resolve exactly
    the same pairs."""
    stream = _answer_stream()

    start = time.perf_counter()
    pending_full = _drive_full_rescan(stream)
    full_s = time.perf_counter() - start

    incremental_s = float("inf")
    for _ in range(3):  # best-of-3: the incremental path is fast enough
        start = time.perf_counter()
        pending_incremental = _drive_incremental(stream)
        incremental_s = min(incremental_s, time.perf_counter() - start)

    assert pending_incremental == pending_full
    _record(
        "pending_sweep_full_rescan",
        total_s=full_s,
        n_answers=len(stream),
        pending_left=pending_full,
    )
    _record(
        "pending_sweep_incremental",
        total_s=incremental_s,
        n_answers=len(stream),
        pending_left=pending_incremental,
    )
    _record(
        "pending_sweep_speedup",
        speedup=full_s / incremental_s if incremental_s else float("inf"),
    )
    # The gap is structural (O(dirty) vs O(pending) per answer; ~100x here),
    # so a 2x bar keeps the gate far from CI timing noise.
    assert full_s > incremental_s * 2, (
        f"incremental sweep ({incremental_s:.3f}s) must beat the full rescan "
        f"({full_s:.3f}s) on {len(stream)} answers over {N_PAIRS} pairs"
    )


def test_incremental_sweep_throughput(benchmark):
    """Steady-state timing of the incremental driver itself."""
    stream = _answer_stream()
    pending = _timed(
        benchmark, "incremental_sweep_throughput", lambda: _drive_incremental(stream)
    )
    assert 0 <= pending <= N_PAIRS
