"""Shared benchmark fixtures.

Benchmarks run the paper's experiments at a reduced dataset scale so the
whole suite finishes in minutes; the full-scale numbers live in
EXPERIMENTS.md.  Dataset preparation (generation + similarity scoring) is
cached per session — the benchmarks measure the *labeling* work, which is
what the paper evaluates.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import PreparedDataset, prepare

BENCH_SCALE = 0.2
BENCH_THRESHOLDS = (0.5, 0.4, 0.3, 0.2, 0.1)


def bench_config(dataset: str) -> ExperimentConfig:
    return ExperimentConfig(
        dataset=dataset,
        scale=BENCH_SCALE,
        thresholds=BENCH_THRESHOLDS,
        n_workers=15,
    )


@pytest.fixture(scope="session")
def paper_config() -> ExperimentConfig:
    return bench_config("paper")


@pytest.fixture(scope="session")
def product_config() -> ExperimentConfig:
    return bench_config("product")


@pytest.fixture(scope="session")
def paper_prepared(paper_config) -> PreparedDataset:
    return prepare(paper_config)


@pytest.fixture(scope="session")
def product_prepared(product_config) -> PreparedDataset:
    return prepare(product_config)
