"""Table 2 benchmark: the end-to-end noisy-crowd comparison.

Checks the paper's qualitative story: on the Paper dataset Transitive slashes
HITs by an order of magnitude at a bounded quality cost; on Product the
savings are small and quality stays close to the baseline.
"""

from __future__ import annotations

from repro.experiments.table2_quality import run


def test_table2_paper(benchmark, paper_config, paper_prepared):
    result = benchmark.pedantic(
        run, args=(paper_config,), kwargs={"threshold": 0.3}, rounds=1, iterations=1
    )
    baseline = result.row_lookup(strategy="non_transitive")
    transitive = result.row_lookup(strategy="transitive")
    assert transitive["n_hits"] < baseline["n_hits"] * 0.25, "big HIT savings"
    assert transitive["hours"] < baseline["hours"], "and much faster"
    assert transitive["f_measure"] > baseline["f_measure"] - 15.0, (
        "quality loss stays bounded"
    )
    print("\n" + result.render())


def test_table2_product(benchmark, product_config, product_prepared):
    result = benchmark.pedantic(
        run, args=(product_config,), kwargs={"threshold": 0.3}, rounds=1, iterations=1
    )
    baseline = result.row_lookup(strategy="non_transitive")
    transitive = result.row_lookup(strategy="transitive")
    assert transitive["n_hits"] <= baseline["n_hits"], "small but real HIT savings"
    assert abs(transitive["f_measure"] - baseline["f_measure"]) < 12.0, (
        "quality essentially unchanged on tiny clusters"
    )
    print("\n" + result.render())
