"""Ablation: the ClusterGraph vs the naive deduction procedures.

The paper's Algorithm 1 replaces path enumeration with union-find + a
cluster-level edge set.  This benchmark quantifies that design choice on a
shared workload: answer q deduction queries over n labeled pairs.

* ClusterGraph — incremental, near-O(1) per query (the paper's design);
* BFS search   — linear per query (polynomial reference);
* path enumeration — exponential; only run on a tiny instance.
"""

from __future__ import annotations

import random

import pytest

from repro.core.cluster_graph import ClusterGraph
from repro.core.deduction import deduce_by_path_enumeration, deduce_by_search
from repro.core.oracle import GroundTruthOracle
from repro.core.pairs import Label, LabeledPair, Pair


def build_workload(n_objects: int, n_pairs: int, n_queries: int, seed: int = 0):
    rng = random.Random(seed)
    entity_of = {f"o{i}": rng.randrange(max(n_objects // 6, 2)) for i in range(n_objects)}
    truth = GroundTruthOracle(entity_of)
    objects = sorted(entity_of)
    labeled = []
    seen = set()
    while len(labeled) < n_pairs:
        a, b = rng.sample(objects, 2)
        pair = Pair(a, b)
        if pair in seen:
            continue
        seen.add(pair)
        labeled.append(LabeledPair(pair, truth.label(pair)))
    queries = [Pair(*rng.sample(objects, 2)) for _ in range(n_queries)]
    return labeled, queries


WORKLOAD = build_workload(n_objects=300, n_pairs=900, n_queries=500)
TINY = build_workload(n_objects=10, n_pairs=14, n_queries=20, seed=1)


def test_cluster_graph_deduction(benchmark):
    labeled, queries = WORKLOAD

    def run():
        graph = ClusterGraph(labeled)
        return [graph.deduce(q) for q in queries]

    answers = benchmark(run)
    assert len(answers) == len(queries)


def test_bfs_deduction(benchmark):
    labeled, queries = WORKLOAD

    def run():
        return [deduce_by_search(q, labeled) for q in queries]

    answers = benchmark.pedantic(run, rounds=1, iterations=1)
    # cross-validate against the ClusterGraph on the same workload
    graph = ClusterGraph(labeled)
    assert answers == [graph.deduce(q) for q in queries]


def test_path_enumeration_deduction_tiny(benchmark):
    labeled, queries = TINY

    def run():
        return [deduce_by_path_enumeration(q, labeled) for q in queries]

    answers = benchmark.pedantic(run, rounds=1, iterations=1)
    assert answers == [deduce_by_search(q, labeled) for q in queries]


def test_path_enumeration_blows_up():
    """The exponential behaviour the paper avoids: a modest dense matching
    component already exceeds a 100k-path budget."""
    labeled = [
        LabeledPair(Pair(i, j), Label.MATCHING)
        for i in range(12)
        for j in range(i + 1, 12)
    ]
    with pytest.raises(RuntimeError):
        deduce_by_path_enumeration(Pair(0, 11), labeled, max_paths=100_000)
