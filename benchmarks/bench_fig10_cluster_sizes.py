"""Figure 10 benchmark: dataset generation + cluster-size histograms.

Regenerates the paper's Figure 10 panels and checks their defining shapes:
the Paper dataset keeps a heavy-tailed histogram with a very large cluster,
the Product dataset never exceeds size 6.
"""

from __future__ import annotations

from repro.experiments.fig10_cluster_sizes import run


def test_figure10_paper(benchmark, paper_config):
    result = benchmark.pedantic(run, args=(paper_config,), rounds=1, iterations=1)
    sizes = result.series["cluster_sizes"]
    counts = result.series["cluster_counts"]
    assert max(sizes) >= 30, "scaled Cora must keep a large cluster"
    assert counts[0] == max(counts), "singletons are the most common size"
    print("\n" + result.render())


def test_figure10_product(benchmark, product_config):
    result = benchmark.pedantic(run, args=(product_config,), rounds=1, iterations=1)
    sizes = result.series["cluster_sizes"]
    assert max(sizes) <= 6, "Abt-Buy-like clusters never exceed 6"
    histogram = dict(zip(sizes, result.series["cluster_counts"]))
    assert histogram.get(2, 0) > histogram.get(3, 0), "2-clusters dominate"
    print("\n" + result.render())
