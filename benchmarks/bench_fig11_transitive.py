"""Figure 11 benchmark: effectiveness of transitive relations.

Regenerates the Transitive vs Non-Transitive sweep and checks the paper's
shape: large savings on Paper (big clusters), modest threshold-dependent
savings on Product.
"""

from __future__ import annotations

from repro.experiments.fig11_transitive_effectiveness import run


def test_figure11_paper(benchmark, paper_config, paper_prepared):
    result = benchmark.pedantic(run, args=(paper_config,), rounds=1, iterations=1)
    for row in result.rows:
        assert row["transitive"] <= row["non_transitive"]
    at_03 = result.row_lookup(threshold=0.3)
    assert at_03["savings_pct"] > 85.0, "paper reports ~95% savings on Paper"
    print("\n" + result.render())


def test_figure11_product(benchmark, product_config, product_prepared):
    result = benchmark.pedantic(run, args=(product_config,), rounds=1, iterations=1)
    savings = {row["threshold"]: row["savings_pct"] for row in result.rows}
    assert savings[0.5] < 10.0, "tiny clusters save almost nothing at 0.5"
    assert savings[0.1] > 10.0, "savings grow as the threshold drops"
    assert savings[0.1] > savings[0.4]
    print("\n" + result.render())
