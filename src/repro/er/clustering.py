"""Entity clustering from labeled pairs.

After the join labels every candidate pair, the matching pairs induce an
entity clustering (connected components of the match graph).  This is the
final artefact of entity resolution, and comparing it against ground truth
yields the quality numbers of paper Table 2.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Set

from ..core.pairs import Pair
from ..core.union_find import UnionFind


def cluster_matches(
    matches: Iterable[Pair], all_objects: Iterable[Hashable] = ()
) -> List[Set[Hashable]]:
    """Connected components of the match graph.

    Args:
        matches: pairs labeled matching.
        all_objects: objects that must appear even if unmatched (they come
            out as singleton clusters).
    """
    uf = UnionFind(all_objects)
    for pair in matches:
        uf.union(pair.left, pair.right)
    return uf.components()


def entity_assignment(
    matches: Iterable[Pair], all_objects: Iterable[Hashable] = ()
) -> Dict[Hashable, int]:
    """object -> cluster index, derived from the match graph."""
    clusters = cluster_matches(matches, all_objects)
    assignment: Dict[Hashable, int] = {}
    for index, cluster in enumerate(clusters):
        for obj in cluster:
            assignment[obj] = index
    return assignment


def implied_matches(matches: Iterable[Pair]) -> Set[Pair]:
    """The transitive closure of the match set: every within-cluster pair.

    Entity resolution treats matching as an equivalence; labeling (a, b) and
    (b, c) as matches implies (a, c) even if it was never a candidate.
    """
    clusters = cluster_matches(matches)
    implied: Set[Pair] = set()
    for cluster in clusters:
        members = sorted(cluster, key=repr)
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                implied.add(Pair(members[i], members[j]))
    return implied


def split_oversized_clusters(
    clusters: List[Set[Hashable]], max_size: int
) -> List[Set[Hashable]]:
    """Diagnostic helper: break clusters above ``max_size`` into singletons.

    Erroneous matching labels can snowball clusters together (the failure
    mode behind Table 2's precision loss); capping cluster size is a crude
    but standard mitigation, exposed for the error-analysis experiments.
    """
    if max_size < 1:
        raise ValueError(f"max_size must be >= 1, got {max_size}")
    result: List[Set[Hashable]] = []
    for cluster in clusters:
        if len(cluster) <= max_size:
            result.append(cluster)
        else:
            result.extend({member} for member in cluster)
    return result
