"""Ground-truth utilities shared by experiments and tests."""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Set

from ..core.oracle import GroundTruthOracle
from ..core.pairs import Label, Pair


def true_matches_within(
    pairs: Iterable[Pair], entity_of: Mapping[Hashable, Hashable]
) -> Set[Pair]:
    """The subset of ``pairs`` that are true matches."""
    oracle = GroundTruthOracle(entity_of)
    return {pair for pair in pairs if oracle.label(pair) is Label.MATCHING}


def match_fraction(
    pairs: Iterable[Pair], entity_of: Mapping[Hashable, Hashable]
) -> float:
    """Fraction of ``pairs`` that are true matches (candidate purity)."""
    pairs = list(pairs)
    if not pairs:
        return 0.0
    return len(true_matches_within(pairs, entity_of)) / len(pairs)


def recall_of_candidates(
    candidate_pairs: Iterable[Pair],
    all_true_matches: Set[Pair],
) -> float:
    """How many true matches survived candidate generation (blocking +
    thresholding) — the machine step's recall ceiling."""
    if not all_true_matches:
        return 1.0
    kept = set(candidate_pairs) & all_true_matches
    return len(kept) / len(all_true_matches)
