"""Entity-resolution toolkit: clustering from match decisions and the
pairwise quality metrics of paper Section 6.4."""

from .clustering import (
    cluster_matches,
    entity_assignment,
    implied_matches,
    split_oversized_clusters,
)
from .ground_truth import match_fraction, recall_of_candidates, true_matches_within
from .metrics import PairwiseQuality, cluster_quality, evaluate_labels, evaluate_matches

__all__ = [
    "PairwiseQuality",
    "cluster_matches",
    "cluster_quality",
    "entity_assignment",
    "evaluate_labels",
    "evaluate_matches",
    "implied_matches",
    "match_fraction",
    "recall_of_candidates",
    "split_oversized_clusters",
    "true_matches_within",
]
