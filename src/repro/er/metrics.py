"""Pairwise quality metrics (paper Section 6.4).

The paper evaluates the final labels with pairwise precision, recall and
F-measure: ``tp`` = correctly labeled matching pairs, ``fp`` = wrongly
labeled matching pairs, ``fn`` = falsely labeled non-matching pairs,

    precision = tp / (tp + fp)      recall = tp / (tp + fn)
    F = 2 * precision * recall / (precision + recall)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Set

from ..core.oracle import GroundTruthOracle, LabelOracle
from ..core.pairs import Label, Pair


@dataclass(frozen=True)
class PairwiseQuality:
    """Precision / recall / F-measure with their raw counts."""

    tp: int
    fp: int
    fn: int

    @property
    def precision(self) -> float:
        """tp / (tp + fp); 1.0 when nothing was predicted matching."""
        denominator = self.tp + self.fp
        return self.tp / denominator if denominator else 1.0

    @property
    def recall(self) -> float:
        """tp / (tp + fn); 1.0 when nothing was truly matching."""
        denominator = self.tp + self.fn
        return self.tp / denominator if denominator else 1.0

    @property
    def f_measure(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def as_row(self) -> Dict[str, float]:
        """The Table 2 columns, as percentages."""
        return {
            "precision": 100.0 * self.precision,
            "recall": 100.0 * self.recall,
            "f_measure": 100.0 * self.f_measure,
        }


def evaluate_labels(
    labels: Mapping[Pair, Label],
    truth: LabelOracle,
) -> PairwiseQuality:
    """Score predicted labels over exactly the pairs that were labeled."""
    tp = fp = fn = 0
    for pair, label in labels.items():
        true_label = truth.label(pair)
        if label is Label.MATCHING and true_label is Label.MATCHING:
            tp += 1
        elif label is Label.MATCHING and true_label is Label.NON_MATCHING:
            fp += 1
        elif label is Label.NON_MATCHING and true_label is Label.MATCHING:
            fn += 1
    return PairwiseQuality(tp=tp, fp=fp, fn=fn)


def evaluate_matches(
    predicted_matches: Set[Pair],
    true_matches: Set[Pair],
    universe: Optional[Iterable[Pair]] = None,
) -> PairwiseQuality:
    """Score a predicted match *set* against the true match set.

    Args:
        predicted_matches: pairs the system claims are matching.
        true_matches: the ground-truth matching pairs.
        universe: if given, both sets are first intersected with it (e.g.
            restrict evaluation to the candidate pairs, as the paper does).
    """
    if universe is not None:
        universe_set = set(universe)
        predicted_matches = predicted_matches & universe_set
        true_matches = true_matches & universe_set
    tp = len(predicted_matches & true_matches)
    fp = len(predicted_matches - true_matches)
    fn = len(true_matches - predicted_matches)
    return PairwiseQuality(tp=tp, fp=fp, fn=fn)


def cluster_quality(
    predicted_clusters: Iterable[Set],
    entity_of: Mapping,
) -> PairwiseQuality:
    """Pairwise quality of a clustering against an entity assignment.

    Every within-cluster pair is a predicted match; every within-entity pair
    is a true match (restricted to the clustered objects).
    """
    predicted: Set[Pair] = set()
    objects = set()
    for cluster in predicted_clusters:
        members = sorted(cluster, key=repr)
        objects.update(members)
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                predicted.add(Pair(members[i], members[j]))
    truth = GroundTruthOracle(entity_of)
    true_matches: Set[Pair] = set()
    members = sorted(objects, key=repr)
    for i in range(len(members)):
        for j in range(i + 1, len(members)):
            pair = Pair(members[i], members[j])
            if truth.label(pair) is Label.MATCHING:
                true_matches.add(pair)
    return evaluate_matches(predicted, true_matches)
