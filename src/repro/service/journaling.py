"""JournalingPlatformClient: any platform client, made durable + replayable.

The wrapper sits between the :class:`~repro.engine.async_dispatch.CrowdRuntime`
and *any* :class:`~repro.crowd.clients.PlatformClient` (simulated,
polling-REST, webhook-push) and journals every externally-visible event —
HIT issues, completions, expiries, review decisions, cancellations — to an
append-only :class:`~repro.service.journal.Journal`.  Nothing else in the
stack knows the journal exists: the runtime sees a normal client, the inner
client sees a normal runtime.

Recovery inverts the flow.  A resumed campaign constructs the wrapper with
the parsed journal events; a **fresh** runtime then re-runs the campaign
from the top, and the wrapper *feeds it the journal* instead of the
platform:

* ``submit_pairs`` during replay consumes the matching ``issue`` records
  (validating the runtime re-published exactly what the journal says it
  published — any divergence raises
  :class:`~repro.service.journal.JournalReplayError`);
* ``next_event`` reconstructs completions and expiries from the records;
* ``review_hit`` returns the journaled approve/reject counts without
  touching the platform (that work was already paid for).

Because the runtime is deterministic given its event sequence, replay
rebuilds **all** of its internal state — adapter buffers, round cursors,
re-issue chains, budget counters, the engine's cluster graph — through the
one true answer-application path (``engine.record_answer``), with no
state-snapshot format to maintain.  When the journal is exhausted the
wrapper *adopts* the still-outstanding HITs: their pairs are re-submitted
to the fresh inner client (directly — the budget already charged them at
first issue), inner ids are mapped onto the journaled external ids, and
the campaign continues live, journaling as it goes.

External HIT identity is owned by this wrapper (not the inner client)
precisely so that ids survive the death of the inner client: the runtime
and the journal only ever see stable external ids.

Durability boundary: an issue record is journaled immediately *after* the
platform accepts the submission, and every inbound event is journaled
*before* the runtime sees it.  A crash in the submission window can
therefore re-issue that burst on resume (bounded, visible duplicate spend
on a live platform); a crash anywhere else loses nothing.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from ..core.pairs import Label, Pair
from ..crowd.clients import HITExpiry, PlatformClient, PlatformEvent
from ..crowd.hit import HIT
from ..crowd.platform import HITCompletion
from ..spec import decode_canonical_pair, encode_pair
from .journal import Journal, JournalReplayError


def _encode_labels(labels: Dict[Pair, Label]) -> List[List[Any]]:
    return [
        [*encode_pair(pair), label.value] for pair, label in labels.items()
    ]


def _decode_labels(entries: Sequence[Sequence[Any]]) -> Dict[Pair, Label]:
    return {
        decode_canonical_pair(entry[:2]): Label(entry[2]) for entry in entries
    }


class JournalingPlatformClient:
    """Transparent write-ahead journaling around any platform client.

    Args:
        inner: the real client (a fresh one when resuming — the wrapper
            re-submits adopted work to it at handover).
        journal: the open append-mode :class:`Journal` (header already
            written by the service).
        replay_events: parsed event records from :meth:`Journal.read` when
            resuming; empty/omitted for a brand-new campaign.

    The wrapper exposes ``review_hit`` only when ``inner`` does, so the
    runtime's review behaviour is exactly what it would be unwrapped.
    """

    def __init__(
        self,
        inner: PlatformClient,
        journal: Journal,
        *,
        replay_events: Sequence[Dict[str, Any]] = (),
    ) -> None:
        self._inner = inner
        self._journal = journal
        self._replay: Deque[Dict[str, Any]] = deque(replay_events)
        self._live = not self._replay
        #: ext hit_id -> the HIT as the runtime knows it (both phases).
        self._outstanding: Dict[int, HIT] = {}
        #: ext hit_id -> the timeout it was issued with (for adoption).
        self._issue_timeouts: Dict[int, Optional[float]] = {}
        self._ext_next = 0
        self._inner_to_ext: Dict[int, int] = {}
        self._ext_to_inner: Dict[int, int] = {}
        #: client-clock time while replaying (last record's timestamp).
        self._replay_now = 0.0
        if hasattr(inner, "review_hit"):
            # Shadow the class-level absence: the runtime feature-detects
            # review via getattr, and the wrapper must mirror the inner
            # client exactly.
            self.review_hit = self._review_hit  # type: ignore[assignment]

    # ------------------------------------------------------------------
    # pass-through configuration
    # ------------------------------------------------------------------
    @property
    def batch_size(self) -> int:
        return self._inner.batch_size

    @property
    def n_assignments(self) -> int:
        return self._inner.n_assignments

    @property
    def now(self) -> float:
        return self._replay_now if not self._live else self._inner.now

    @property
    def n_outstanding_hits(self) -> int:
        return len(self._outstanding)

    @property
    def inner(self) -> PlatformClient:
        return self._inner

    @property
    def replaying(self) -> bool:
        """True while events are still being served from the journal."""
        return not self._live

    # ------------------------------------------------------------------
    # snapshot / restore (journal compaction)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, Any]:
        """Serialize the wrapper's externally-visible state.

        Valid only at a runtime safe point (the service takes snapshots
        from the runtime's ``on_safe_point`` hook, or when the campaign is
        provably quiescent), and never mid-replay — a snapshot taken while
        the journal tail is still being consumed would disagree with the
        tail's sequence numbering.
        """
        if not self._live:
            raise RuntimeError(
                "cannot snapshot a journaling client while it is replaying"
            )
        return {
            "version": 1,
            "ext_next": self._ext_next,
            "outstanding": [
                [
                    ext_id,
                    [encode_pair(p) for p in self._outstanding[ext_id].pairs],
                    self._outstanding[ext_id].n_assignments,
                    self._issue_timeouts.get(ext_id),
                ]
                for ext_id in sorted(self._outstanding)
            ],
        }

    def restore_state(self, snapshot: Dict[str, Any]) -> None:
        """Seed a fresh wrapper from a journaled snapshot record.

        Must be called before any platform traffic.  The wrapper is left in
        replay mode even when the post-snapshot tail is empty, so the first
        ``next_event``/``submit_pairs`` runs :meth:`_go_live` and adopts the
        restored outstanding HITs onto the fresh inner client (re-submitted
        directly — their assignments were budget-charged at first issue).
        """
        if self._outstanding or self._inner_to_ext or self._ext_next:
            raise RuntimeError(
                "restore_state requires a freshly constructed client"
            )
        if int(snapshot.get("version", -1)) != 1:
            raise JournalReplayError(
                f"unsupported client snapshot version {snapshot.get('version')!r}"
            )
        self._ext_next = int(snapshot["ext_next"])
        for ext_id, pairs, n_assignments, timeout in snapshot["outstanding"]:
            hit = HIT(
                hit_id=int(ext_id),
                pairs=tuple(decode_canonical_pair(entry) for entry in pairs),
                n_assignments=int(n_assignments),
            )
            self._outstanding[hit.hit_id] = hit
            self._issue_timeouts[hit.hit_id] = (
                None if timeout is None else float(timeout)
            )
        self._live = False

    def take_replay_completion(self) -> Optional[HITCompletion]:
        """Pop the next journaled record *iff* it is a loop completion.

        The runtime's HIT-rounds mode uses this to coalesce consecutive
        journaled completions into one deduction sweep during replay.  Any
        other record type (or live mode, or an exhausted journal) returns
        ``None`` without consuming anything, leaving ``next_event`` to
        handle it through the normal path.
        """
        if self._live:
            return None
        while self._replay and self._replay[0].get("type") == "note":
            self._replay.popleft()
        if not self._replay:
            return None
        head = self._replay[0]
        if head.get("type") != "completion" or head.get("leftover"):
            return None
        record = self._replay.popleft()
        hit = self._pop_outstanding(record, "completion")
        self._replay_now = float(record.get("completed_at", self._replay_now))
        return HITCompletion(
            hit=hit,
            labels=_decode_labels(record["labels"]),
            completed_at=float(record["completed_at"]),
            assignments=(),
        )

    # ------------------------------------------------------------------
    # replay plumbing
    # ------------------------------------------------------------------
    def _divergence(self, expected: str, record: Dict[str, Any]) -> JournalReplayError:
        return JournalReplayError(
            f"replay diverged at seq {record.get('seq')}: runtime asked for "
            f"{expected}, journal holds a {record.get('type')!r} record — the "
            "journal does not match this spec/runtime (refusing to resume "
            "onto a wrong state)"
        )

    def _restore_hit(self, record: Dict[str, Any]) -> HIT:
        hit = HIT(
            hit_id=int(record["hit_id"]),
            pairs=tuple(decode_canonical_pair(entry) for entry in record["pairs"]),
            n_assignments=int(record["n_assignments"]),
        )
        # Keep the ext id allocator ahead of every replayed id.
        self._ext_next = max(self._ext_next, hit.hit_id + 1)
        return hit

    def _pop_outstanding(self, record: Dict[str, Any], kind: str) -> HIT:
        hit = self._outstanding.pop(int(record["hit_id"]), None)
        if hit is None:
            raise JournalReplayError(
                f"replay diverged at seq {record.get('seq')}: {kind} record "
                f"for HIT {record.get('hit_id')} which is not outstanding"
            )
        self._issue_timeouts.pop(hit.hit_id, None)
        return hit

    async def _go_live(self) -> None:
        """Journal exhausted: adopt outstanding HITs onto the fresh inner
        client and continue the campaign live.

        Each adopted HIT is re-submitted *directly* to the inner client —
        never through the runtime's ``_submit`` — because its assignments
        were already charged against the budget when the original issue was
        journaled.  One external HIT maps to exactly one inner HIT (its
        pairs came out of an identically-configured batcher, so they fit in
        one batch).
        """
        if self._live:
            return
        self._live = True
        for ext_id in sorted(self._outstanding):
            hit = self._outstanding[ext_id]
            inner_hits = await self._inner.submit_pairs(
                list(hit.pairs), timeout=self._issue_timeouts.get(ext_id)
            )
            if len(inner_hits) != 1:
                raise JournalReplayError(
                    f"adopting HIT {ext_id}: inner client split "
                    f"{len(hit.pairs)} pairs into {len(inner_hits)} HITs — "
                    "the resumed platform config does not match the journal"
                )
            self._inner_to_ext[inner_hits[0].hit_id] = ext_id
            self._ext_to_inner[ext_id] = inner_hits[0].hit_id

    def _ext_event(self, event: PlatformEvent) -> PlatformEvent:
        """Translate a live inner event onto the external HIT identity."""
        ext_id = self._inner_to_ext.get(event.hit.hit_id)
        if ext_id is None:
            # Not an adopted HIT: issued live, ids already aligned.
            return event
        ext_hit = self._outstanding.get(ext_id)
        if ext_hit is None:  # settled already (late duplicate): pass through
            return event
        if isinstance(event, HITExpiry):
            return HITExpiry(
                hit=ext_hit, expired_at=event.expired_at, reason=event.reason
            )
        return HITCompletion(
            hit=ext_hit,
            labels=dict(event.labels),
            completed_at=event.completed_at,
            assignments=event.assignments,
        )

    # ------------------------------------------------------------------
    # PlatformClient surface
    # ------------------------------------------------------------------
    async def submit_pairs(
        self, pairs: Sequence[Pair], *, timeout: Optional[float] = None
    ) -> List[HIT]:
        pairs = list(pairs)
        if not self._live:
            if not pairs:
                return []
            expected = pairs
            got: List[Pair] = []
            hits: List[HIT] = []
            while got != expected:
                if not self._replay:
                    # The original process crashed mid-burst: the journal
                    # holds the first HITs of this submission but not the
                    # rest.  Adopt what exists and finish the burst live —
                    # the remainder starts exactly at a HIT boundary, so
                    # re-batching it reproduces the missing HIT shapes.
                    break
                if self._replay[0].get("type") != "issue":
                    raise self._divergence(
                        f"issue of {len(expected)} pairs", self._replay[0]
                    )
                record = self._replay.popleft()
                hit = self._restore_hit(record)
                if list(hit.pairs) != expected[len(got): len(got) + len(hit.pairs)]:
                    raise JournalReplayError(
                        f"replay diverged at seq {record.get('seq')}: issue "
                        f"record for HIT {hit.hit_id} does not match the "
                        "pairs the runtime re-published"
                    )
                got.extend(hit.pairs)
                self._outstanding[hit.hit_id] = hit
                self._issue_timeouts[hit.hit_id] = record.get("timeout")
                self._replay_now = float(record.get("t", self._replay_now))
                hits.append(hit)
            if got == expected:
                return hits
            await self._go_live()
            return hits + await self._submit_live(expected[len(got):], timeout)
        await self._go_live()
        return await self._submit_live(pairs, timeout)

    async def _submit_live(
        self, pairs: List[Pair], timeout: Optional[float]
    ) -> List[HIT]:
        inner_hits = await self._inner.submit_pairs(pairs, timeout=timeout)
        ext_hits: List[HIT] = []
        for inner_hit in inner_hits:
            ext_id = self._ext_next
            self._ext_next += 1
            ext_hit = HIT(
                hit_id=ext_id,
                pairs=inner_hit.pairs,
                n_assignments=inner_hit.n_assignments,
            )
            self._inner_to_ext[inner_hit.hit_id] = ext_id
            self._ext_to_inner[ext_id] = inner_hit.hit_id
            self._outstanding[ext_id] = ext_hit
            self._issue_timeouts[ext_id] = timeout
            self._journal.append(
                {
                    "type": "issue",
                    "hit_id": ext_id,
                    "pairs": [encode_pair(p) for p in ext_hit.pairs],
                    "n_assignments": ext_hit.n_assignments,
                    "timeout": timeout,
                    "t": self._inner.now,
                }
            )
            ext_hits.append(ext_hit)
        return ext_hits

    async def next_event(self) -> Optional[PlatformEvent]:
        while not self._live:
            if not self._replay:
                await self._go_live()
                break
            record = self._replay.popleft()
            rtype = record.get("type")
            if rtype == "note":
                continue
            if rtype == "cancel":
                self._outstanding.pop(int(record["hit_id"]), None)
                self._issue_timeouts.pop(int(record["hit_id"]), None)
                continue
            if rtype == "completion":
                if record.get("leftover"):
                    raise self._divergence("a loop event", record)
                hit = self._pop_outstanding(record, "completion")
                self._replay_now = float(record.get("completed_at", self._replay_now))
                return HITCompletion(
                    hit=hit,
                    labels=_decode_labels(record["labels"]),
                    completed_at=float(record["completed_at"]),
                    assignments=(),
                )
            if rtype == "expiry":
                hit = self._pop_outstanding(record, "expiry")
                self._replay_now = float(record.get("expired_at", self._replay_now))
                return HITExpiry(
                    hit=hit,
                    expired_at=float(record["expired_at"]),
                    reason=record.get("reason", "timeout"),
                )
            raise self._divergence("an event", record)
        event = await self._inner.next_event()
        if event is None:
            return None
        event = self._ext_event(event)
        if isinstance(event, HITExpiry):
            self._journal.append(
                {
                    "type": "expiry",
                    "hit_id": event.hit.hit_id,
                    "expired_at": event.expired_at,
                    "reason": event.reason,
                }
            )
        else:
            self._journal.append(
                {
                    "type": "completion",
                    "hit_id": event.hit.hit_id,
                    "labels": _encode_labels(event.labels),
                    "completed_at": event.completed_at,
                }
            )
        self._outstanding.pop(event.hit.hit_id, None)
        self._issue_timeouts.pop(event.hit.hit_id, None)
        ext_id = event.hit.hit_id
        inner_id = self._ext_to_inner.pop(ext_id, None)
        if inner_id is not None:
            self._inner_to_ext.pop(inner_id, None)
        return event

    async def completions(self):
        while True:
            event = await self.next_event()
            if event is None:
                return
            yield event

    def _review_hit(self, hit_id: int, decisions) -> Tuple[int, int]:
        if not self._live:
            if not self._replay or self._replay[0].get("type") != "review":
                record = self._replay[0] if self._replay else {"type": "<end>"}
                raise self._divergence(f"review of HIT {hit_id}", record)
            record = self._replay.popleft()
            if int(record["hit_id"]) != hit_id:
                raise JournalReplayError(
                    f"replay diverged at seq {record.get('seq')}: review of "
                    f"HIT {hit_id} but journal reviewed HIT {record['hit_id']}"
                )
            return (int(record["approved"]), int(record["rejected"]))
        inner_id = self._ext_to_inner.get(hit_id, hit_id)
        approved, rejected = self._inner.review_hit(inner_id, decisions)
        self._journal.append(
            {
                "type": "review",
                "hit_id": hit_id,
                "approved": int(approved),
                "rejected": int(rejected),
            }
        )
        return (approved, rejected)

    async def cancel(self, hit_id: int) -> bool:
        if not self._live:
            # The runtime never cancels during replay (cancellations are
            # journal records, consumed by next_event); treat a direct call
            # as settling the external HIT only.
            return self._outstanding.pop(hit_id, None) is not None
        hit = self._outstanding.pop(hit_id, None)
        self._issue_timeouts.pop(hit_id, None)
        if hit is None:
            return False
        inner_id = self._ext_to_inner.pop(hit_id, hit_id)
        self._inner_to_ext.pop(inner_id, None)
        cancelled = await self._inner.cancel(inner_id)
        self._journal.append(
            {"type": "cancel", "hit_id": hit_id, "cancelled": bool(cancelled)}
        )
        return True

    async def drain(self) -> List[HITCompletion]:
        leftovers: List[HITCompletion] = []
        if not self._live:
            # A journal that ends with drained leftovers belongs to a
            # campaign that finished before the crash: serve them back.
            while self._replay:
                record = self._replay.popleft()
                rtype = record.get("type")
                if rtype == "completion" and record.get("leftover"):
                    hit = self._pop_outstanding(record, "leftover completion")
                    leftovers.append(
                        HITCompletion(
                            hit=hit,
                            labels=_decode_labels(record["labels"]),
                            completed_at=float(record["completed_at"]),
                            assignments=(),
                        )
                    )
                elif rtype in ("cancel", "note"):
                    self._outstanding.pop(int(record.get("hit_id", -1)), None)
                else:
                    raise self._divergence("drain-phase records", record)
            # Journal fully consumed at drain time: the campaign is over;
            # nothing to adopt (remaining outstanding were cancelled in the
            # original run's close()).
            self._live = True
            self._outstanding.clear()
            self._issue_timeouts.clear()
            return leftovers
        for event in await self._inner.drain():
            event = self._ext_event(event)
            self._journal.append(
                {
                    "type": "completion",
                    "hit_id": event.hit.hit_id,
                    "labels": _encode_labels(event.labels),
                    "completed_at": event.completed_at,
                    "leftover": True,
                }
            )
            self._outstanding.pop(event.hit.hit_id, None)
            leftovers.append(event)
        for ext_id in list(self._outstanding):
            self._journal.append(
                {"type": "cancel", "hit_id": ext_id, "cancelled": True}
            )
            del self._outstanding[ext_id]
            self._issue_timeouts.pop(ext_id, None)
        return leftovers

    async def close(self) -> None:
        try:
            await self._inner.close()
        finally:
            self._journal.close()
