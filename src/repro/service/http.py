"""A stdlib-only HTTP front end for :class:`CampaignService`.

One small HTTP/1.1 server over ``asyncio.start_server`` — no framework, no
dependency.  The API surface (fully specified in ``docs/service.md``):

=======  ==============================  ===========================================
Method   Path                            Effect
=======  ==============================  ===========================================
POST     ``/campaigns``                  create from a CampaignSpec JSON body (201)
GET      ``/campaigns``                  list campaign status snapshots
GET      ``/campaigns/<id>``             inspect one campaign
POST     ``/campaigns/<id>/pause``       stop issuing new HITs
POST     ``/campaigns/<id>/resume``      resume issuance (deferred work fires)
POST     ``/campaigns/<id>/cancel``      cancel; journal survives for recovery
POST     ``/campaigns/<id>/compact``     snapshot + compact the campaign journal
=======  ==============================  ===========================================

Responses are JSON.  Errors: 400 for a malformed spec or an unregistered
platform kind, 404 for unknown campaigns/routes, 405 for wrong methods.
Each connection serves one request (``Connection: close``): the operator
surface is low-traffic; campaign traffic itself never flows through HTTP.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from ..spec import CampaignSpec, SpecError
from .service import CampaignService

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 64 * 1024 * 1024


class CampaignHTTPServer:
    """Serve a :class:`CampaignService` over HTTP.

    Args:
        service: the campaign host.
        host: bind address (default loopback).
        port: bind port (0 = ephemeral; read :attr:`address` after
            :meth:`start`).
    """

    def __init__(
        self, service: CampaignService, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self._service = service
        self._host = host
        self._port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (available after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        return self.address

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # request plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._serve_one(reader)
        except Exception as exc:  # never let a bad request kill the server
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        reason = {200: "OK", 201: "Created", 400: "Bad Request",
                  404: "Not Found", 405: "Method Not Allowed",
                  500: "Internal Server Error"}.get(status, "OK")
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n".encode("ascii") + body
        )
        try:
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):  # pragma: no cover
            pass

    async def _serve_one(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, Dict[str, Any]]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return 400, {"error": "malformed request"}
        if len(head) > _MAX_HEADER_BYTES:
            return 400, {"error": "headers too large"}
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        parts = request_line.split(" ")
        if len(parts) != 3:
            return 400, {"error": f"malformed request line {request_line!r}"}
        method, path, _version = parts
        content_length = 0
        for line in header_lines:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return 400, {"error": "invalid Content-Length"}
        if content_length > _MAX_BODY_BYTES:
            return 400, {"error": "body too large"}
        body = await reader.readexactly(content_length) if content_length else b""
        return await self._dispatch(method.upper(), path.rstrip("/"), body)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        if path == "/campaigns":
            if method == "POST":
                return await self._create(body)
            if method == "GET":
                return 200, {"campaigns": self._service.list()}
            return 405, {"error": f"{method} not allowed on {path}"}
        if path.startswith("/campaigns/"):
            rest = path[len("/campaigns/"):]
            campaign_id, _, action = rest.partition("/")
            try:
                campaign = self._service.get(campaign_id)
            except KeyError:
                return 404, {"error": f"unknown campaign {campaign_id!r}"}
            if not action and method == "GET":
                return 200, campaign.status()
            if method != "POST":
                return 405, {"error": f"{method} not allowed on {path}"}
            if action == "pause":
                return 200, self._service.pause(campaign_id).status()
            if action == "resume":
                return 200, self._service.resume(campaign_id).status()
            if action == "cancel":
                campaign = await self._service.cancel(campaign_id)
                return 200, campaign.status()
            if action == "compact":
                try:
                    campaign = await self._service.compact(campaign_id)
                except RuntimeError as exc:  # failed/cancelled campaign
                    return 400, {"error": str(exc)}
                return 200, campaign.status()
            return 404, {"error": f"unknown action {action!r}"}
        return 404, {"error": f"no route for {path!r}"}

    async def _create(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        try:
            spec = CampaignSpec.from_json(body.decode("utf-8"))
        except (SpecError, UnicodeDecodeError) as exc:
            return 400, {"error": f"invalid campaign spec: {exc}"}
        try:
            campaign = await self._service.create(spec)
        except ValueError as exc:  # unregistered platform kind
            return 400, {"error": str(exc)}
        return 201, campaign.status()
