"""The campaign service layer: many campaigns, one process, durable answers.

Everything below :mod:`repro.engine` is a *library*: a campaign lives inside
one :class:`~repro.engine.async_dispatch.CrowdRuntime` coroutine and dies
with the process — along with every paid crowd answer.  This package is the
seam that turns the library into a long-running system:

* :mod:`repro.service.journal` — per-campaign append-only JSONL journal
  (monotonic sequence numbers, batched fsync, torn-write repair, precise
  :class:`JournalCorruptError` on real corruption);
* :mod:`repro.service.journaling` — :class:`JournalingPlatformClient`, a
  transparent wrapper journaling every HIT issue, completion, expiry, and
  review decision of *any* :class:`~repro.crowd.clients.PlatformClient`,
  and replaying a journal back through the runtime deterministically;
* :mod:`repro.service.service` — :class:`CampaignService`, the asyncio host
  for many concurrent campaigns (create / inspect / pause / resume /
  cancel / recover-on-restart);
* :mod:`repro.service.http` — a stdlib-only HTTP front end for the service.

See ``docs/service.md`` for the API reference, the journal format
specification, and the crash-recovery runbook.
"""

from .journal import Journal, JournalCorruptError, JournalReplayError
from .journaling import JournalingPlatformClient
from .service import Campaign, CampaignService, CampaignState
from .http import CampaignHTTPServer

__all__ = [
    "Journal",
    "JournalCorruptError",
    "JournalReplayError",
    "JournalingPlatformClient",
    "Campaign",
    "CampaignService",
    "CampaignState",
    "CampaignHTTPServer",
]
