"""CampaignService: many concurrent campaigns, one asyncio process.

The service hosts one :class:`~repro.engine.async_dispatch.CrowdRuntime`
coroutine per campaign, each isolated behind its own engine, platform
client, :class:`~repro.engine.async_dispatch.PauseGate`, and journal file
(``<root>/<campaign_id>/journal.jsonl``).  Campaigns are described by
:class:`~repro.spec.CampaignSpec` — the same JSON document the HTTP create
endpoint accepts is written as the journal header, so a journal is always
self-describing.

Lifecycle:

* :meth:`create` — journal the header, build the client from the spec's
  platform config, start the runtime task (state ``running``);
* :meth:`pause` / :meth:`resume` — flip the campaign's gate: paused
  campaigns issue no new HITs but still apply in-flight completions;
* :meth:`cancel` — cancel the task; the runtime's ``finally`` closes the
  client (flushing the journal) and the engine (releasing the parallel
  backend's worker pool);
* :meth:`recover` — called on process start: every journal found under the
  root is replayed through a fresh runtime via
  :class:`~repro.service.journaling.JournalingPlatformClient`, rebuilding
  identical engine state, then the campaign continues live.  A journal
  holding a ``snapshot`` record recovers on the fast path: engine, client,
  and runtime state load directly from the snapshot and only the
  post-snapshot tail is replayed.
* :meth:`compact` — snapshot the campaign at the next safe point and
  atomically rewrite its journal as header + snapshot + tail, bounding
  both the journal's size and the next recovery's replay time.  The
  per-spec ``journal.compact_every`` knob does the same automatically
  every N records, and :meth:`pause` requests one opportunistically.

Platform clients are built by registered *factories* (``kind`` →
``factory(spec) -> PlatformClient``).  The built-in ``"in-memory"`` kind
runs fully offline and deterministically — answers scripted in the spec's
platform options, constant latency on a manual clock — and is what the
tests, the example, and the recovery differential use.  Deployments
register real factories (e.g. wrapping
:class:`~repro.crowd.platforms.mturk.MTurkBackend`) the same way.
"""

from __future__ import annotations

import asyncio
import enum
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..core.pairs import Label, Pair
from ..crowd.clients import (
    InMemoryCrowdBackend,
    ManualClock,
    PlatformClient,
    PollingPlatformClient,
)
from ..engine.async_dispatch import CrowdRuntime, PauseGate
from ..engine.engine import LabelingEngine
from ..spec import CampaignSpec
from .journal import DEFAULT_FSYNC_EVERY, JOURNAL_VERSION, Journal
from .journaling import JournalingPlatformClient

#: A platform client factory: builds a fresh client for one campaign run.
ClientFactory = Callable[[CampaignSpec], PlatformClient]

JOURNAL_FILENAME = "journal.jsonl"


class CampaignState(str, enum.Enum):
    RUNNING = "running"
    PAUSED = "paused"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


def in_memory_client_factory(spec: CampaignSpec) -> PlatformClient:
    """The built-in offline platform: scripted answers, deterministic order.

    Interprets these ``spec.platform.options`` keys:

    * ``answers``: list of ``[left, right, label]`` scripted crowd answers;
    * ``default_label``: label value for pairs not in ``answers`` (without
      it, an unscripted pair is an error — campaigns should fail loudly,
      not invent data);
    * ``latency``: constant completion latency in clock units (default 1.0);
    * ``poll_interval``: polling cadence (default 1.0);
    * ``seed``: backend RNG seed (default 0).

    Constant latency on a :class:`ManualClock` makes completion order equal
    creation order (FIFO), which is what lets a resumed campaign's adopted
    HITs complete in exactly the order the uninterrupted run would have
    produced — the property the recovery differential tests pin down.
    """
    options = dict(spec.platform.options)
    # Decoded lazily: a snapshot-recovered campaign with an empty tail may
    # never ask for a single answer, and a 100k-entry script would otherwise
    # dominate its client construction cost.
    scripted = options.get("answers", [])
    answers: Optional[Dict[Pair, Label]] = None
    default_label = options.get("default_label")

    def answer(pair: Pair) -> Label:
        nonlocal answers
        if answers is None:
            answers = {
                Pair(entry[0], entry[1]): Label(entry[2]) for entry in scripted
            }
        if pair in answers:
            return answers[pair]
        if default_label is not None:
            return Label(default_label)
        raise KeyError(f"no scripted answer for {pair!r} in platform options")

    clock = ManualClock()
    latency = float(options.get("latency", 1.0))
    backend = InMemoryCrowdBackend(
        answer_fn=answer,
        clock=clock.now,
        latency=lambda rng: latency,
        seed=int(options.get("seed", 0)),
    )
    return PollingPlatformClient(
        backend,
        batch_size=spec.platform.batch_size,
        n_assignments=spec.platform.n_assignments,
        poll_interval=float(options.get("poll_interval", 1.0)),
        clock=clock.now,
        sleep=clock.sleep,
    )


DEFAULT_CLIENT_FACTORIES: Dict[str, ClientFactory] = {
    "in-memory": in_memory_client_factory,
}


@dataclass
class Campaign:
    """One hosted campaign: runtime, gate, journal, and lifecycle state."""

    campaign_id: str
    spec: CampaignSpec
    journal_path: str
    engine: LabelingEngine
    runtime: CrowdRuntime
    client: JournalingPlatformClient
    gate: PauseGate
    state: CampaignState = CampaignState.RUNNING
    task: Optional["asyncio.Task"] = None
    error: Optional[str] = None
    recovered: bool = False
    #: seq of the latest snapshot record covering this campaign (0 = none;
    #: the header is seq 0, so a real snapshot always has seq >= 1).
    last_snapshot_seq: int = 0
    #: an operator (or pause) asked for a compaction at the next safe point.
    compact_requested: bool = False
    _journal: Journal = field(default=None, repr=False)  # type: ignore[assignment]
    _compacted: "asyncio.Event" = field(default=None, repr=False)  # type: ignore[assignment]

    def status(self) -> Dict[str, Any]:
        """A JSON-ready snapshot of the campaign (the HTTP inspect body)."""
        report = self.runtime.report
        try:
            journal_bytes = os.path.getsize(self.journal_path)
        except OSError:
            journal_bytes = 0
        return {
            "campaign_id": self.campaign_id,
            "state": self.state.value,
            "mode": self.spec.mode,
            "backend": self.engine.backend,
            "n_pairs": len(self.engine.pairs),
            "n_labeled": self.engine.n_labeled,
            "n_crowdsourced": self.engine.result.n_crowdsourced,
            "n_deduced": self.engine.result.n_deduced,
            "assignments_committed": report.assignments_committed,
            "n_completions": report.n_completions,
            "n_outstanding_hits": self.client.n_outstanding_hits,
            "replaying": self.client.replaying,
            "journal_seq": self._journal.next_seq - 1,
            "journal_bytes": journal_bytes,
            "last_snapshot_seq": self.last_snapshot_seq,
            "recovered": self.recovered,
            "error": self.error,
        }


class CampaignService:
    """Asyncio host for many concurrent, journaled campaigns.

    Args:
        root: directory holding one ``<campaign_id>/journal.jsonl`` per
            campaign (created on demand).
        client_factories: ``platform kind -> factory`` registry; merged
            over the built-ins (``"in-memory"``).
        fsync_every: journal fsync batching (see :class:`Journal`).

    All methods must be called from the event-loop thread that runs the
    campaigns (the service is asyncio-native, not thread-safe).
    """

    def __init__(
        self,
        root: str,
        *,
        client_factories: Optional[Dict[str, ClientFactory]] = None,
        fsync_every: int = DEFAULT_FSYNC_EVERY,
    ) -> None:
        self.root = str(root)
        self._factories = dict(DEFAULT_CLIENT_FACTORIES)
        if client_factories:
            self._factories.update(client_factories)
        self._fsync_every = fsync_every
        self._campaigns: Dict[str, Campaign] = {}
        self._id_counter = 0

    # ------------------------------------------------------------------
    # registry / lookup
    # ------------------------------------------------------------------
    def register_client_factory(self, kind: str, factory: ClientFactory) -> None:
        self._factories[kind] = factory

    def _make_inner_client(self, spec: CampaignSpec) -> PlatformClient:
        factory = self._factories.get(spec.platform.kind)
        if factory is None:
            raise ValueError(
                f"no platform client factory registered for kind "
                f"{spec.platform.kind!r} (registered: "
                f"{sorted(self._factories)})"
            )
        return factory(spec)

    def get(self, campaign_id: str) -> Campaign:
        campaign = self._campaigns.get(campaign_id)
        if campaign is None:
            raise KeyError(f"unknown campaign {campaign_id!r}")
        return campaign

    def list(self) -> List[Dict[str, Any]]:
        return [
            self._campaigns[cid].status() for cid in sorted(self._campaigns)
        ]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _allocate_id(self) -> str:
        while True:
            self._id_counter += 1
            campaign_id = f"c{self._id_counter:04d}"
            if campaign_id not in self._campaigns and not os.path.exists(
                os.path.join(self.root, campaign_id)
            ):
                return campaign_id

    def _journal_fsync_every(self, spec: CampaignSpec) -> int:
        return (
            self._fsync_every
            if spec.journal.fsync_every is None
            else spec.journal.fsync_every
        )

    def _host(
        self,
        campaign_id: str,
        spec: CampaignSpec,
        journal: Journal,
        replay_events: List[Dict[str, Any]],
        *,
        recovered: bool,
        snapshot: Optional[Dict[str, Any]] = None,
    ) -> Campaign:
        client = JournalingPlatformClient(
            self._make_inner_client(spec), journal, replay_events=replay_events
        )
        engine = spec.build_engine()
        gate = PauseGate()
        runtime = CrowdRuntime(engine, client, spec=spec, gate=gate)
        if snapshot is not None:
            # Fast-path recovery: load state directly instead of replaying
            # the dropped prefix; only the post-snapshot tail replays.
            engine.restore_state(snapshot["engine"])
            client.restore_state(snapshot["client"])
            runtime.restore_state(snapshot["runtime"])
        campaign = Campaign(
            campaign_id=campaign_id,
            spec=spec,
            journal_path=journal.path,
            engine=engine,
            runtime=runtime,
            client=client,
            gate=gate,
            recovered=recovered,
            last_snapshot_seq=int(snapshot["seq"]) if snapshot else 0,
            _journal=journal,
            _compacted=asyncio.Event(),
        )
        runtime.on_safe_point = lambda: self._on_safe_point(campaign)
        self._campaigns[campaign_id] = campaign
        campaign.task = asyncio.get_running_loop().create_task(
            self._drive(campaign), name=f"campaign-{campaign_id}"
        )
        return campaign

    async def _drive(self, campaign: Campaign) -> None:
        try:
            await campaign.runtime.run()
        except asyncio.CancelledError:
            campaign.state = CampaignState.CANCELLED
            raise
        except Exception as exc:
            campaign.state = CampaignState.FAILED
            campaign.error = f"{type(exc).__name__}: {exc}"
        else:
            campaign.state = CampaignState.DONE

    async def create(
        self, spec: CampaignSpec, *, campaign_id: Optional[str] = None
    ) -> Campaign:
        """Start a new campaign from ``spec``; returns the hosted campaign.

        The journal header (the spec's JSON form) is durable before the
        first HIT is issued.
        """
        if campaign_id is None:
            campaign_id = self._allocate_id()
        if campaign_id in self._campaigns:
            raise ValueError(f"campaign {campaign_id!r} already exists")
        # Fail on an unregistered platform kind before any disk state.
        self._make_inner_client(spec)
        journal = Journal(
            os.path.join(self.root, campaign_id, JOURNAL_FILENAME),
            fsync_every=self._journal_fsync_every(spec),
        )
        journal.append(
            {
                "type": "header",
                "version": JOURNAL_VERSION,
                "campaign_id": campaign_id,
                "spec": spec.to_dict(),
            }
        )
        journal.flush()
        return self._host(campaign_id, spec, journal, [], recovered=False)

    async def recover(self) -> List[str]:
        """Replay every journal under the root; returns recovered ids.

        Campaigns already hosted in this process are skipped, so calling
        ``recover`` twice is safe.  Each journal is repaired
        (:meth:`Journal.read` truncates a torn final line), then either
        fast-pathed from its latest ``snapshot`` record (state loads
        directly; only the post-snapshot tail replays) or, without one,
        fully replayed through a fresh runtime to identical engine state —
        and continued live from where the dead process stopped.
        """
        recovered: List[str] = []
        if not os.path.isdir(self.root):
            return recovered
        for campaign_id in sorted(os.listdir(self.root)):
            if campaign_id in self._campaigns:
                continue
            path = os.path.join(self.root, campaign_id, JOURNAL_FILENAME)
            if not os.path.isfile(path):
                continue
            header, events = Journal.read(path, repair=True)
            spec = CampaignSpec.from_dict(header["spec"], trusted_order=True)
            journal = Journal(
                path,
                fsync_every=self._journal_fsync_every(spec),
                # read() above just parsed and repaired this very file;
                # re-parsing a 100k-record journal to rediscover the next
                # seq would double recovery's fixed cost.
                resume_seq=(events[-1]["seq"] if events else header["seq"]) + 1,
            )
            snapshot = None
            for i in range(len(events) - 1, -1, -1):
                if events[i].get("type") == "snapshot":
                    snapshot = events[i]
                    events = events[i + 1:]
                    break
            self._host(
                campaign_id, spec, journal, events,
                recovered=True, snapshot=snapshot,
            )
            recovered.append(campaign_id)
        return recovered

    # ------------------------------------------------------------------
    # journal compaction
    # ------------------------------------------------------------------
    def _on_safe_point(self, campaign: Campaign) -> None:
        """Compaction policy, invoked at every runtime safe point.

        At a safe point the engine/client/runtime state is exactly the
        journaled record sequence, so a snapshot taken here covers
        precisely the records before it.  Never fires mid-replay: a
        snapshot then would disagree with the still-unconsumed tail.
        """
        if campaign.client.replaying:
            return
        due = campaign.compact_requested
        compact_every = campaign.spec.journal.compact_every
        if not due and compact_every is not None:
            behind = campaign._journal.next_seq - 1 - campaign.last_snapshot_seq
            due = behind >= compact_every
        if due:
            self._compact_campaign(campaign)

    def _compact_campaign(self, campaign: Campaign) -> int:
        """Append a snapshot record (unless one already sits at the tail)
        and atomically rewrite the journal; returns records dropped."""
        journal = campaign._journal
        dropped = 0
        if journal.next_seq > 1:  # something journaled beyond the header
            if campaign.last_snapshot_seq != journal.next_seq - 1:
                campaign.last_snapshot_seq = journal.append(
                    {
                        "type": "snapshot",
                        "last_seq": journal.next_seq - 1,
                        "engine": campaign.engine.snapshot_state(),
                        "client": campaign.client.snapshot_state(),
                        "runtime": campaign.runtime.snapshot_state(),
                    }
                )
                journal.flush()
            dropped = journal.compact()
        campaign.compact_requested = False
        campaign._compacted.set()
        return dropped

    async def compact(self, campaign_id: str) -> Campaign:
        """Snapshot + compact the campaign's journal; returns the campaign.

        A live campaign compacts at its next safe point (a parked paused
        campaign is poked through one); a finished (``done``) campaign
        compacts immediately through a reopened journal.  Failed or
        cancelled campaigns refuse: their runtime may have stopped between
        a publish and its journal record, so no consistent snapshot exists.
        """
        campaign = self.get(campaign_id)
        if campaign.task is not None and not campaign.task.done():
            campaign.compact_requested = True
            campaign._compacted.clear()
            campaign.gate.poke()
            waiter = asyncio.ensure_future(campaign._compacted.wait())
            try:
                await asyncio.wait(
                    [waiter, campaign.task],
                    return_when=asyncio.FIRST_COMPLETED,
                )
            finally:
                waiter.cancel()
            if campaign._compacted.is_set():
                return campaign
            # The task finished before reaching another safe point — fall
            # through to the quiescent path below.
        if campaign.state in (CampaignState.FAILED, CampaignState.CANCELLED):
            raise RuntimeError(
                f"campaign {campaign_id!r} is {campaign.state.value}: its "
                "state may not match the journal, refusing to snapshot"
            )
        journal = campaign._journal
        reopened = journal.closed
        if reopened:
            # The runtime closed the journal when it finished; reopen it
            # just for the snapshot + rewrite.
            journal = Journal(
                journal.path,
                fsync_every=self._journal_fsync_every(campaign.spec),
            )
            campaign._journal = journal
        try:
            self._compact_campaign(campaign)
        finally:
            if reopened:
                journal.close()
        return campaign

    def pause(self, campaign_id: str) -> Campaign:
        """Stop issuing new HITs; in-flight completions still apply.

        For campaigns that opted into compaction (``journal.compact_every``
        in the spec), pausing also requests an opportunistic compaction: a
        pause is the natural moment to bound recovery time, and the next
        safe point the (still-consuming) runtime passes performs it.
        """
        campaign = self.get(campaign_id)
        if campaign.state is CampaignState.RUNNING:
            campaign.gate.pause()
            campaign.state = CampaignState.PAUSED
            if (
                campaign.spec.journal.compact_every is not None
                and campaign._journal.next_seq > 1
                and not campaign.client.replaying
            ):
                campaign.compact_requested = True
                campaign._compacted.clear()
        return campaign

    def resume(self, campaign_id: str) -> Campaign:
        """Resume a paused campaign (deferred publishes fire immediately)."""
        campaign = self.get(campaign_id)
        if campaign.state is CampaignState.PAUSED:
            campaign.gate.resume()
            campaign.state = CampaignState.RUNNING
        return campaign

    async def cancel(self, campaign_id: str) -> Campaign:
        """Cancel the campaign task and wait for its cleanup to finish.

        The runtime's ``finally`` closes the platform client (flushing and
        closing the journal) and the engine — releasing the parallel
        backend's worker pool.  The journal survives, so a cancelled
        campaign's answers remain replayable.
        """
        campaign = self.get(campaign_id)
        if campaign.task is not None and not campaign.task.done():
            campaign.gate.resume()  # a paused task must wake up to cancel
            campaign.task.cancel()
            try:
                await campaign.task
            except asyncio.CancelledError:
                pass
        if campaign.state in (CampaignState.RUNNING, CampaignState.PAUSED):
            campaign.state = CampaignState.CANCELLED
        return campaign

    async def wait(self, campaign_id: str) -> Campaign:
        """Block until the campaign's task finishes; returns the campaign."""
        campaign = self.get(campaign_id)
        if campaign.task is not None:
            try:
                await campaign.task
            except asyncio.CancelledError:
                pass
        return campaign

    async def close(self) -> None:
        """Cancel every live campaign and wait for cleanup."""
        for campaign_id in list(self._campaigns):
            campaign = self._campaigns[campaign_id]
            if campaign.task is not None and not campaign.task.done():
                await self.cancel(campaign_id)
