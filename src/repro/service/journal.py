"""The append-only campaign journal: one JSONL file, every paid answer.

A campaign's crowd answers are *paid for*; losing them to a crash means
paying twice.  The journal makes every externally-visible platform event
durable the moment it happens, in the exact pattern ``srdedupe`` uses for
its ``pair_decisions.jsonl`` cluster builder: newline-delimited JSON
records, appended and fsynced, replayed through the one answer-application
code path on restart.

Format (see ``docs/service.md`` for the full specification):

* Record 0 is the **header**: ``{"seq": 0, "type": "header", "version": 2,
  "campaign_id": ..., "spec": {...}}`` — the spec dict is byte-for-byte the
  same schema the HTTP create endpoint accepts
  (:meth:`repro.spec.CampaignSpec.to_dict`).
* Every subsequent record carries a **monotonic sequence number** (``seq``:
  1, 2, 3, …) stamped by :meth:`Journal.append` and a ``type`` in
  ``{"issue", "completion", "expiry", "review", "cancel", "note",
  "snapshot"}``.
* A **snapshot** record (format v2) embeds the full engine/client/runtime
  state at the moment every record up to ``last_seq`` (= its own ``seq`` -
  1) had been applied.  Recovery fast-paths from the latest snapshot and
  replays only the records after it.
* :meth:`Journal.compact` atomically rewrites the file as header +
  latest snapshot + post-snapshot tail (write temp, fsync, rename, fsync
  directory).  Tail records keep their original ``seq``, so a compacted
  journal's second record is a snapshot whose ``seq`` jumps past the
  dropped prefix — the only legal discontinuity.
* A record is durable once its line is written and the batched fsync has
  caught up; :class:`Journal` fsyncs every ``fsync_every`` records and on
  :meth:`flush`/:meth:`close`.

Crash anatomy: a process killed mid-``write`` leaves at most one **torn
final line** (no trailing newline, or truncated JSON).  That is expected
damage — :meth:`Journal.read` truncates it with a :class:`UserWarning` and
the campaign replays to the last durable record.  A crash mid-*compaction*
leaves either the intact original (plus a stray ``journal.jsonl.tmp``,
removed with a warning on the next open) or the intact rewrite — the
rename is the commit point.  Anything else — a malformed record *before*
the final line, a sequence gap, a missing header — is real corruption and
raises :class:`JournalCorruptError` with the byte offset and line number,
because silently dropping interior records would replay a *different
campaign*.
"""

from __future__ import annotations

import io
import json
import os
import warnings
from typing import Any, Dict, List, Optional, Tuple

#: Journal format version (bumped only on incompatible record changes).
#: v2 added the ``snapshot`` record type and compaction; v1 journals
#: (no snapshots) remain readable.
JOURNAL_VERSION = 2

#: Header versions :meth:`Journal.read` accepts.
SUPPORTED_JOURNAL_VERSIONS = (1, 2)

#: Default number of appends between fsyncs.  1 = maximally durable;
#: the default amortizes the disk flush over a small burst of events
#: while bounding loss to the current batch.
DEFAULT_FSYNC_EVERY = 16

#: The record types a journal may contain after the header.
EVENT_TYPES = (
    "issue", "completion", "expiry", "review", "cancel", "note", "snapshot",
)


class JournalCorruptError(ValueError):
    """The journal is damaged beyond the expected torn final line.

    Attributes:
        path: the journal file.
        offset: byte offset of the offending record's first byte.
        line_number: 1-based line number of the offending record.
    """

    def __init__(self, message: str, *, path: str, offset: int, line_number: int):
        super().__init__(
            f"{path}: {message} (line {line_number}, byte offset {offset})"
        )
        self.path = path
        self.offset = offset
        self.line_number = line_number


class JournalReplayError(RuntimeError):
    """Replay diverged: the runtime did not re-issue what the journal says
    it issued.  Either the journal belongs to a different spec or the
    runtime lost determinism — both must fail loudly, never resume onto a
    wrong state."""


class Journal:
    """Append-only JSONL writer with monotonic sequence numbers.

    Args:
        path: journal file; created (with parent directory) on first use,
            opened in append mode so recovery continues an existing file.
        fsync_every: append count between fsyncs (1 = every record).
        resume_seq: the next sequence number, for callers that *just*
            parsed this file via :meth:`read` (``repair=True``) — recovery
            opens journals with hundreds of thousands of records, and
            parsing each one twice would double its fixed restart cost.
            Omitted, an existing file is read (and validated) to find it.

    ``append`` stamps ``seq`` into each record and returns it.  The writer
    never rewrites existing bytes — recovery-side repair of a torn line is
    performed by :meth:`read` before a writer is reopened on the file.
    """

    def __init__(
        self,
        path: str,
        *,
        fsync_every: int = DEFAULT_FSYNC_EVERY,
        resume_seq: Optional[int] = None,
    ):
        if fsync_every < 1:
            raise ValueError(f"fsync_every must be >= 1, got {fsync_every}")
        self.path = str(path)
        self._fsync_every = fsync_every
        self._since_sync = 0
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        # A crash between writing the compaction temp file and the rename
        # leaves the original journal intact plus a stray temp: the rename
        # never happened, so the temp is dead weight, not data.
        tmp = self._tmp_path()
        if os.path.exists(tmp):
            warnings.warn(
                f"{tmp}: removing stray compaction temp file — a previous "
                "process died before committing a compaction; the journal "
                "itself is intact",
                UserWarning,
                stacklevel=2,
            )
            os.remove(tmp)
        # Continue an existing journal: next seq follows the last record.
        self._next_seq = 0
        if resume_seq is not None:
            self._next_seq = resume_seq
        elif os.path.exists(self.path) and os.path.getsize(self.path) > 0:
            header, events = Journal.read(self.path)
            self._next_seq = (events[-1]["seq"] if events else header["seq"]) + 1
        self._fh: Optional[io.TextIOWrapper] = open(
            self.path, "a", encoding="utf-8"
        )

    def _tmp_path(self) -> str:
        return self.path + ".tmp"

    @property
    def next_seq(self) -> int:
        """The sequence number the next :meth:`append` will stamp."""
        return self._next_seq

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has released the append handle."""
        return self._fh is None

    def append(self, record: Dict[str, Any]) -> int:
        """Write one record (stamping ``seq``); returns the stamped seq."""
        if self._fh is None:
            raise ValueError(f"journal {self.path} is closed")
        seq = self._next_seq
        stamped = {"seq": seq, **record}
        self._fh.write(json.dumps(stamped, sort_keys=True) + "\n")
        self._next_seq += 1
        self._since_sync += 1
        if self._since_sync >= self._fsync_every:
            self.flush()
        return seq

    def flush(self) -> None:
        """Flush userspace buffers and fsync to the disk."""
        if self._fh is None:
            return
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._since_sync = 0

    def close(self) -> None:
        if self._fh is not None:
            self.flush()
            self._fh.close()
            self._fh = None

    def compact(self) -> int:
        """Atomically drop every record before the latest snapshot.

        The file is rewritten as header + latest snapshot + post-snapshot
        tail through a temp file that is fsynced, renamed over the journal,
        and committed with a directory fsync — a crash at any point leaves
        either the intact original or the intact rewrite.  Tail records
        keep their original ``seq`` (the snapshot's ``seq`` becomes the one
        legal discontinuity), so :attr:`next_seq` is unaffected and replay
        offsets stay meaningful.  The header's ``version`` is stamped to
        the current :data:`JOURNAL_VERSION`, since the rewrite introduces
        v2 semantics regardless of what created the journal.

        Returns:
            the number of records dropped (0 when already compact).

        Raises:
            ValueError: when the journal holds no snapshot record.
        """
        was_open = self._fh is not None
        if was_open:
            self.flush()
        header, events = Journal.read(self.path, repair=False)
        snapshot_index = None
        for i in range(len(events) - 1, -1, -1):
            if events[i].get("type") == "snapshot":
                snapshot_index = i
                break
        if snapshot_index is None:
            raise ValueError(
                f"journal {self.path} has no snapshot record to compact to"
            )
        if snapshot_index == 0 and header.get("version") == JOURNAL_VERSION:
            return 0
        header = {**header, "version": JOURNAL_VERSION}
        kept = [header] + events[snapshot_index:]
        tmp = self._tmp_path()
        with open(tmp, "w", encoding="utf-8") as fh:
            for record in kept:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        if was_open:
            self._fh.close()
            self._fh = None
        os.replace(tmp, self.path)
        dir_fd = os.open(os.path.dirname(self.path) or ".", os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
        if was_open:
            self._fh = open(self.path, "a", encoding="utf-8")
        return snapshot_index

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # reading / recovery
    # ------------------------------------------------------------------
    @staticmethod
    def read(
        path: str, *, repair: bool = True
    ) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
        """Parse a journal into ``(header, events)``, repairing torn tails.

        A torn **final** line (the expected artifact of a crash mid-write)
        is dropped with a :class:`UserWarning`; with ``repair=True`` the
        file is also truncated to the last good record so a reopened writer
        appends after it.  Any other damage raises
        :class:`JournalCorruptError` with the byte offset: a malformed
        interior record, a non-monotonic or gapped ``seq``, an unknown
        record type, or a missing/invalid header.
        """
        path = str(path)
        with open(path, "rb") as fh:
            raw = fh.read()
        records: List[Dict[str, Any]] = []
        offset = 0
        good_end = 0  # byte offset just past the last intact record
        line_number = 0
        torn: Optional[str] = None
        for line in raw.split(b"\n"):
            line_number += 1
            if offset + len(line) >= len(raw):
                # Final chunk with no trailing newline: an unterminated
                # write.  Empty means the file ended cleanly at a newline.
                if line.strip():
                    torn = f"torn final line (no trailing newline, {len(line)} bytes)"
                break
            if not line.strip():
                # A blank interior line means bytes were lost mid-file.
                raise JournalCorruptError(
                    "blank interior line",
                    path=path, offset=offset, line_number=line_number,
                )
            try:
                record = json.loads(line.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                # Only the final *terminated* line can still be blamed on a
                # torn write if nothing follows it... it can't: a trailing
                # newline means the write completed.  Interior => corrupt.
                raise JournalCorruptError(
                    f"malformed record: {exc}",
                    path=path, offset=offset, line_number=line_number,
                ) from None
            if not isinstance(record, dict) or "seq" not in record:
                raise JournalCorruptError(
                    "record is not an object with a 'seq' field",
                    path=path, offset=offset, line_number=line_number,
                )
            expected_seq = (records[-1]["seq"] + 1) if records else 0
            if record["seq"] != expected_seq:
                # One discontinuity is legal: a compacted journal's second
                # record is a snapshot carrying its original seq, past the
                # dropped prefix.  Everything else is lost records.
                compaction_jump = (
                    len(records) == 1
                    and record.get("type") == "snapshot"
                    and isinstance(record["seq"], int)
                    and record["seq"] > expected_seq
                )
                if not compaction_jump:
                    raise JournalCorruptError(
                        f"sequence discontinuity: expected seq {expected_seq}, "
                        f"found {record['seq']!r}",
                        path=path, offset=offset, line_number=line_number,
                    )
            if len(records) == 0:
                if record.get("type") != "header" or "spec" not in record:
                    raise JournalCorruptError(
                        "first record is not a campaign header",
                        path=path, offset=offset, line_number=line_number,
                    )
                if record.get("version") not in SUPPORTED_JOURNAL_VERSIONS:
                    raise JournalCorruptError(
                        f"unsupported journal version {record.get('version')!r}",
                        path=path, offset=offset, line_number=line_number,
                    )
            elif record.get("type") not in EVENT_TYPES:
                raise JournalCorruptError(
                    f"unknown record type {record.get('type')!r}",
                    path=path, offset=offset, line_number=line_number,
                )
            elif record.get("type") == "snapshot" and (
                record.get("last_seq") != record["seq"] - 1
            ):
                # Snapshots are taken at a quiescent point, so by
                # construction they cover exactly the records before them.
                raise JournalCorruptError(
                    f"snapshot last_seq {record.get('last_seq')!r} does not "
                    f"cover the records before seq {record['seq']}",
                    path=path, offset=offset, line_number=line_number,
                )
            records.append(record)
            offset += len(line) + 1
            good_end = offset
        if torn is not None:
            warnings.warn(
                f"{path}: dropping {torn} — expected damage from a crash "
                "mid-write; the campaign resumes from the last durable record",
                UserWarning,
                stacklevel=2,
            )
            if repair:
                with open(path, "r+b") as fh:
                    fh.truncate(good_end)
        if not records:
            raise JournalCorruptError(
                "journal has no intact header record",
                path=path, offset=0, line_number=1,
            )
        return records[0], records[1:]
