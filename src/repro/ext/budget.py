"""Budget-capped labeling (related work: Whang et al., question selection).

The paper's Section 7 contrasts with budget-based crowd ER: "assumed there
was not enough money to label all the pairs, and explored how to make good
use of limited money".  This extension brings that regime to the transitive
framework: crowdsource at most ``budget`` pairs following the labeling
order, deduce everything implied, and report how much of the candidate set
got resolved — the money/coverage trade-off curve.

Combined with the heuristic order, early budget goes to likely-matching
pairs, whose answers are exactly the ones transitivity multiplies; the
coverage curve is therefore strongly concave on cluster-rich data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Union

from ..core.cluster_graph import ClusterGraph, ConflictPolicy
from ..core.oracle import LabelOracle
from ..core.pairs import CandidatePair, Label, Pair, Provenance
from ..core.result import LabelingResult


@dataclass
class BudgetedResult:
    """Outcome of a budget-capped run.

    Attributes:
        result: labels for the pairs that were resolved.
        unresolved: pairs left unlabeled when the budget ran out.
        budget: the crowdsourcing cap that was applied.
    """

    result: LabelingResult
    unresolved: List[Pair]
    budget: int

    @property
    def coverage(self) -> float:
        """Fraction of candidate pairs that got a label, in [0, 1]."""
        total = self.result.n_pairs + len(self.unresolved)
        return self.result.n_pairs / total if total else 1.0

    @property
    def pairs_per_question(self) -> float:
        """Labels obtained per crowdsourced pair — the leverage ratio."""
        if self.result.n_crowdsourced == 0:
            return 0.0
        return self.result.n_pairs / self.result.n_crowdsourced


def label_with_budget(
    order: Sequence[Union[Pair, CandidatePair]],
    oracle: LabelOracle,
    budget: int,
    policy: ConflictPolicy = ConflictPolicy.STRICT,
) -> BudgetedResult:
    """Sequentially label until the crowdsourcing budget is exhausted.

    After the budget runs out, remaining pairs are still resolved whenever
    deducible from the answers already bought; truly unknown pairs are
    reported as unresolved.

    Raises:
        ValueError: for a negative budget.
    """
    if budget < 0:
        raise ValueError(f"budget must be non-negative, got {budget}")
    pairs = [item.pair if isinstance(item, CandidatePair) else item for item in order]
    graph = ClusterGraph(policy=policy)
    result = LabelingResult(order=pairs)
    unresolved: List[Pair] = []
    spent = 0
    for pair in pairs:
        deduced = graph.deduce(pair)
        if deduced is not None:
            result.record(pair, deduced, Provenance.DEDUCED, spent)
            continue
        if spent >= budget:
            unresolved.append(pair)
            continue
        answer = oracle.label(pair)
        graph.add(pair, answer)
        result.rounds.append([pair])
        result.record(pair, answer, Provenance.CROWDSOURCED, spent)
        spent += 1
    return BudgetedResult(result=result, unresolved=unresolved, budget=budget)


def coverage_curve(
    order: Sequence[Union[Pair, CandidatePair]],
    oracle: LabelOracle,
    budgets: Sequence[int],
) -> Dict[int, float]:
    """Coverage at each budget level — the money/coverage trade-off series."""
    return {
        budget: label_with_budget(order, oracle, budget).coverage
        for budget in budgets
    }
