"""One-to-one join relations (paper Section 8, future work).

The conclusion lists "explore other kinds of relations (e.g. one-to-one
relationship)" as future work.  In a bipartite join where each left-table
record matches at most one right-table record (product catalogues: one
listing per store per product), a matching answer carries extra negative
information: once ``a ~ b`` is known, every other pair touching ``a`` on the
right side (or ``b`` on the left side) is non-matching.

:class:`OneToOneClusterGraph` layers this rule on top of the transitive
ClusterGraph: a pair is deducible as non-matching when either object's
cluster already *occupies* the other object's source (contains a different
record from it).  Deduction power strictly increases, so crowdsourced counts
can only drop (property-tested).  The rule is only *sound* when the ground
truth really is one-to-one per source — applying it to data with multi-record
sources trades correctness for savings, which the ablation benchmark
quantifies.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Mapping, Optional, Union

from ..core.cluster_graph import ClusterGraph, ConflictPolicy
from ..core.oracle import LabelOracle
from ..core.pairs import CandidatePair, Label, Pair, Provenance
from ..core.result import LabelingResult


class OneToOneClusterGraph:
    """ClusterGraph + the one-to-one deduction rule.

    Args:
        source_of: record -> source-table name for every record that may
            appear; records missing from the map are treated as sourceless
            (the rule never fires for them).
        policy: conflict policy of the underlying ClusterGraph.
    """

    def __init__(
        self,
        source_of: Mapping[Hashable, str],
        policy: ConflictPolicy = ConflictPolicy.STRICT,
    ) -> None:
        self._graph = ClusterGraph(policy=policy)
        self._source_of = source_of
        # cluster root -> {source name -> representative record}; maintained
        # incrementally as matching inserts merge clusters.
        self._occupied: Dict[Hashable, Dict[str, Hashable]] = {}

    @property
    def base_graph(self) -> ClusterGraph:
        """The underlying transitive-only ClusterGraph."""
        return self._graph

    def _register(self, obj: Hashable) -> None:
        root = self._graph.cluster_of(obj)
        entry = self._occupied.setdefault(root, {})
        source = self._source_of.get(obj)
        if source is not None:
            entry.setdefault(source, obj)

    def add(self, pair: Pair, label: Label) -> bool:
        """Insert a labeled pair (same contract as ClusterGraph.add)."""
        if label is Label.MATCHING and pair.left in self._graph and pair.right in self._graph:
            old_roots = {
                self._graph.cluster_of(pair.left),
                self._graph.cluster_of(pair.right),
            }
        else:
            old_roots = set()
        applied = self._graph.add(pair, label)
        if not applied:
            return False
        if label is Label.MATCHING:
            merged: Dict[str, Hashable] = {}
            for root in old_roots:
                for source, occupant in self._occupied.pop(root, {}).items():
                    merged.setdefault(source, occupant)
            new_root = self._graph.cluster_of(pair.left)
            entry = self._occupied.setdefault(new_root, {})
            for source, occupant in merged.items():
                entry.setdefault(source, occupant)
        self._register(pair.left)
        self._register(pair.right)
        return True

    def deduce(self, pair: Pair) -> Optional[Label]:
        """Transitive deduction first, then the one-to-one rule.

        The rule only speaks about *cross-source* pairs — the ones a
        bipartite join actually asks about.
        """
        deduced = self._graph.deduce(pair)
        if deduced is not None:
            return deduced
        left_source = self._source_of.get(pair.left)
        right_source = self._source_of.get(pair.right)
        if left_source is None or right_source is None or left_source == right_source:
            return None
        if self._occupied_elsewhere(pair.left, pair.right):
            return Label.NON_MATCHING
        if self._occupied_elsewhere(pair.right, pair.left):
            return Label.NON_MATCHING
        return None

    def _occupied_elsewhere(self, obj: Hashable, other: Hashable) -> bool:
        """Does ``obj``'s cluster already hold a different record from
        ``other``'s source?"""
        other_source = self._source_of.get(other)
        if other_source is None or obj not in self._graph:
            return False
        root = self._graph.cluster_of(obj)
        occupant = self._occupied.get(root, {}).get(other_source)
        return occupant is not None and occupant != other

    def deducible(self, pair: Pair) -> bool:
        return self.deduce(pair) is not None


def label_sequential_one_to_one(
    order: Iterable[Union[Pair, CandidatePair]],
    oracle: LabelOracle,
    source_of: Mapping[Hashable, str],
    policy: ConflictPolicy = ConflictPolicy.STRICT,
) -> LabelingResult:
    """Sequential labeling with one-to-one deduction.

    Identical to :func:`repro.core.sequential.label_sequential` except that
    the one-to-one rule lets strictly more pairs be deduced, so the
    crowdsourced count can only be lower or equal (property-tested).
    """
    graph = OneToOneClusterGraph(source_of, policy=policy)
    pairs = [item.pair if isinstance(item, CandidatePair) else item for item in order]
    result = LabelingResult(order=pairs)
    round_index = 0
    for pair in pairs:
        deduced = graph.deduce(pair)
        if deduced is not None:
            result.record(pair, deduced, Provenance.DEDUCED, round_index)
            continue
        answer = oracle.label(pair)
        graph.add(pair, answer)
        result.rounds.append([pair])
        result.record(pair, answer, Provenance.CROWDSOURCED, round_index)
        round_index += 1
    return result
