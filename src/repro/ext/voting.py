"""Error-tolerant deduction via auditing (Gruenheid et al. direction).

The paper assumes correct answers and defers inconsistent-answer handling to
Gruenheid et al. [5].  A tempting design is to escalate whenever a crowd
answer contradicts the deduction graph — but under the sound parallel
selection rule that event is *provably unreachable*: a pair is only published
when no outcome of the pairs before it can imply its label, so by the time
its answer arrives nothing can contradict it (we verify this impossibility as
a property test).  Wrong answers therefore get baked into the graph silently
and consistently — the framework never observes its own errors, which is
exactly why the paper's Table 2 quality loss shows up only against ground
truth.

The honest error-tolerance mechanism is **deliberate redundancy**: spend
extra budget re-asking a sample of *deduced* pairs and compare the crowd's
fresh majority with the deduced label.  Disagreements localise wrong answers;
repaired labels replace the audited deductions.

:class:`DeductionAuditor` implements this audit-and-repair loop.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List

from ..core.oracle import LabelOracle
from ..core.pairs import Label, Pair
from ..core.result import LabelingResult


@dataclass
class AuditReport:
    """Outcome of auditing a labeling run's deduced pairs.

    Attributes:
        audited: deduced pairs that were re-asked.
        disagreements: audited pairs where the fresh crowd majority
            contradicted the deduced label.
        extra_queries: oracle calls spent on the audit.
        repaired_labels: final labels — the original run's labels with
            disagreeing audited pairs overridden by the audit majority.
    """

    audited: List[Pair] = field(default_factory=list)
    disagreements: List[Pair] = field(default_factory=list)
    extra_queries: int = 0
    repaired_labels: Dict[Pair, Label] = field(default_factory=dict)

    @property
    def disagreement_rate(self) -> float:
        """Fraction of audited deductions the crowd contradicted — an
        estimator of the deduced labels' error rate."""
        if not self.audited:
            return 0.0
        return len(self.disagreements) / len(self.audited)


class DeductionAuditor:
    """Re-ask a sample of deduced pairs and repair disagreements.

    Args:
        fraction: share of deduced pairs to audit, in [0, 1].
        votes: fresh oracle queries per audited pair (odd recommended).
        seed: sampling seed.
    """

    def __init__(self, fraction: float = 0.1, votes: int = 3, seed: int = 0) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if votes < 1:
            raise ValueError(f"votes must be >= 1, got {votes}")
        self._fraction = fraction
        self._votes = votes
        self._seed = seed

    def audit(self, result: LabelingResult, oracle: LabelOracle) -> AuditReport:
        """Audit a completed run against a (fresh-noise) oracle.

        The oracle should give independent answers per query (see
        :class:`FreshNoisyOracle`); a memoised oracle will simply re-confirm
        whatever it said before.
        """
        report = AuditReport(repaired_labels=dict(result.labels()))
        deduced = result.deduced_pairs()
        if not deduced:
            return report
        rng = random.Random(self._seed)
        sample_size = max(1, round(len(deduced) * self._fraction)) if self._fraction else 0
        sample = rng.sample(deduced, min(sample_size, len(deduced)))
        for pair in sample:
            report.audited.append(pair)
            votes = Counter()
            for _ in range(self._votes):
                votes[oracle.label(pair)] += 1
                report.extra_queries += 1
            majority = votes.most_common(1)[0][0]
            if majority is not result.label_of(pair):
                report.disagreements.append(pair)
                report.repaired_labels[pair] = majority
        return report


def audit_deductions(
    result: LabelingResult,
    oracle: LabelOracle,
    fraction: float = 0.1,
    votes: int = 3,
    seed: int = 0,
) -> AuditReport:
    """Convenience wrapper around :class:`DeductionAuditor`."""
    return DeductionAuditor(fraction=fraction, votes=votes, seed=seed).audit(
        result, oracle
    )


class FreshNoisyOracle:
    """A noisy oracle that re-rolls on every query (no memoisation).

    Unlike :class:`~repro.core.oracle.NoisyOracle`, asking the same pair
    twice gives independent answers — required for auditing to help.
    """

    def __init__(self, base: LabelOracle, error_rate: float, seed: int = 0) -> None:
        if not 0.0 <= error_rate <= 1.0:
            raise ValueError(f"error_rate must be in [0, 1], got {error_rate}")
        self._base = base
        self._error_rate = error_rate
        self._rng = random.Random(seed)
        self.n_queries = 0

    def label(self, pair: Pair) -> Label:
        self.n_queries += 1
        answer = self._base.label(pair)
        if self._rng.random() < self._error_rate:
            return answer.negate()
        return answer
