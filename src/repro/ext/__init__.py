"""Extensions from the paper's future-work list (Section 8): one-to-one
join relations, budget-capped labeling, and audited (error-tolerant)
deduction."""

from .budget import BudgetedResult, coverage_curve, label_with_budget
from .one_to_one import OneToOneClusterGraph, label_sequential_one_to_one
from .voting import (
    AuditReport,
    DeductionAuditor,
    FreshNoisyOracle,
    audit_deductions,
)

__all__ = [
    "AuditReport",
    "BudgetedResult",
    "DeductionAuditor",
    "FreshNoisyOracle",
    "OneToOneClusterGraph",
    "audit_deductions",
    "coverage_curve",
    "label_sequential_one_to_one",
    "label_with_budget",
]
