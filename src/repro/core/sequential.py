"""The simple one-pair-at-a-time labeling algorithm (paper Section 3.2).

Pairs are processed in the given order.  For each pair: if its label can be
deduced from the already-labeled pairs via transitive relations, the deduced
label is recorded for free; otherwise the pair is crowdsourced (one oracle
query) and its answer inserted into the ClusterGraph.

This algorithm attains the minimum number of crowdsourced pairs *for its
order*, but serialises crowd work: each crowdsourced pair is its own round,
which is the latency problem the parallel labeler (Section 5) solves.

:class:`SequentialLabeler` is a **deprecated** compatibility facade over
:class:`repro.engine.dispatch.SequentialDispatch`; the labeling loop itself
lives in the shared :class:`repro.engine.LabelingEngine`.  Migrate::

    SequentialLabeler(policy=p).run(order, oracle)
    # becomes
    SequentialDispatch(policy=p).run(order, oracle)
    # or, spec-first:
    SequentialDispatch(spec=CampaignSpec(order=order, mode="sequential")).run(order, oracle)
"""

from __future__ import annotations

import warnings
from typing import List, Optional, Sequence, Union

from ..engine.dispatch import SequentialDispatch
from .cluster_graph import ClusterGraph, ConflictPolicy
from .oracle import LabelOracle
from .pairs import CandidatePair, Pair, Provenance
from .result import LabelingResult


def _as_pairs(order: Sequence[Union[Pair, CandidatePair]]) -> List[Pair]:
    return [item.pair if isinstance(item, CandidatePair) else item for item in order]


class SequentialLabeler:
    """One-pair-at-a-time labeler.

    Args:
        policy: conflict policy for the underlying ClusterGraph.  With a
            perfect oracle STRICT never triggers; with noisy answers
            FIRST_WINS keeps the run alive and records conflicts.
    """

    def __init__(self, policy: ConflictPolicy = ConflictPolicy.STRICT) -> None:
        warnings.warn(
            "SequentialLabeler is deprecated; use "
            "repro.engine.dispatch.SequentialDispatch (optionally with "
            "spec=CampaignSpec(mode='sequential', ...)) — see the migration "
            "table in docs/service.md",
            DeprecationWarning,
            stacklevel=2,
        )
        self._policy = policy

    def run(
        self,
        order: Sequence[Union[Pair, CandidatePair]],
        oracle: LabelOracle,
        graph: Optional[ClusterGraph] = None,
    ) -> LabelingResult:
        """Label every pair in ``order``; return the full result.

        Args:
            order: the labeling order (pairs or candidate pairs).
            oracle: answers crowdsourced queries.
            graph: optional pre-populated ClusterGraph to continue from
                (its pairs count as already labeled).
        """
        return SequentialDispatch(policy=self._policy).run(order, oracle, graph=graph)


def label_sequential(
    order: Sequence[Union[Pair, CandidatePair]],
    oracle: LabelOracle,
    policy: ConflictPolicy = ConflictPolicy.STRICT,
) -> LabelingResult:
    """Convenience wrapper around :class:`SequentialDispatch`."""
    return SequentialDispatch(policy=policy).run(order, oracle)


def crowdsourced_count(
    order: Sequence[Union[Pair, CandidatePair]], oracle: LabelOracle
) -> int:
    """``C(omega)``: the number of crowdsourced pairs the order requires.

    This is the cost function of Definitions 2 and 3 in the paper, evaluated
    by simulating the sequential labeler against ``oracle``.
    """
    return label_sequential(order, oracle).n_crowdsourced


def label_non_transitive(
    order: Sequence[Union[Pair, CandidatePair]], oracle: LabelOracle
) -> LabelingResult:
    """The Non-Transitive baseline: crowdsource every pair (paper Section 6.1).

    All pairs are published in a single round since no pair depends on any
    other.
    """
    pairs = _as_pairs(order)
    result = LabelingResult(order=pairs)
    result.rounds.append(list(pairs))
    for pair in pairs:
        result.record(pair, oracle.label(pair), Provenance.CROWDSOURCED, 0)
    return result
