"""Reference (specification-level) deduction procedures.

Lemma 1 of the paper defines deducibility in terms of *paths* in the graph of
labeled pairs:

1. a path from ``o`` to ``o'`` consisting only of matching edges deduces the
   pair as matching;
2. a path containing exactly one non-matching edge deduces it as
   non-matching;
3. if every path contains more than one non-matching edge, nothing can be
   deduced.

The ClusterGraph (``repro.core.cluster_graph``) answers the same question in
near-constant time; the functions here are the executable specification used
to cross-validate it in tests and in the deduction ablation benchmark:

* :func:`deduce_by_search` — a two-level BFS over (object, #non-matching
  edges used) states; polynomial and exact.
* :func:`deduce_by_path_enumeration` — the naive method the paper dismisses
  as exponential (Section 3.2); enumerates simple paths.  Only usable on tiny
  graphs, kept as the most literal reading of Lemma 1.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from .pairs import Label, LabeledPair, Pair


def _build_adjacency(
    labeled: Iterable[LabeledPair],
) -> Dict[Hashable, List[Tuple[Hashable, Label]]]:
    adjacency: Dict[Hashable, List[Tuple[Hashable, Label]]] = {}
    for item in labeled:
        a, b = item.pair.left, item.pair.right
        adjacency.setdefault(a, []).append((b, item.label))
        adjacency.setdefault(b, []).append((a, item.label))
    return adjacency


def deduce_by_search(pair: Pair, labeled: Iterable[LabeledPair]) -> Optional[Label]:
    """Decide deducibility by BFS over (object, non-matching-count) states.

    A state ``(v, k)`` with ``k`` in {0, 1} means ``v`` is reachable from the
    source via a path using exactly ``k`` non-matching edges.  The pair is
    matching if the target is reachable with ``k = 0``; non-matching if only
    with ``k = 1``; undeducible otherwise.

    Runs in O(V + E) time and is exact, unlike path enumeration.
    """
    adjacency = _build_adjacency(labeled)
    source, target = pair.left, pair.right
    if source not in adjacency or target not in adjacency:
        return None
    # visited[k] = objects reached using exactly k non-matching edges.
    visited: Tuple[Set[Hashable], Set[Hashable]] = (set(), set())
    queue: deque[Tuple[Hashable, int]] = deque([(source, 0)])
    visited[0].add(source)
    reachable = [False, False]
    while queue:
        node, used = queue.popleft()
        if node == target:
            reachable[used] = True
            if reachable[0]:
                break
            continue
        for neighbour, label in adjacency.get(node, ()):
            next_used = used + (0 if label is Label.MATCHING else 1)
            if next_used > 1:
                continue
            if neighbour not in visited[next_used]:
                visited[next_used].add(neighbour)
                queue.append((neighbour, next_used))
    if reachable[0]:
        return Label.MATCHING
    if reachable[1]:
        return Label.NON_MATCHING
    return None


def enumerate_simple_paths(
    source: Hashable,
    target: Hashable,
    labeled: Iterable[LabeledPair],
    max_paths: int = 1_000_000,
) -> List[List[Label]]:
    """Enumerate the edge-label sequences of all simple paths source->target.

    This is the naive procedure the paper rejects as exponential; exposed for
    the deduction ablation benchmark and for tests on small graphs.

    Args:
        max_paths: hard cap as a safety valve against combinatorial blow-up.

    Raises:
        RuntimeError: if more than ``max_paths`` paths are found.
    """
    adjacency = _build_adjacency(labeled)
    paths: List[List[Label]] = []
    if source not in adjacency or target not in adjacency:
        return paths

    stack: List[Hashable] = [source]
    on_path: Set[Hashable] = {source}
    labels: List[Label] = []

    def visit(node: Hashable) -> None:
        if node == target:
            paths.append(list(labels))
            if len(paths) > max_paths:
                raise RuntimeError(f"more than {max_paths} simple paths")
            return
        for neighbour, label in adjacency.get(node, ()):
            if neighbour in on_path:
                continue
            on_path.add(neighbour)
            stack.append(neighbour)
            labels.append(label)
            visit(neighbour)
            labels.pop()
            stack.pop()
            on_path.discard(neighbour)

    visit(source)
    return paths


def deduce_by_path_enumeration(
    pair: Pair, labeled: Iterable[LabeledPair], max_paths: int = 1_000_000
) -> Optional[Label]:
    """Literal Lemma-1 deduction via simple-path enumeration.

    Exponential in the worst case; only for tiny graphs / cross-validation.
    """
    paths = enumerate_simple_paths(pair.left, pair.right, labeled, max_paths=max_paths)
    best: Optional[int] = None
    for path_labels in paths:
        non_matching = sum(1 for label in path_labels if label is Label.NON_MATCHING)
        if best is None or non_matching < best:
            best = non_matching
        if best == 0:
            break
    if best is None or best > 1:
        return None
    return Label.MATCHING if best == 0 else Label.NON_MATCHING
