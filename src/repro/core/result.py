"""Result records produced by the labeling algorithms.

Every labeler returns a :class:`LabelingResult` that records, per pair, the
final label, its provenance (crowdsourced or deduced), and the round in which
it was resolved.  These records feed every experiment: the money metric is
``n_crowdsourced``, the latency metrics come from ``rounds`` and the
platform traces, and the quality metrics compare ``matches()`` to truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Set

from .pairs import Label, LabeledPair, Pair, Provenance


@dataclass(frozen=True)
class PairOutcome:
    """The fate of one pair in a labeling run."""

    pair: Pair
    label: Label
    provenance: Provenance
    round_index: int
    position: int

    @property
    def crowdsourced(self) -> bool:
        return self.provenance is Provenance.CROWDSOURCED

    @property
    def deduced(self) -> bool:
        return self.provenance is Provenance.DEDUCED


@dataclass
class LabelingResult:
    """Full account of a labeling run.

    Attributes:
        outcomes: pair -> :class:`PairOutcome`, for every input pair.
        order: the labeling order that was used.
        rounds: pairs *crowdsourced* in each round, in publication order.
            The sequential labeler publishes one pair per round; the parallel
            labeler publishes batches (paper Figure 13 plots their sizes).
    """

    outcomes: Dict[Pair, PairOutcome] = field(default_factory=dict)
    order: List[Pair] = field(default_factory=list)
    rounds: List[List[Pair]] = field(default_factory=list)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(
        self,
        pair: Pair,
        label: Label,
        provenance: Provenance,
        round_index: int,
    ) -> None:
        """Record the outcome for ``pair``.

        Raises:
            ValueError: if the pair was already recorded (labels are final).
        """
        if pair in self.outcomes:
            raise ValueError(f"{pair!r} was already labeled")
        self.outcomes[pair] = PairOutcome(
            pair=pair,
            label=label,
            provenance=provenance,
            round_index=round_index,
            position=len(self.outcomes),
        )

    # ------------------------------------------------------------------
    # headline statistics
    # ------------------------------------------------------------------
    @property
    def n_pairs(self) -> int:
        """Total pairs labeled (crowdsourced + deduced)."""
        return len(self.outcomes)

    @property
    def n_crowdsourced(self) -> int:
        """The money metric: pairs sent to the crowd (paper Definition 1)."""
        return sum(1 for o in self.outcomes.values() if o.crowdsourced)

    @property
    def n_deduced(self) -> int:
        """Pairs resolved for free via transitive relations."""
        return sum(1 for o in self.outcomes.values() if o.deduced)

    @property
    def n_rounds(self) -> int:
        """Number of crowdsourcing iterations (paper Figures 13/14)."""
        return len(self.rounds)

    @property
    def savings(self) -> float:
        """Fraction of pairs that did not need crowdsourcing, in [0, 1]."""
        if not self.outcomes:
            return 0.0
        return self.n_deduced / self.n_pairs

    def round_sizes(self) -> List[int]:
        """Crowdsourced pairs per round (the Figure 13 series)."""
        return [len(batch) for batch in self.rounds]

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def label_of(self, pair: Pair) -> Label:
        """Final label of ``pair``.

        Raises:
            KeyError: if the pair was not part of this run.
        """
        return self.outcomes[pair].label

    def labels(self) -> Dict[Pair, Label]:
        """pair -> final label for all pairs."""
        return {pair: outcome.label for pair, outcome in self.outcomes.items()}

    def matches(self) -> Set[Pair]:
        """Pairs whose final label is MATCHING."""
        return {p for p, o in self.outcomes.items() if o.label is Label.MATCHING}

    def non_matches(self) -> Set[Pair]:
        """Pairs whose final label is NON_MATCHING."""
        return {p for p, o in self.outcomes.items() if o.label is Label.NON_MATCHING}

    def crowdsourced_pairs(self) -> List[Pair]:
        """Pairs that were sent to the crowd, in publication order."""
        flat: List[Pair] = []
        for batch in self.rounds:
            flat.extend(batch)
        return flat

    def deduced_pairs(self) -> List[Pair]:
        """Pairs resolved by deduction, in resolution order."""
        deduced = [o for o in self.outcomes.values() if o.deduced]
        deduced.sort(key=lambda o: o.position)
        return [o.pair for o in deduced]

    def as_labeled_pairs(self) -> List[LabeledPair]:
        """All outcomes as :class:`LabeledPair` values, in resolution order."""
        ordered = sorted(self.outcomes.values(), key=lambda o: o.position)
        return [LabeledPair(o.pair, o.label) for o in ordered]

    def __iter__(self) -> Iterator[PairOutcome]:
        return iter(sorted(self.outcomes.values(), key=lambda o: o.position))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LabelingResult({self.n_pairs} pairs: {self.n_crowdsourced} crowdsourced, "
            f"{self.n_deduced} deduced, {self.n_rounds} rounds)"
        )

    # ------------------------------------------------------------------
    # deferred bulk restore
    # ------------------------------------------------------------------
    def defer_restore(self, thunk) -> None:
        """Register ``thunk(self)`` to rebuild ``outcomes``/``rounds`` lazily.

        A snapshot restore of a large campaign would otherwise spend most
        of its time materialising per-pair :class:`PairOutcome` records
        that nothing may ever read (a recovered campaign that keeps
        labeling touches them only when reporting).  The thunk runs at
        most once, on the first access to either field — including the
        first :meth:`record` of a post-snapshot answer, so resumed runs
        always append to fully restored state.
        """
        self.__dict__["_restore_thunk"] = thunk


def _lazy_restore_field(name: str) -> property:
    """A field that materialises a pending :meth:`defer_restore` thunk.

    Plain instance storage under the same key; only reads trigger the
    thunk.  A wholesale assignment during deferral would be clobbered by
    a later materialisation — the only writer between defer and first
    read is the thunk itself, by construction in ``restore_state``.
    """

    def fget(self):
        d = self.__dict__
        thunk = d.get("_restore_thunk")
        if thunk is not None:
            d["_restore_thunk"] = None
            thunk(self)
        return d[name]

    def fset(self, value) -> None:
        self.__dict__[name] = value

    return property(fget, fset)


LabelingResult.outcomes = _lazy_restore_field("outcomes")
LabelingResult.rounds = _lazy_restore_field("rounds")


def merge_counts(results: Sequence[LabelingResult]) -> Dict[str, int]:
    """Aggregate headline counts across runs (used by sweep experiments)."""
    return {
        "pairs": sum(r.n_pairs for r in results),
        "crowdsourced": sum(r.n_crowdsourced for r in results),
        "deduced": sum(r.n_deduced for r in results),
        "rounds": sum(r.n_rounds for r in results),
    }
