"""The hybrid transitive-relations + crowdsourcing labeling framework.

Paper Figure 4: the framework takes the unlabeled candidate pairs produced by
machine-based techniques, the *Sorting* component picks a labeling order, and
the *Labeling* component resolves every pair either by crowdsourcing or by
deduction.  This module wires those components behind one facade so callers
write::

    framework = TransitiveJoinFramework(sorter=ExpectedOrderSorter(),
                                        labeler="parallel")
    result = framework.label(candidates, oracle)

The Non-Transitive baseline (publish everything) lives here too so that every
experiment can compare against it through the same interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional, Sequence

from ..engine.dispatch import (
    AnswerPolicy,
    InstantDispatch,
    InstantRunResult,
    RoundParallelDispatch,
    SequentialDispatch,
)
from .cluster_graph import ConflictPolicy
from .oracle import CountingOracle, LabelOracle
from .ordering import ExpectedOrderSorter, Sorter
from .pairs import CandidatePair
from .result import LabelingResult
from .sequential import label_non_transitive

LabelerName = Literal["sequential", "parallel", "instant", "instant+nf"]


@dataclass
class FrameworkRun:
    """A labeling run with its money meter attached.

    Attributes:
        result: the per-pair outcome record.
        oracle_calls: number of oracle queries actually issued (equals
            ``result.n_crowdsourced`` — asserted, since that equality is the
            framework's core invariant).
        instant: the event-driven trace when the instant labeler was used.
    """

    result: LabelingResult
    oracle_calls: int
    instant: Optional[InstantRunResult] = None


class TransitiveJoinFramework:
    """Sorting + Labeling components composed per paper Figure 4.

    Args:
        sorter: the Sorting component; defaults to the heuristic
            likelihood-descending order the paper recommends.
        labeler: which Labeling component to use — "sequential"
            (Section 3.2), "parallel" (Section 5.1), "instant"
            (Section 5.2 ID), or "instant+nf" (ID + NF).
        policy: ClusterGraph conflict policy (STRICT for perfect answers).
        seed: RNG seed for the instant labeler's answer simulation.
    """

    def __init__(
        self,
        sorter: Optional[Sorter] = None,
        labeler: LabelerName = "parallel",
        policy: ConflictPolicy = ConflictPolicy.STRICT,
        seed: int = 0,
    ) -> None:
        if labeler not in ("sequential", "parallel", "instant", "instant+nf"):
            raise ValueError(f"unknown labeler {labeler!r}")
        self._sorter: Sorter = sorter if sorter is not None else ExpectedOrderSorter()
        self._labeler_name: LabelerName = labeler
        self._policy = policy
        self._seed = seed

    @property
    def sorter(self) -> Sorter:
        return self._sorter

    @property
    def labeler_name(self) -> str:
        return self._labeler_name

    def sort(self, candidates: Sequence[CandidatePair]) -> list[CandidatePair]:
        """Run only the Sorting component."""
        return self._sorter.sort(list(candidates))

    def label(
        self, candidates: Sequence[CandidatePair], oracle: LabelOracle
    ) -> FrameworkRun:
        """Sort the candidates, then label them all; return the run record."""
        order = self.sort(candidates)
        counting = CountingOracle(oracle)
        instant_run: Optional[InstantRunResult] = None
        if self._labeler_name == "sequential":
            result = SequentialDispatch(policy=self._policy).run(order, counting)
        elif self._labeler_name == "parallel":
            result = RoundParallelDispatch(policy=self._policy).run(order, counting)
        else:
            answer_policy = (
                AnswerPolicy.NON_MATCHING_FIRST
                if self._labeler_name == "instant+nf"
                else AnswerPolicy.RANDOM
            )
            dispatch = InstantDispatch(
                instant_decision=True,
                answer_policy=answer_policy,
                seed=self._seed,
                policy=self._policy,
            )
            instant_run = dispatch.run(order, counting)
            result = instant_run.result
        assert counting.n_calls == result.n_crowdsourced, (
            "oracle calls must equal crowdsourced pairs "
            f"({counting.n_calls} != {result.n_crowdsourced})"
        )
        return FrameworkRun(result=result, oracle_calls=counting.n_calls, instant=instant_run)


def label_with_transitivity(
    candidates: Sequence[CandidatePair],
    oracle: LabelOracle,
    sorter: Optional[Sorter] = None,
    labeler: LabelerName = "parallel",
) -> LabelingResult:
    """One-call convenience API: sort, label, return the result."""
    framework = TransitiveJoinFramework(sorter=sorter, labeler=labeler)
    return framework.label(candidates, oracle).result


def label_baseline(
    candidates: Sequence[CandidatePair], oracle: LabelOracle
) -> LabelingResult:
    """The Non-Transitive baseline: every candidate is crowdsourced."""
    return label_non_transitive(list(candidates), oracle)
