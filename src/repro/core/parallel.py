"""The parallel labeling algorithm (paper Section 5.1, Algorithms 2 and 3).

The sequential labeler publishes one pair at a time, so a run with ``C``
crowdsourced pairs needs ``C`` crowd round-trips.  The key insight of
Section 5.1 is that a pair *must* be crowdsourced — no matter how earlier
pairs turn out — when every path between its objects has a minimum of two
non-matching edges even under the optimistic assumption that **all** unlabeled
pairs before it are matching: real answers can only turn assumed-matching
edges into non-matching ones, which never lowers a path's non-matching count.

Each round therefore publishes every such "must-crowdsource" pair at once,
collects the answers, deduces what has become deducible, and repeats.  Every
published pair is provably crowdsourced by the sequential labeler on the same
order too (property-tested), so parallelism never increases the money cost;
only the number of rounds shrinks — from ``C`` to the handful reported in
paper Figures 13 and 14.

Reproduction note: the paper's Algorithm 3 pseudocode inserts only the
*selected* pairs as matching and leaves optimistically-deducible pairs out of
the graph.  That variant is unsound in rare interleavings (an unlabeled pair
whose optimistic deduction is non-matching may truly be matching, enabling
deductions the selection ignored — the instant-decision mode can then
over-publish).  We implement the paper's *prose* criterion instead: every
unlabeled pair, selected or skipped, is assumed matching, which restores the
minimum-non-matching-count argument.  See DESIGN.md section 5.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set, Union

from .cluster_graph import ClusterGraph, ConflictPolicy
from .oracle import LabelOracle
from .pairs import CandidatePair, Label, Pair, Provenance
from .result import LabelingResult
from .sequential import _as_pairs
from .union_find import UnionFind


class OptimisticGraph:
    """Cluster graph under the "all unlabeled pairs match" assumption.

    Unlike :class:`~repro.core.cluster_graph.ClusterGraph`, merging two
    clusters connected by a non-matching edge is *allowed* here: the edge
    becomes a self-loop and is dropped, because in minimum-non-matching-count
    semantics an intra-cluster non-matching edge can never lie on a minimal
    path.  Likewise a non-matching edge inside one cluster is silently
    ignored.  This permissiveness is exactly what the optimistic assumption
    needs and would be a consistency violation anywhere else.
    """

    def __init__(self) -> None:
        self._uf = UnionFind()
        self._nm: Dict[Hashable, Set[Hashable]] = {}

    def assume_matching(self, a: Hashable, b: Hashable) -> None:
        """Merge the clusters of ``a`` and ``b`` (real or assumed match)."""
        root_a = self._uf.find(a)
        root_b = self._uf.find(b)
        if root_a == root_b:
            return
        survivor = self._uf.union(root_a, root_b)
        loser = root_b if survivor == root_a else root_a
        loser_nm = self._nm.pop(loser, set())
        if loser_nm:
            survivor_nm = self._nm.setdefault(survivor, set())
            for neighbour in loser_nm:
                self._nm[neighbour].discard(loser)
                if neighbour != survivor:
                    self._nm[neighbour].add(survivor)
                    survivor_nm.add(neighbour)
            if not survivor_nm:
                del self._nm[survivor]

    def add_non_matching(self, a: Hashable, b: Hashable) -> None:
        """Record a real non-matching answer (ignored if intra-cluster)."""
        root_a = self._uf.find(a)
        root_b = self._uf.find(b)
        if root_a == root_b:
            return
        self._nm.setdefault(root_a, set()).add(root_b)
        self._nm.setdefault(root_b, set()).add(root_a)

    def must_crowdsource(self, pair: Pair) -> bool:
        """True iff no path between the objects can have fewer than two
        non-matching edges, i.e. the pair is undeducible under every possible
        outcome of the assumed pairs."""
        if pair.left not in self._uf or pair.right not in self._uf:
            return True
        root_left = self._uf.find(pair.left)
        root_right = self._uf.find(pair.right)
        if root_left == root_right:
            return False
        return root_right not in self._nm.get(root_left, ())


def parallel_crowdsourced_pairs(
    order: Sequence[Union[Pair, CandidatePair]],
    labeled: Dict[Pair, Label],
    exclude: Optional[Set[Pair]] = None,
) -> List[Pair]:
    """Identify the pairs that can be crowdsourced in parallel (Algorithm 3).

    Scans ``order`` once, maintaining an :class:`OptimisticGraph`.  Labeled
    pairs are inserted with their real label; every unlabeled pair is assumed
    matching, and is selected for crowdsourcing when, at its position, it is
    undeducible under that assumption (hence undeducible under *any* actual
    outcome of the pairs before it).

    Args:
        order: the full labeling order.
        labeled: pairs already labeled (crowdsourced or deduced).
        exclude: pairs already published and awaiting answers; they keep
            their assumed-matching role but are not re-published.  This is
            the one-line change enabling the instant-decision optimisation
            (Section 5.2).

    Returns:
        Pairs to publish now, in order.
    """
    exclude = exclude or set()
    graph = OptimisticGraph()
    selected: List[Pair] = []
    for item in order:
        pair = item.pair if isinstance(item, CandidatePair) else item
        known = labeled.get(pair)
        if known is not None:
            if known is Label.MATCHING:
                graph.assume_matching(pair.left, pair.right)
            else:
                graph.add_non_matching(pair.left, pair.right)
            continue
        if graph.must_crowdsource(pair) and pair not in exclude:
            selected.append(pair)
        # Optimistic assumption: the unlabeled pair is matching — whether it
        # was selected, excluded, or deducible (see module docstring).
        graph.assume_matching(pair.left, pair.right)
    return selected


class ParallelLabeler:
    """Round-based parallel labeler (Algorithm 2).

    Args:
        policy: conflict policy used when recording answers.  STRICT is
            correct for perfect oracles; FIRST_WINS tolerates noisy answers.
    """

    def __init__(self, policy: ConflictPolicy = ConflictPolicy.STRICT) -> None:
        self._policy = policy

    def run(
        self,
        order: Sequence[Union[Pair, CandidatePair]],
        oracle: LabelOracle,
        max_rounds: Optional[int] = None,
    ) -> LabelingResult:
        """Label every pair in ``order`` using batched crowd rounds.

        Args:
            order: the labeling order.
            oracle: answers crowdsourced queries (one call per published
                pair).
            max_rounds: safety cap; the algorithm provably terminates (each
                round crowdsources at least the first unlabeled pair), so the
                cap exists only to fail fast on bugs.

        Raises:
            RuntimeError: if ``max_rounds`` is exceeded.
        """
        pairs = _as_pairs(order)
        result = LabelingResult(order=pairs)
        labeled: Dict[Pair, Label] = {}
        graph = ClusterGraph(policy=self._policy)
        round_index = 0
        remaining = list(pairs)
        while remaining:
            if max_rounds is not None and round_index >= max_rounds:
                raise RuntimeError(f"parallel labeling exceeded {max_rounds} rounds")
            batch = parallel_crowdsourced_pairs(pairs, labeled)
            assert batch, "a round must always publish at least one pair"
            # Publish the whole batch, then collect answers.
            for pair in batch:
                answer = oracle.label(pair)
                labeled[pair] = answer
                graph.add(pair, answer)
                result.record(pair, answer, Provenance.CROWDSOURCED, round_index)
            result.rounds.append(batch)
            # Deduction sweep (Algorithm 2 lines 6-8): resolve every pair now
            # implied by the crowdsourced labels.
            still_remaining: List[Pair] = []
            for pair in remaining:
                if pair in labeled:
                    continue
                deduced = graph.deduce(pair)
                if deduced is not None:
                    labeled[pair] = deduced
                    result.record(pair, deduced, Provenance.DEDUCED, round_index)
                else:
                    still_remaining.append(pair)
            remaining = still_remaining
            round_index += 1
        return result


def label_parallel(
    order: Sequence[Union[Pair, CandidatePair]],
    oracle: LabelOracle,
    policy: ConflictPolicy = ConflictPolicy.STRICT,
) -> LabelingResult:
    """Convenience wrapper around :class:`ParallelLabeler`."""
    return ParallelLabeler(policy=policy).run(order, oracle)
