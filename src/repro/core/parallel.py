"""The parallel labeling algorithm (paper Section 5.1, Algorithms 2 and 3).

The sequential labeler publishes one pair at a time, so a run with ``C``
crowdsourced pairs needs ``C`` crowd round-trips.  The key insight of
Section 5.1 is that a pair *must* be crowdsourced — no matter how earlier
pairs turn out — when every path between its objects has a minimum of two
non-matching edges even under the optimistic assumption that **all** unlabeled
pairs before it are matching.

Each round therefore publishes every such "must-crowdsource" pair at once,
collects the answers, deduces what has become deducible, and repeats.  Every
published pair is provably crowdsourced by the sequential labeler on the same
order too (property-tested), so parallelism never increases the money cost;
only the number of rounds shrinks — from ``C`` to the handful reported in
paper Figures 13 and 14.

The must-crowdsource selection and the optimistic cluster graph live in
:mod:`repro.engine.frontier` (shared by every dispatch strategy and the
campaign runner); :class:`ParallelLabeler` is a **deprecated** compatibility
facade over :class:`repro.engine.dispatch.RoundParallelDispatch` — migrate
to the dispatch class (optionally configured from a
:class:`repro.spec.CampaignSpec` with ``mode="rounds"``).  See the frontier
module for the reproduction note on Algorithm 3's pseudocode vs its prose.
"""

from __future__ import annotations

import warnings
from typing import Dict, List, Optional, Sequence, Set, Union

from ..engine.dispatch import RoundParallelDispatch
from ..engine.frontier import OptimisticGraph, must_crowdsource_frontier
from .cluster_graph import ConflictPolicy
from .oracle import LabelOracle
from .pairs import CandidatePair, Label, Pair
from .result import LabelingResult

__all__ = [
    "OptimisticGraph",
    "ParallelLabeler",
    "label_parallel",
    "parallel_crowdsourced_pairs",
]


def parallel_crowdsourced_pairs(
    order: Sequence[Union[Pair, CandidatePair]],
    labeled: Dict[Pair, Label],
    exclude: Optional[Set[Pair]] = None,
) -> List[Pair]:
    """Identify the pairs that can be crowdsourced in parallel (Algorithm 3).

    Compatibility alias for
    :func:`repro.engine.frontier.must_crowdsource_frontier` — see there for
    the full contract.
    """
    return must_crowdsource_frontier(order, labeled, exclude=exclude)


class ParallelLabeler:
    """Round-based parallel labeler (Algorithm 2).

    Args:
        policy: conflict policy used when recording answers.  STRICT is
            correct for perfect oracles; FIRST_WINS tolerates noisy answers.
    """

    def __init__(self, policy: ConflictPolicy = ConflictPolicy.STRICT) -> None:
        warnings.warn(
            "ParallelLabeler is deprecated; use "
            "repro.engine.dispatch.RoundParallelDispatch (optionally with "
            "spec=CampaignSpec(mode='rounds', ...)) — see the migration "
            "table in docs/service.md",
            DeprecationWarning,
            stacklevel=2,
        )
        self._policy = policy

    def run(
        self,
        order: Sequence[Union[Pair, CandidatePair]],
        oracle: LabelOracle,
        max_rounds: Optional[int] = None,
    ) -> LabelingResult:
        """Label every pair in ``order`` using batched crowd rounds.

        Args:
            order: the labeling order.
            oracle: answers crowdsourced queries (one call per published
                pair).
            max_rounds: safety cap; the algorithm provably terminates (each
                round crowdsources at least the first unlabeled pair), so the
                cap exists only to fail fast on bugs.

        Raises:
            RuntimeError: if ``max_rounds`` is exceeded.
        """
        return RoundParallelDispatch(policy=self._policy).run(
            order, oracle, max_rounds=max_rounds
        )


def label_parallel(
    order: Sequence[Union[Pair, CandidatePair]],
    oracle: LabelOracle,
    policy: ConflictPolicy = ConflictPolicy.STRICT,
) -> LabelingResult:
    """Convenience wrapper around :class:`RoundParallelDispatch`."""
    return RoundParallelDispatch(policy=policy).run(order, oracle)
