"""Event-driven labeling with the Section-5.2 optimisation techniques.

The round-based parallel labeler waits for *all* published pairs to be
answered before deciding what to publish next, so the pool of available HITs
drains to zero between rounds and workers idle.  Two optimisations fix this:

* **Instant decision (ID)** — whenever a single answer arrives, immediately
  recompute which pairs must be crowdsourced (excluding those already
  published) and publish them.
* **Non-matching first (NF)** — a *matching* answer never unlocks new
  publishes (the selection already assumed every unlabeled pair matches), so
  workers should answer the published pairs in increasing likelihood order,
  surfacing the non-matching answers that do unlock work.

The event loop itself lives in
:class:`repro.engine.dispatch.InstantDispatch`, which drives the shared
:class:`repro.engine.LabelingEngine`; :class:`InstantLabeler` is a
**deprecated** compatibility facade — migrate to the dispatch class
(optionally configured from a :class:`repro.spec.CampaignSpec` with
``mode="instant"``).  The answer-policy enum and the run-result records are
re-exported here for callers that import them from this module.
"""

from __future__ import annotations

import warnings
from typing import Sequence, Union

from ..engine.dispatch import (
    AnswerPolicy,
    AvailabilityPoint,
    InstantDispatch,
    InstantRunResult,
)
from .cluster_graph import ConflictPolicy
from .oracle import LabelOracle
from .pairs import CandidatePair, Pair

__all__ = [
    "AnswerPolicy",
    "AvailabilityPoint",
    "InstantLabeler",
    "InstantRunResult",
    "label_instant",
]


class InstantLabeler:
    """Answer-at-a-time labeler with optional ID and NF optimisations.

    Args:
        instant_decision: publish new must-crowdsource pairs as soon as an
            answer makes them identifiable (Section 5.2 "Instant Decision").
            When False the labeler behaves like the round-based algorithm:
            it waits for the whole published batch before publishing again.
        answer_policy: how the simulated crowd picks the next pair to answer.
        seed: RNG seed for the RANDOM policy.
        policy: ClusterGraph conflict policy (STRICT for perfect oracles).
        use_index: selects the incremental deduction sweep
            (:class:`repro.core.sweep.PendingPairIndex`); the naive full scan
            is kept for cross-validation and produces identical results.
    """

    def __init__(
        self,
        instant_decision: bool = True,
        answer_policy: AnswerPolicy = AnswerPolicy.RANDOM,
        seed: int = 0,
        policy: ConflictPolicy = ConflictPolicy.STRICT,
        use_index: bool = True,
    ) -> None:
        warnings.warn(
            "InstantLabeler is deprecated; use "
            "repro.engine.dispatch.InstantDispatch (optionally with "
            "spec=CampaignSpec(mode='instant', ...)) — see the migration "
            "table in docs/service.md",
            DeprecationWarning,
            stacklevel=2,
        )
        self._dispatch = InstantDispatch(
            instant_decision=instant_decision,
            answer_policy=answer_policy,
            seed=seed,
            policy=policy,
            use_index=use_index,
        )

    def run(
        self,
        order: Sequence[Union[Pair, CandidatePair]],
        oracle: LabelOracle,
    ) -> InstantRunResult:
        """Label every pair in ``order``; return result plus the trace."""
        return self._dispatch.run(order, oracle)


def label_instant(
    order: Sequence[Union[Pair, CandidatePair]],
    oracle: LabelOracle,
    instant_decision: bool = True,
    answer_policy: AnswerPolicy = AnswerPolicy.RANDOM,
    seed: int = 0,
) -> InstantRunResult:
    """Convenience wrapper around :class:`InstantDispatch`."""
    dispatch = InstantDispatch(
        instant_decision=instant_decision, answer_policy=answer_policy, seed=seed
    )
    return dispatch.run(order, oracle)
