"""Event-driven labeling with the Section-5.2 optimisation techniques.

The round-based parallel labeler waits for *all* published pairs to be
answered before deciding what to publish next, so the pool of available HITs
drains to zero between rounds and workers idle.  Two optimisations fix this:

* **Instant decision (ID)** — whenever a single answer arrives, immediately
  recompute which pairs must be crowdsourced (excluding those already
  published) and publish them.  Implemented via the ``exclude`` argument of
  :func:`repro.core.parallel.parallel_crowdsourced_pairs`.
* **Non-matching first (NF)** — a *matching* answer never unlocks new
  publishes (the selection already assumed every unlabeled pair matches), so
  workers should answer the published pairs in increasing likelihood order,
  surfacing the non-matching answers that do unlock work.

This module simulates the answer-at-a-time interaction (paper Figure 15): a
configurable answer policy picks which published pair the crowd answers next,
and the labeler reacts according to its optimisation level.

Implementation note: published pairs are *not* resolved by the deduction
sweep even if later answers would imply their label — they are already on the
platform and will be answered.  Besides matching platform reality, this is
what guarantees progress: when the pool drains after a run of matching
answers, every remaining unlabeled pair is deducible from the answers
actually received.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Union

from .cluster_graph import ClusterGraph, ConflictPolicy
from .oracle import LabelOracle
from .pairs import CandidatePair, Label, Pair, Provenance
from .parallel import parallel_crowdsourced_pairs
from .result import LabelingResult
from .sweep import PendingPairIndex


class AnswerPolicy(enum.Enum):
    """Which published pair does the crowd answer next?

    FIFO:                publication order (deterministic baseline).
    RANDOM:              uniformly random — how AMT actually assigns HITs,
                         used for Parallel and Parallel(ID) in Figure 15.
    NON_MATCHING_FIRST:  increasing likelihood of being a matching pair —
                         the NF optimisation (only meaningful with ID).
    """

    FIFO = "fifo"
    RANDOM = "random"
    NON_MATCHING_FIRST = "non-matching-first"


@dataclass(frozen=True)
class AvailabilityPoint:
    """One step of the Figure-15 series: after ``n_answered`` crowdsourced
    answers, ``n_available`` published pairs were still waiting."""

    n_answered: int
    n_available: int


@dataclass
class InstantRunResult:
    """Outcome of an event-driven labeling run.

    Attributes:
        result: the per-pair labeling result (rounds = publish events).
        trace: availability after every answer (Figure 15's series).
        publish_events: (answers so far, batch size) per publish event.
    """

    result: LabelingResult
    trace: List[AvailabilityPoint] = field(default_factory=list)
    publish_events: List[tuple[int, int]] = field(default_factory=list)

    @property
    def n_crowdsourced(self) -> int:
        return self.result.n_crowdsourced

    @property
    def n_deduced(self) -> int:
        return self.result.n_deduced

    def availability_series(self) -> List[int]:
        """Pool sizes after each answer, as a plain list."""
        return [point.n_available for point in self.trace]

    def mean_availability(self) -> float:
        """Average pool size over the run — the paper's 'keep the crowd busy'
        metric summarised as one number."""
        if not self.trace:
            return 0.0
        return sum(point.n_available for point in self.trace) / len(self.trace)

    def starvation_count(self, below: int = 1) -> int:
        """How many times (mid-run) the pool dropped below ``below`` pairs."""
        if not self.trace:
            return 0
        interior = self.trace[:-1]  # the pool is legitimately empty at the end
        return sum(1 for point in interior if point.n_available < below)


class InstantLabeler:
    """Answer-at-a-time labeler with optional ID and NF optimisations.

    Args:
        instant_decision: publish new must-crowdsource pairs as soon as an
            answer makes them identifiable (Section 5.2 "Instant Decision").
            When False the labeler behaves like the round-based algorithm:
            it waits for the whole published batch before publishing again.
        answer_policy: how the simulated crowd picks the next pair to answer.
        seed: RNG seed for the RANDOM policy.
        policy: ClusterGraph conflict policy (STRICT for perfect oracles).
    """

    def __init__(
        self,
        instant_decision: bool = True,
        answer_policy: AnswerPolicy = AnswerPolicy.RANDOM,
        seed: int = 0,
        policy: ConflictPolicy = ConflictPolicy.STRICT,
        use_index: bool = True,
    ) -> None:
        """``use_index`` selects the incremental deduction sweep
        (:class:`repro.core.sweep.PendingPairIndex`); the naive full scan is
        kept for cross-validation and produces identical results."""
        self._instant = instant_decision
        self._answer_policy = answer_policy
        self._seed = seed
        self._graph_policy = policy
        self._use_index = use_index

    def run(
        self,
        order: Sequence[Union[Pair, CandidatePair]],
        oracle: LabelOracle,
    ) -> InstantRunResult:
        """Label every pair in ``order``; return result plus the trace."""
        pairs: List[Pair] = []
        likelihood: Dict[Pair, float] = {}
        for item in order:
            if isinstance(item, CandidatePair):
                pairs.append(item.pair)
                likelihood[item.pair] = item.likelihood
            else:
                pairs.append(item)
                likelihood[item] = 0.5

        rng = random.Random(self._seed)
        result = LabelingResult(order=pairs)
        run = InstantRunResult(result=result)
        labeled: Dict[Pair, Label] = {}
        graph = ClusterGraph(policy=self._graph_policy)
        index = PendingPairIndex(graph, pairs) if self._use_index else None
        published: List[Pair] = []
        published_set: Set[Pair] = set()
        publish_round: Dict[Pair, int] = {}
        unlabeled: List[Pair] = list(pairs)
        n_answered = 0
        n_publish_events = 0

        def publish() -> None:
            nonlocal n_publish_events
            batch = parallel_crowdsourced_pairs(pairs, labeled, exclude=published_set)
            if batch:
                for pair in batch:
                    publish_round[pair] = n_publish_events
                    if index is not None:
                        index.remove(pair)  # the crowd will answer it
                published.extend(batch)
                published_set.update(batch)
                result.rounds.append(batch)
                run.publish_events.append((n_answered, len(batch)))
                n_publish_events += 1

        def next_to_answer() -> Pair:
            if self._answer_policy is AnswerPolicy.FIFO:
                choice = 0
            elif self._answer_policy is AnswerPolicy.RANDOM:
                choice = rng.randrange(len(published))
            else:  # NON_MATCHING_FIRST: least likely to match answered first
                choice = min(range(len(published)), key=lambda i: likelihood[published[i]])
            return published.pop(choice)

        publish()
        while len(labeled) < len(pairs):
            if not published:
                # With a perfect oracle this only happens when the remaining
                # pairs are all deducible; with noisy answers (FIRST_WINS) the
                # invariants can be violated, so recompute defensively.
                publish()
                assert published, "event loop stalled with unlabeled pairs remaining"
            pair = next_to_answer()
            published_set.discard(pair)
            answer = oracle.label(pair)
            n_answered += 1
            labeled[pair] = answer
            graph.add(pair, answer)
            result.record(pair, answer, Provenance.CROWDSOURCED, publish_round[pair])
            # Deduction sweep over unresolved pairs.  Published pairs are
            # skipped: they are on the platform and will be crowd-answered.
            if index is not None:
                index.note_objects_seen(pair.left, pair.right)
                for waiting, deduced in index.sweep():
                    labeled[waiting] = deduced
                    result.record(waiting, deduced, Provenance.DEDUCED, publish_round[pair])
            else:
                still: List[Pair] = []
                for waiting in unlabeled:
                    if waiting in labeled:
                        continue
                    if waiting in published_set:
                        still.append(waiting)
                        continue
                    deduced = graph.deduce(waiting)
                    if deduced is not None:
                        labeled[waiting] = deduced
                        result.record(waiting, deduced, Provenance.DEDUCED, publish_round[pair])
                    else:
                        still.append(waiting)
                unlabeled = still
            if (
                len(labeled) < len(pairs)
                and self._instant
                and answer is Label.NON_MATCHING
            ):
                # A matching answer cannot unlock new publishes: selection
                # already assumed all unlabeled pairs match (Section 5.2).
                publish()
            run.trace.append(AvailabilityPoint(n_answered, len(published)))
        return run


def label_instant(
    order: Sequence[Union[Pair, CandidatePair]],
    oracle: LabelOracle,
    instant_decision: bool = True,
    answer_policy: AnswerPolicy = AnswerPolicy.RANDOM,
    seed: int = 0,
) -> InstantRunResult:
    """Convenience wrapper around :class:`InstantLabeler`."""
    labeler = InstantLabeler(
        instant_decision=instant_decision, answer_policy=answer_policy, seed=seed
    )
    return labeler.run(order, oracle)
