"""The ClusterGraph: the paper's incremental deduction structure.

Section 3.2 observes that for deciding whether a pair can be deduced from a
set of labeled pairs, only the *non-matching* edges on a path matter, so all
matching objects can be collapsed into clusters.  The resulting structure —
union-find over matching edges plus an adjacency of non-matching edges between
cluster representatives — answers ``DeduceLabel`` (Algorithm 1) queries in
near-constant time:

* same cluster                       -> ``MATCHING``
* different clusters, edge present   -> ``NON_MATCHING``
* different clusters, no edge        -> not deducible (``None``)

This module also defines the conflict policies used when labels are noisy
(real crowds err; Section 6.4): inserting a matching edge between two clusters
already linked by a non-matching edge, or a non-matching edge inside one
cluster, is an *inconsistency*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import (
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    Set,
    Tuple,
    runtime_checkable,
)

from .pairs import Label, LabeledPair, Pair
from .union_find import UnionFind


@runtime_checkable
class GraphListener(Protocol):
    """Observer for structural ClusterGraph changes.

    Incremental consumers (e.g. :class:`repro.core.sweep.PendingPairIndex`)
    react to exactly the two events that can change any pair's deducibility.
    """

    def on_union(self, survivor: Hashable, loser: Hashable) -> None:
        """Cluster ``loser`` was merged into cluster ``survivor``."""
        ...  # pragma: no cover - protocol

    def on_edge(self, root_a: Hashable, root_b: Hashable) -> None:
        """A new non-matching edge appeared between two cluster roots."""
        ...  # pragma: no cover - protocol


class InconsistentLabelError(ValueError):
    """Raised (under the STRICT policy) when an inserted label contradicts
    what the graph already implies via transitivity."""


class ConflictPolicy(enum.Enum):
    """What to do when an inserted label contradicts the graph.

    STRICT:      raise :class:`InconsistentLabelError`.  The right choice when
                 answers are assumed correct (the paper's main setting).
    FIRST_WINS:  keep the graph as is, record the conflicting pair in
                 :attr:`ClusterGraph.conflicts`, and drop the new edge.  Used
                 when simulating noisy crowds (Table 2), where the paper notes
                 that deductions may cascade from incorrectly labeled pairs.
    """

    STRICT = "strict"
    FIRST_WINS = "first-wins"


@dataclass(frozen=True)
class Conflict:
    """A rejected insertion: ``pair`` arrived labeled ``label`` but the graph
    already implied ``implied``."""

    pair: Pair
    label: Label
    implied: Label


def admit_label(graph, pair: Pair, label: Label) -> bool:
    """Police an insertion against what ``graph`` already implies.

    The single shared conflict check for every ClusterGraph-contract
    implementation (monolithic and sharded): returns True when the insertion
    may proceed, False when it is rejected under FIRST_WINS (the conflict is
    recorded on ``graph.conflicts``), and raises under STRICT.

    Args:
        graph: anything with ``deduce``/``policy``/``conflicts``.
        pair: the pair being inserted.
        label: its incoming label.

    Raises:
        InconsistentLabelError: under STRICT, when ``label`` contradicts the
            graph's implied label.
    """
    implied = graph.deduce(pair)
    if implied is None or implied is label:
        return True
    if graph.policy is ConflictPolicy.STRICT:
        raise InconsistentLabelError(
            f"{pair!r} inserted as {label.value} but graph implies {implied.value}"
        )
    graph.conflicts.append(Conflict(pair, label, implied))
    return False


class ClusterGraph:
    """Incremental structure deciding deducibility of pair labels.

    Matching edges union their endpoints' clusters; non-matching edges are
    kept between cluster representatives.  When two clusters merge, the
    smaller side's non-matching adjacency is rewired onto the surviving root.

    Args:
        labeled: optional initial labeled pairs to insert.
        policy: conflict policy applied on inconsistent insertions.
    """

    def __init__(
        self,
        labeled: Iterable[LabeledPair] = (),
        policy: ConflictPolicy = ConflictPolicy.STRICT,
    ) -> None:
        self._uf = UnionFind()
        # Non-matching adjacency between *current* cluster roots.
        self._nm: Dict[Hashable, Set[Hashable]] = {}
        self._policy = policy
        self._n_matching_edges = 0
        self._n_non_matching_edges = 0
        self.conflicts: List[Conflict] = []
        #: Optional observer notified of merges and new edges (see
        #: :class:`GraphListener`); not copied by :meth:`copy`.
        self.listener: Optional[GraphListener] = None
        for item in labeled:
            self.add(item.pair, item.label)

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------
    def add(self, pair: Pair, label: Label) -> bool:
        """Insert a labeled pair.

        Returns:
            True if the edge was applied, False if it was rejected as a
            conflict under the FIRST_WINS policy (the conflict is recorded).

        Raises:
            InconsistentLabelError: under the STRICT policy, when the label
                contradicts what the graph already implies.
        """
        if not admit_label(self, pair, label):
            return False
        self.add_unchecked(pair, label)
        return True

    def add_unchecked(self, pair: Pair, label: Label) -> None:
        """Insert a labeled pair whose consistency the caller has already
        verified (via :func:`admit_label` against the authoritative graph).

        The sharded backend polices conflicts once at its outer layer and
        then applies the edge to the owning shard through this seam, so an
        insert costs one deduction rather than two.
        """
        if label is Label.MATCHING:
            self._add_matching(pair.left, pair.right)
        else:
            self._add_non_matching(pair.left, pair.right)

    def add_matching(self, a: Hashable, b: Hashable) -> bool:
        """Insert ``(a, b)`` as a matching pair."""
        return self.add(Pair(a, b), Label.MATCHING)

    def add_non_matching(self, a: Hashable, b: Hashable) -> bool:
        """Insert ``(a, b)`` as a non-matching pair."""
        return self.add(Pair(a, b), Label.NON_MATCHING)

    def _add_matching(self, a: Hashable, b: Hashable) -> None:
        root_a = self._uf.find(a)
        root_b = self._uf.find(b)
        self._n_matching_edges += 1
        if root_a == root_b:
            return
        survivor = self._uf.union(root_a, root_b)
        loser = root_b if survivor == root_a else root_a
        if self.listener is not None:
            self.listener.on_union(survivor, loser)
        # Rewire the loser's non-matching adjacency onto the survivor.
        loser_nm = self._nm.pop(loser, set())
        if loser_nm:
            survivor_nm = self._nm.setdefault(survivor, set())
            for neighbour in loser_nm:
                self._nm[neighbour].discard(loser)
                if neighbour == survivor:
                    # Would be a self-loop (inconsistency); add() rejects
                    # such inserts, but drop the edge defensively.
                    self._n_non_matching_edges -= 1
                    continue
                if neighbour in survivor_nm:
                    # Parallel edges between the two merged clusters and
                    # this neighbour collapse into one cluster-level edge.
                    self._n_non_matching_edges -= 1
                else:
                    self._nm[neighbour].add(survivor)
                    survivor_nm.add(neighbour)
            if not survivor_nm:
                del self._nm[survivor]

    def _add_non_matching(self, a: Hashable, b: Hashable) -> None:
        root_a = self._uf.find(a)
        root_b = self._uf.find(b)
        # A self-loop would mean a non-matching edge inside a cluster; the
        # conflict check in add() already rejected that case.
        assert root_a != root_b, "internal error: non-matching self-loop"
        if root_b not in self._nm.get(root_a, ()):
            self._nm.setdefault(root_a, set()).add(root_b)
            self._nm.setdefault(root_b, set()).add(root_a)
            self._n_non_matching_edges += 1
            if self.listener is not None:
                self.listener.on_edge(root_a, root_b)

    # ------------------------------------------------------------------
    # deduction (paper Algorithm 1, DeduceLabel)
    # ------------------------------------------------------------------
    def deduce(self, pair: Pair) -> Optional[Label]:
        """Deduce the label of ``pair`` from inserted pairs, or None.

        Implements Algorithm 1: same cluster means a path of matching edges
        exists (positive transitivity); an edge between the two clusters
        means a path with exactly one non-matching edge exists (negative
        transitivity); otherwise the pair is undeducible.
        """
        if pair.left not in self._uf or pair.right not in self._uf:
            return None
        root_left = self._uf.find(pair.left)
        root_right = self._uf.find(pair.right)
        if root_left == root_right:
            return Label.MATCHING
        if root_right in self._nm.get(root_left, ()):
            return Label.NON_MATCHING
        return None

    def deducible(self, pair: Pair) -> bool:
        """True iff the label of ``pair`` is implied by inserted pairs."""
        return self.deduce(pair) is not None

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def policy(self) -> ConflictPolicy:
        return self._policy

    @property
    def n_objects(self) -> int:
        """Number of distinct objects seen so far."""
        return len(self._uf)

    @property
    def n_clusters(self) -> int:
        """Number of clusters (union-find components)."""
        return self._uf.n_components

    @property
    def n_matching_edges(self) -> int:
        """Matching pairs inserted (including redundant ones)."""
        return self._n_matching_edges

    @property
    def n_non_matching_edges(self) -> int:
        """Distinct cluster-level non-matching edges currently present."""
        return self._n_non_matching_edges

    def __contains__(self, obj: Hashable) -> bool:
        """True iff ``obj`` appeared in some inserted pair."""
        return obj in self._uf

    def objects(self) -> Iterator[Hashable]:
        """Iterate every object seen so far."""
        return iter(self._uf)

    def cluster_of(self, obj: Hashable) -> Hashable:
        """The canonical representative of ``obj``'s cluster."""
        return self._uf.find(obj)

    def cluster_members(self, obj: Hashable) -> Set[Hashable]:
        """All objects transitively matched with ``obj`` (including it)."""
        root = self._uf.find(obj)
        return {o for o in self._uf if self._uf.find(o) == root}

    def same_cluster(self, a: Hashable, b: Hashable) -> bool:
        """True iff ``a`` and ``b`` have been merged by matching edges."""
        if a not in self._uf or b not in self._uf:
            return False
        return self._uf.find(a) == self._uf.find(b)

    def clusters(self) -> List[Set[Hashable]]:
        """All clusters as sets of objects."""
        return self._uf.components()

    def non_matching_cluster_edges(self) -> Iterator[Tuple[Hashable, Hashable]]:
        """Iterate distinct cluster-level non-matching edges once each."""
        seen: Set[frozenset] = set()
        for root, neighbours in self._nm.items():
            for other in neighbours:
                key = frozenset((root, other))
                if key not in seen:
                    seen.add(key)
                    yield (root, other)

    def absorb(self, other: "ClusterGraph") -> None:
        """Splice a *disjoint* ClusterGraph into this one in O(size of other).

        The two graphs must relate disjoint object sets (no pair ever crossed
        them), so clusters, cluster-level non-matching edges, and counters all
        carry over unchanged — no unions fire and no listener events are
        emitted.  ``other``'s listener is dropped; its recorded conflicts are
        appended to this graph's.  Used by the sharded backend to merge two
        component shards lazily when an answer bridges them.

        Raises:
            ValueError: if the conflict policies differ or the object sets
                overlap.
        """
        if self._policy is not other._policy:
            raise ValueError("cannot absorb a graph with a different conflict policy")
        self._uf.absorb(other._uf)
        self._nm.update(other._nm)
        self._n_matching_edges += other._n_matching_edges
        self._n_non_matching_edges += other._n_non_matching_edges
        self.conflicts.extend(other.conflicts)

    def copy(self) -> "ClusterGraph":
        """An independent deep copy."""
        clone = ClusterGraph(policy=self._policy)
        clone._uf = self._uf.copy()
        clone._nm = {root: set(neighbours) for root, neighbours in self._nm.items()}
        clone._n_matching_edges = self._n_matching_edges
        clone._n_non_matching_edges = self._n_non_matching_edges
        clone.conflicts = list(self.conflicts)
        return clone

    def check_invariants(self) -> None:
        """Verify internal consistency; raises AssertionError on violation.

        Intended for tests: adjacency must be symmetric, keyed by current
        roots, and free of self-loops.
        """
        for root, neighbours in self._nm.items():
            assert self._uf.find(root) == root, f"{root!r} is not a current root"
            assert root not in neighbours, f"self-loop at {root!r}"
            for other in neighbours:
                assert root in self._nm.get(other, ()), "asymmetric adjacency"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClusterGraph({self.n_objects} objects, {self.n_clusters} clusters, "
            f"{self.n_non_matching_edges} non-matching edges)"
        )


def deduce_label(pair: Pair, labeled: Iterable[LabeledPair]) -> Optional[Label]:
    """One-shot ``DeduceLabel(p, L)`` exactly as in paper Figure 5.

    Builds a fresh ClusterGraph for ``labeled`` and queries it.  Incremental
    callers should hold a :class:`ClusterGraph` instead of re-building.
    """
    return ClusterGraph(labeled).deduce(pair)
