"""Expected number of crowdsourced pairs for a labeling order (Section 4.2).

When each pair carries an independent probability of being matching, the
number of crowdsourced pairs required by an order ``omega`` is a random
variable ``C(omega)``.  The paper (Example 4) computes its expectation by
enumerating the *consistent* label assignments (transitivity rules out e.g.
two matching edges and one non-matching edge on a triangle), weighting each
by its probability, renormalising over the consistent mass, and summing the
per-pair probabilities of being crowdsourced.

Finding the order minimising ``E[C(omega)]`` is NP-hard (Vesdapunt et al.,
VLDB 2014) — the original SIGMOD version's optimality claim was withdrawn in
the revision we reproduce.  This module provides:

* exact enumeration of consistent assignments with their weights;
* exact ``E[C(omega)]`` for a given order (exponential in #pairs; fine for
  the small instances it is meant for);
* brute-force search for the expected-optimal order (factorial; tiny n), used
  to validate the likelihood-descending heuristic in tests and benchmarks.

Everything here is deliberately specification-grade: the production path uses
the heuristic order from ``repro.core.ordering``.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .cluster_graph import ClusterGraph
from .oracle import MappingOracle
from .pairs import CandidatePair, Label, Pair
from .sequential import label_sequential
from .union_find import UnionFind

MAX_ENUMERATION_PAIRS = 20
MAX_BRUTE_FORCE_PAIRS = 8


def _check_enumerable(n_pairs: int) -> None:
    if n_pairs > MAX_ENUMERATION_PAIRS:
        raise ValueError(
            f"exact enumeration over {n_pairs} pairs would visit 2^{n_pairs} "
            f"assignments; the limit is {MAX_ENUMERATION_PAIRS}"
        )


def _assignment_is_consistent(pairs: Sequence[Pair], labels: Sequence[Label]) -> bool:
    uf = UnionFind()
    for pair, label in zip(pairs, labels):
        if label is Label.MATCHING:
            uf.union(pair.left, pair.right)
    for pair, label in zip(pairs, labels):
        if label is Label.NON_MATCHING and uf.connected(pair.left, pair.right):
            return False
    return True


@dataclass(frozen=True)
class WeightedAssignment:
    """One consistent labeling of the candidate pairs with its probability
    weight (already renormalised over the consistent assignments)."""

    labels: Tuple[Label, ...]
    weight: float

    def as_mapping(self, pairs: Sequence[Pair]) -> Dict[Pair, Label]:
        return dict(zip(pairs, self.labels))


def enumerate_consistent_assignments(
    candidates: Sequence[CandidatePair],
) -> List[WeightedAssignment]:
    """All consistent assignments with renormalised probability weights.

    Each pair is independently matching with its candidate likelihood; the
    joint probability of an assignment is the product, and weights are
    renormalised so the consistent assignments sum to 1 (exactly the
    computation in the paper's Example 4).

    Raises:
        ValueError: if there are too many pairs to enumerate, or if no
            consistent assignment has positive probability.
    """
    _check_enumerable(len(candidates))
    pairs = [c.pair for c in candidates]
    results: List[Tuple[Tuple[Label, ...], float]] = []
    total = 0.0
    for combo in itertools.product((Label.MATCHING, Label.NON_MATCHING), repeat=len(pairs)):
        weight = 1.0
        for cand, label in zip(candidates, combo):
            weight *= cand.likelihood if label is Label.MATCHING else 1.0 - cand.likelihood
        if weight == 0.0:
            continue
        if not _assignment_is_consistent(pairs, combo):
            continue
        results.append((combo, weight))
        total += weight
    if not results or total <= 0.0:
        raise ValueError("no consistent assignment has positive probability")
    return [WeightedAssignment(labels, weight / total) for labels, weight in results]


def crowdsourced_count(
    order: Sequence[CandidatePair], assignment: Dict[Pair, Label]
) -> int:
    """``C(omega)`` under a fixed true assignment — by simulating the
    sequential labeler against a mapping oracle."""
    return label_sequential(order, MappingOracle(assignment)).n_crowdsourced


def crowdsourced_indicator(
    order: Sequence[Pair], assignment: Dict[Pair, Label]
) -> List[bool]:
    """For each position i of ``order``: is pair i crowdsourced under the
    assignment?  (True = crowdsourced, False = deduced.)"""
    graph = ClusterGraph()
    flags: List[bool] = []
    for pair in order:
        if graph.deducible(pair):
            flags.append(False)
        else:
            flags.append(True)
            graph.add(pair, assignment[pair])
    return flags


def expected_cost(order: Sequence[CandidatePair]) -> float:
    """Exact ``E[C(omega)]`` over consistent assignments (Definition 3).

    Exponential in the number of pairs; see :data:`MAX_ENUMERATION_PAIRS`.
    """
    assignments = enumerate_consistent_assignments(order)
    pairs = [c.pair for c in order]
    expectation = 0.0
    for assignment in assignments:
        mapping = assignment.as_mapping(pairs)
        flags = crowdsourced_indicator(pairs, mapping)
        expectation += assignment.weight * sum(flags)
    return expectation


def crowdsourcing_probabilities(order: Sequence[CandidatePair]) -> List[float]:
    """P(pair i is crowdsourced) for each position — the summands of
    ``E[C(omega)]`` shown in Example 4."""
    assignments = enumerate_consistent_assignments(order)
    pairs = [c.pair for c in order]
    probabilities = [0.0] * len(pairs)
    for assignment in assignments:
        mapping = assignment.as_mapping(pairs)
        flags = crowdsourced_indicator(pairs, mapping)
        for i, crowdsourced in enumerate(flags):
            if crowdsourced:
                probabilities[i] += assignment.weight
    return probabilities


def brute_force_expected_optimal(
    candidates: Sequence[CandidatePair],
) -> Tuple[List[CandidatePair], float]:
    """Exhaustively find an order minimising ``E[C(omega)]``.

    Factorial in the number of pairs (limit :data:`MAX_BRUTE_FORCE_PAIRS`);
    exists to validate the heuristic on small instances, since the general
    problem is NP-hard.

    Returns:
        (best_order, best_expected_cost); ties broken by enumeration order.
    """
    if len(candidates) > MAX_BRUTE_FORCE_PAIRS:
        raise ValueError(
            f"brute force over {len(candidates)} pairs is {math.factorial(len(candidates))} "
            f"orders; the limit is {MAX_BRUTE_FORCE_PAIRS}"
        )
    best_order: List[CandidatePair] | None = None
    best_cost = math.inf
    for permutation in itertools.permutations(candidates):
        cost = expected_cost(permutation)
        if cost < best_cost - 1e-12:
            best_cost = cost
            best_order = list(permutation)
    assert best_order is not None, "at least one order must exist"
    return best_order, best_cost


def heuristic_gap(candidates: Sequence[CandidatePair]) -> Tuple[float, float]:
    """(heuristic cost, optimal cost) for the likelihood-descending order vs
    the brute-force expected optimum — the heuristic's optimality gap."""
    from .ordering import expected_order  # local import to avoid a cycle

    heuristic = expected_cost(expected_order(list(candidates)))
    _, optimum = brute_force_expected_optimal(candidates)
    return heuristic, optimum


def sample_assignment(
    candidates: Sequence[CandidatePair], u: float
) -> Dict[Pair, Label]:
    """Deterministically pick a consistent assignment by cumulative weight.

    ``u`` in [0, 1) indexes the CDF over consistent assignments; useful for
    property tests that need a valid ground truth drawn from the likelihood
    model without an RNG dependency.
    """
    if not 0.0 <= u < 1.0:
        raise ValueError(f"u must be in [0, 1), got {u}")
    assignments = enumerate_consistent_assignments(candidates)
    pairs = [c.pair for c in candidates]
    cumulative = 0.0
    for assignment in assignments:
        cumulative += assignment.weight
        if u < cumulative:
            return assignment.as_mapping(pairs)
    return assignments[-1].as_mapping(pairs)


def consistent_assignments_count(candidates: Sequence[CandidatePair]) -> int:
    """Number of consistent assignments with positive probability."""
    return len(enumerate_consistent_assignments(candidates))
