"""Expected number of crowdsourced pairs for a labeling order (Section 4.2).

When each pair carries an independent probability of being matching, the
number of crowdsourced pairs required by an order ``omega`` is a random
variable ``C(omega)``.  The paper (Example 4) computes its expectation by
enumerating the *consistent* label assignments (transitivity rules out e.g.
two matching edges and one non-matching edge on a triangle), weighting each
by its probability, renormalising over the consistent mass, and summing the
per-pair probabilities of being crowdsourced.

Finding the order minimising ``E[C(omega)]`` is NP-hard (Vesdapunt et al.,
VLDB 2014) — the original SIGMOD version's optimality claim was withdrawn in
the revision we reproduce.  This module provides:

* exact enumeration of consistent assignments with their weights;
* exact ``E[C(omega)]`` for a given order (exponential in #pairs; fine for
  the small instances it is meant for);
* brute-force search for the expected-optimal order (factorial; tiny n), used
  to validate the likelihood-descending heuristic in tests and benchmarks.

Everything here is deliberately specification-grade: the production path uses
the heuristic order from ``repro.core.ordering``.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .cluster_graph import ClusterGraph
from .oracle import MappingOracle
from .pairs import CandidatePair, Label, Pair
from .union_find import UnionFind

MAX_ENUMERATION_PAIRS = 20
MAX_BRUTE_FORCE_PAIRS = 8


def _check_enumerable(n_pairs: int) -> None:
    if n_pairs > MAX_ENUMERATION_PAIRS:
        raise ValueError(
            f"exact enumeration over {n_pairs} pairs would visit 2^{n_pairs} "
            f"assignments; the limit is {MAX_ENUMERATION_PAIRS}"
        )


def _assignment_is_consistent(pairs: Sequence[Pair], labels: Sequence[Label]) -> bool:
    uf = UnionFind()
    for pair, label in zip(pairs, labels):
        if label is Label.MATCHING:
            uf.union(pair.left, pair.right)
    for pair, label in zip(pairs, labels):
        if label is Label.NON_MATCHING and uf.connected(pair.left, pair.right):
            return False
    return True


@dataclass(frozen=True)
class WeightedAssignment:
    """One consistent labeling of the candidate pairs with its probability
    weight (already renormalised over the consistent assignments)."""

    labels: Tuple[Label, ...]
    weight: float

    def as_mapping(self, pairs: Sequence[Pair]) -> Dict[Pair, Label]:
        return dict(zip(pairs, self.labels))


def enumerate_consistent_assignments(
    candidates: Sequence[CandidatePair],
) -> List[WeightedAssignment]:
    """All consistent assignments with renormalised probability weights.

    Each pair is independently matching with its candidate likelihood; the
    joint probability of an assignment is the product, and weights are
    renormalised so the consistent assignments sum to 1 (exactly the
    computation in the paper's Example 4).

    Raises:
        ValueError: if there are too many pairs to enumerate, or if no
            consistent assignment has positive probability.
    """
    _check_enumerable(len(candidates))
    pairs = [c.pair for c in candidates]
    results: List[Tuple[Tuple[Label, ...], float]] = []
    total = 0.0
    for combo in itertools.product((Label.MATCHING, Label.NON_MATCHING), repeat=len(pairs)):
        weight = 1.0
        for cand, label in zip(candidates, combo):
            weight *= cand.likelihood if label is Label.MATCHING else 1.0 - cand.likelihood
        if weight == 0.0:
            continue
        if not _assignment_is_consistent(pairs, combo):
            continue
        results.append((combo, weight))
        total += weight
    if not results or total <= 0.0:
        raise ValueError("no consistent assignment has positive probability")
    return [WeightedAssignment(labels, weight / total) for labels, weight in results]


def crowdsourced_count(
    order: Sequence[CandidatePair], assignment: Dict[Pair, Label]
) -> int:
    """``C(omega)`` under a fixed true assignment — by simulating the
    sequential labeler against a mapping oracle."""
    # Imported late: .sequential is a facade over repro.engine, whose
    # package in turn imports this module (via repro.engine.expected).
    from .sequential import label_sequential

    return label_sequential(order, MappingOracle(assignment)).n_crowdsourced


def crowdsourced_indicator(
    order: Sequence[Pair], assignment: Dict[Pair, Label]
) -> List[bool]:
    """For each position i of ``order``: is pair i crowdsourced under the
    assignment?  (True = crowdsourced, False = deduced.)"""
    graph = ClusterGraph()
    flags: List[bool] = []
    for pair in order:
        if graph.deducible(pair):
            flags.append(False)
        else:
            flags.append(True)
            graph.add(pair, assignment[pair])
    return flags


def expected_cost(order: Sequence[CandidatePair]) -> float:
    """Exact ``E[C(omega)]`` over consistent assignments (Definition 3).

    Exponential in the number of pairs; see :data:`MAX_ENUMERATION_PAIRS`.
    """
    assignments = enumerate_consistent_assignments(order)
    pairs = [c.pair for c in order]
    expectation = 0.0
    for assignment in assignments:
        mapping = assignment.as_mapping(pairs)
        flags = crowdsourced_indicator(pairs, mapping)
        expectation += assignment.weight * sum(flags)
    return expectation


def crowdsourcing_probabilities(order: Sequence[CandidatePair]) -> List[float]:
    """P(pair i is crowdsourced) for each position — the summands of
    ``E[C(omega)]`` shown in Example 4."""
    assignments = enumerate_consistent_assignments(order)
    pairs = [c.pair for c in order]
    probabilities = [0.0] * len(pairs)
    for assignment in assignments:
        mapping = assignment.as_mapping(pairs)
        flags = crowdsourced_indicator(pairs, mapping)
        for i, crowdsourced in enumerate(flags):
            if crowdsourced:
                probabilities[i] += assignment.weight
    return probabilities


def brute_force_expected_optimal(
    candidates: Sequence[CandidatePair],
) -> Tuple[List[CandidatePair], float]:
    """Exhaustively find an order minimising ``E[C(omega)]``.

    Factorial in the number of pairs (limit :data:`MAX_BRUTE_FORCE_PAIRS`);
    exists to validate the heuristic on small instances, since the general
    problem is NP-hard.

    Returns:
        (best_order, best_expected_cost); ties broken by enumeration order.
    """
    if len(candidates) > MAX_BRUTE_FORCE_PAIRS:
        raise ValueError(
            f"brute force over {len(candidates)} pairs is {math.factorial(len(candidates))} "
            f"orders; the limit is {MAX_BRUTE_FORCE_PAIRS}"
        )
    best_order: List[CandidatePair] | None = None
    best_cost = math.inf
    for permutation in itertools.permutations(candidates):
        cost = expected_cost(permutation)
        if cost < best_cost - 1e-12:
            best_cost = cost
            best_order = list(permutation)
    assert best_order is not None, "at least one order must exist"
    return best_order, best_cost


def heuristic_gap(candidates: Sequence[CandidatePair]) -> Tuple[float, float]:
    """(heuristic cost, optimal cost) for the likelihood-descending order vs
    the brute-force expected optimum — the heuristic's optimality gap."""
    from .ordering import expected_order  # local import to avoid a cycle

    heuristic = expected_cost(expected_order(list(candidates)))
    _, optimum = brute_force_expected_optimal(candidates)
    return heuristic, optimum


def sample_assignment(
    candidates: Sequence[CandidatePair], u: float
) -> Dict[Pair, Label]:
    """Deterministically pick a consistent assignment by cumulative weight.

    ``u`` in [0, 1) indexes the CDF over consistent assignments; useful for
    property tests that need a valid ground truth drawn from the likelihood
    model without an RNG dependency.
    """
    if not 0.0 <= u < 1.0:
        raise ValueError(f"u must be in [0, 1), got {u}")
    assignments = enumerate_consistent_assignments(candidates)
    pairs = [c.pair for c in candidates]
    cumulative = 0.0
    for assignment in assignments:
        cumulative += assignment.weight
        if u < cumulative:
            return assignment.as_mapping(pairs)
    return assignments[-1].as_mapping(pairs)


def consistent_assignments_count(candidates: Sequence[CandidatePair]) -> int:
    """Number of consistent assignments with positive probability."""
    return len(enumerate_consistent_assignments(candidates))


# ----------------------------------------------------------------------
# posteriors and adaptive policies (arXiv:1409.7472 follow-up)
# ----------------------------------------------------------------------
def posterior_assignments(
    candidates: Sequence[CandidatePair],
    evidence: Mapping[Pair, Label],
) -> List[WeightedAssignment]:
    """Consistent assignments conditioned on ``evidence``, renormalised.

    ``evidence`` maps already-resolved pairs (crowdsourced answers and the
    labels deduced from them — deduced labels are implied, so conditioning
    on them is redundant but harmless) to their labels; assignments that
    contradict any evidence label are discarded and the surviving weights
    renormalised to sum to 1.

    Raises:
        ValueError: if enumeration is infeasible, no consistent assignment
            exists, or the evidence has zero posterior mass.
    """
    pairs = [c.pair for c in candidates]
    index = {pair: i for i, pair in enumerate(pairs)}
    for pair in evidence:
        if pair not in index:
            raise ValueError(f"evidence pair {pair!r} is not a candidate")
    survivors: List[Tuple[Tuple[Label, ...], float]] = []
    total = 0.0
    for assignment in enumerate_consistent_assignments(candidates):
        if any(assignment.labels[index[p]] is not label for p, label in evidence.items()):
            continue
        survivors.append((assignment.labels, assignment.weight))
        total += assignment.weight
    if not survivors or total <= 0.0:
        raise ValueError("evidence has zero posterior probability")
    return [WeightedAssignment(labels, weight / total) for labels, weight in survivors]


def posterior_match_probability(
    candidates: Sequence[CandidatePair],
    evidence: Mapping[Pair, Label],
    pair: Pair,
) -> float:
    """P(``pair`` is matching | evidence), marginalised over the posterior.

    The spec-grade conditional the adaptive dispatch approximates per
    component: transitivity correlates pairs, so the posterior differs from
    the raw likelihood once any evidence exists.

    Raises:
        ValueError: as :func:`posterior_assignments`, or for an unknown pair.
    """
    index = {c.pair: i for i, c in enumerate(candidates)}
    if pair not in index:
        raise ValueError(f"{pair!r} is not a candidate")
    position = index[pair]
    return sum(
        a.weight
        for a in posterior_assignments(candidates, evidence)
        if a.labels[position] is Label.MATCHING
    )


def _resolve_deductions(
    candidates: Sequence[CandidatePair], evidence: Dict[Pair, Label]
) -> Dict[Pair, Label]:
    """Close ``evidence`` under transitive deduction over the candidates."""
    graph = ClusterGraph()
    for pair, label in evidence.items():
        graph.add(pair, label)
    closed = dict(evidence)
    changed = True
    while changed:
        changed = False
        for candidate in candidates:
            if candidate.pair in closed:
                continue
            label = graph.deduce(candidate.pair)
            if label is not None:
                closed[candidate.pair] = label
                graph.add(candidate.pair, label)
                changed = True
    return closed


def _posterior_table(
    candidates: Sequence[CandidatePair],
) -> Tuple[Dict[Pair, int], List[WeightedAssignment]]:
    """Pair index plus the consistent-assignment table, enumerated *once*.

    The adaptive machinery prices a posterior for every (evidence state,
    candidate) combination it explores; re-enumerating the 2^n assignments
    inside each query is what made the DP intractable beyond toy sizes.
    Filtering one shared table against the evidence is exact and cheap.
    """
    index = {c.pair: i for i, c in enumerate(candidates)}
    return index, enumerate_consistent_assignments(candidates)


def _conditioned(
    assignments: Sequence[WeightedAssignment],
    index: Mapping[Pair, int],
    evidence: Mapping[Pair, Label],
) -> Tuple[List[WeightedAssignment], float]:
    """(survivors consistent with ``evidence``, their total weight).

    Raises:
        ValueError: if the evidence has zero posterior mass or names an
            unknown pair.
    """
    for pair in evidence:
        if pair not in index:
            raise ValueError(f"evidence pair {pair!r} is not a candidate")
    survivors = [
        a
        for a in assignments
        if all(a.labels[index[p]] is label for p, label in evidence.items())
    ]
    total = sum(a.weight for a in survivors)
    if not survivors or total <= 0.0:
        raise ValueError("evidence has zero posterior probability")
    return survivors, total


def _marginal(
    survivors: Sequence[WeightedAssignment], total: float, position: int
) -> float:
    return (
        sum(a.weight for a in survivors if a.labels[position] is Label.MATCHING)
        / total
    )


def adaptive_expected_cost(
    candidates: Sequence[CandidatePair],
    choose,
) -> float:
    """Exact expected crowdsourced count of an *adaptive* policy.

    ``choose(unresolved, evidence)`` picks the next pair to crowdsource from
    the unresolved candidates given the labels resolved so far (answered or
    deduced); the expectation recurses over both answers weighted by the
    posterior.  This evaluates a dynamic policy the way
    :func:`expected_cost` evaluates a static order — adaptive policies can
    beat every static order, so this is the fair yardstick for
    ``ExpectedValueDispatch``.

    Exponential in the number of pairs (enumeration limits apply).
    """
    index, assignments = _posterior_table(candidates)

    def recurse(evidence: Dict[Pair, Label]) -> float:
        closed = _resolve_deductions(candidates, evidence)
        unresolved = [c for c in candidates if c.pair not in closed]
        if not unresolved:
            return 0.0
        chosen = choose(unresolved, dict(closed))
        pair = chosen.pair if isinstance(chosen, CandidatePair) else chosen
        survivors, total = _conditioned(assignments, index, closed)
        p_match = _marginal(survivors, total, index[pair])
        cost = 1.0
        if p_match > 1e-15:
            cost += p_match * recurse({**closed, pair: Label.MATCHING})
        if p_match < 1.0 - 1e-15:
            cost += (1.0 - p_match) * recurse({**closed, pair: Label.NON_MATCHING})
        return cost

    return recurse({})


def _adaptive_value(
    candidates: Sequence[CandidatePair],
    evidence: Mapping[Pair, Label],
    cache: Dict[frozenset, float],
    index: Mapping[Pair, int],
    assignments: Sequence[WeightedAssignment],
) -> float:
    """Min expected remaining cost over all adaptive policies from ``evidence``."""
    closed = _resolve_deductions(candidates, dict(evidence))
    key = frozenset(closed.items())
    cached = cache.get(key)
    if cached is not None:
        return cached
    unresolved = [c for c in candidates if c.pair not in closed]
    if not unresolved:
        cache[key] = 0.0
        return 0.0
    survivors, total = _conditioned(assignments, index, closed)
    minimum = math.inf
    for candidate in unresolved:
        p_match = _marginal(survivors, total, index[candidate.pair])
        cost = 1.0
        if p_match > 1e-15:
            cost += p_match * _adaptive_value(
                candidates,
                {**closed, candidate.pair: Label.MATCHING},
                cache,
                index,
                assignments,
            )
        if p_match < 1.0 - 1e-15:
            cost += (1.0 - p_match) * _adaptive_value(
                candidates,
                {**closed, candidate.pair: Label.NON_MATCHING},
                cache,
                index,
                assignments,
            )
        minimum = min(minimum, cost)
    cache[key] = minimum
    return minimum


def _check_adaptive_feasible(candidates: Sequence[CandidatePair]) -> None:
    _check_enumerable(len(candidates))
    if len(candidates) > 2 * MAX_BRUTE_FORCE_PAIRS:
        raise ValueError(
            f"adaptive brute force over {len(candidates)} pairs is infeasible; "
            f"the limit is {2 * MAX_BRUTE_FORCE_PAIRS}"
        )


def brute_force_adaptive_optimal(
    candidates: Sequence[CandidatePair],
    evidence: Optional[Mapping[Pair, Label]] = None,
) -> float:
    """Exact minimum expected cost over *all* adaptive policies.

    Dynamic programming over evidence states: at each state try every
    unresolved pair and keep the cheapest.  Lower-bounds every static order
    (a static order is an adaptive policy that ignores the answers), so
    ``brute_force_adaptive_optimal <= brute_force_expected_optimal``.

    ``evidence`` optionally fixes labels of some candidates before the
    policy starts (they cost nothing — used to condition on constraints).
    """
    _check_adaptive_feasible(candidates)
    index, assignments = _posterior_table(candidates)
    return _adaptive_value(candidates, evidence or {}, {}, index, assignments)


def adaptive_optimal_choice(
    candidates: Sequence[CandidatePair],
    evidence: Optional[Mapping[Pair, Label]] = None,
) -> Optional[CandidatePair]:
    """The first question of an expected-optimal adaptive policy.

    Evaluates every unresolved candidate's ``1 + p*V(match) + (1-p)*V(non)``
    under the exact DP and returns the cheapest (ties keep the earliest
    candidate, so pre-sorting by descending likelihood makes ties fall back
    to the paper's heuristic).  Returns None when the evidence already
    resolves everything.  This is the small-n oracle the production
    ``ExpectedValueDispatch`` consults when enumeration is feasible.
    """
    _check_adaptive_feasible(candidates)
    index, assignments = _posterior_table(candidates)
    cache: Dict[frozenset, float] = {}
    closed = _resolve_deductions(candidates, dict(evidence or {}))
    unresolved = [c for c in candidates if c.pair not in closed]
    if not unresolved:
        return None
    survivors, total = _conditioned(assignments, index, closed)
    best_candidate = None
    best_cost = math.inf
    for candidate in unresolved:
        p_match = _marginal(survivors, total, index[candidate.pair])
        cost = 1.0
        if p_match > 1e-15:
            cost += p_match * _adaptive_value(
                candidates,
                {**closed, candidate.pair: Label.MATCHING},
                cache,
                index,
                assignments,
            )
        if p_match < 1.0 - 1e-15:
            cost += (1.0 - p_match) * _adaptive_value(
                candidates,
                {**closed, candidate.pair: Label.NON_MATCHING},
                cache,
                index,
                assignments,
            )
        if cost < best_cost - 1e-12:
            best_cost = cost
            best_candidate = candidate
    return best_candidate
