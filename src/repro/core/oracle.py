"""Label oracles: where crowdsourced answers come from.

The labeling algorithms in this package are written against a minimal
:class:`LabelOracle` interface so the same code runs against a perfect
ground-truth oracle (the paper's simulation sections), a noisy oracle, or the
full discrete-event crowd platform in ``repro.crowd``.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Hashable, Mapping, Protocol, runtime_checkable

from .pairs import Label, Pair


@runtime_checkable
class LabelOracle(Protocol):
    """Anything that can answer "is this pair matching?"."""

    def label(self, pair: Pair) -> Label:
        """Return the (possibly noisy) label of ``pair``."""
        ...  # pragma: no cover - protocol


class GroundTruthOracle:
    """Answers from a ground-truth entity assignment.

    Two objects match iff they are mapped to the same entity identifier.
    Objects missing from the mapping are treated as singleton entities (they
    match nothing).
    """

    def __init__(self, entity_of: Mapping[Hashable, Hashable]) -> None:
        self._entity_of = entity_of

    def label(self, pair: Pair) -> Label:
        left = self._entity_of.get(pair.left, ("__singleton__", pair.left))
        right = self._entity_of.get(pair.right, ("__singleton__", pair.right))
        return Label.MATCHING if left == right else Label.NON_MATCHING

    def is_matching(self, pair: Pair) -> bool:
        return self.label(pair) is Label.MATCHING


class FunctionOracle:
    """Adapts a plain callable ``pair -> Label`` to the oracle interface."""

    def __init__(self, fn: Callable[[Pair], Label]) -> None:
        self._fn = fn

    def label(self, pair: Pair) -> Label:
        return self._fn(pair)


class MappingOracle:
    """Answers from an explicit pair->label mapping.

    Raises:
        KeyError: when asked about a pair not in the mapping — useful in
            tests to assert that an algorithm only crowdsources expected
            pairs.
    """

    def __init__(self, labels: Mapping[Pair, Label]) -> None:
        self._labels = dict(labels)

    def label(self, pair: Pair) -> Label:
        return self._labels[pair]


class NoisyOracle:
    """Flips the base oracle's answer with a fixed error probability.

    The flip decision for a pair is memoised: asking the same pair twice
    returns the same answer, modelling a crowd consensus that has already
    settled (for per-assignment noise use ``repro.crowd.worker``).
    """

    def __init__(self, base: LabelOracle, error_rate: float, seed: int = 0) -> None:
        if not 0.0 <= error_rate <= 1.0:
            raise ValueError(f"error_rate must be in [0, 1], got {error_rate}")
        self._base = base
        self._error_rate = error_rate
        self._rng = random.Random(seed)
        self._memo: Dict[Pair, Label] = {}

    def label(self, pair: Pair) -> Label:
        if pair not in self._memo:
            answer = self._base.label(pair)
            if self._rng.random() < self._error_rate:
                answer = answer.negate()
            self._memo[pair] = answer
        return self._memo[pair]


class CountingOracle:
    """Wrapper that counts and records queries — the "money meter".

    Every call to :meth:`label` is one crowdsourced pair, the quantity the
    paper minimises (Definition 1).
    """

    def __init__(self, base: LabelOracle) -> None:
        self._base = base
        self.calls: list[Pair] = []

    @property
    def n_calls(self) -> int:
        return len(self.calls)

    def label(self, pair: Pair) -> Label:
        self.calls.append(pair)
        return self._base.label(pair)

    def asked(self, pair: Pair) -> bool:
        return pair in self.calls


def oracle_from(
    source: "LabelOracle | Mapping[Hashable, Hashable] | Callable[[Pair], Label]",
) -> LabelOracle:
    """Coerce common ground-truth representations into a LabelOracle.

    Accepts an oracle (returned unchanged), an ``object -> entity`` mapping,
    or a callable ``pair -> Label``.
    """
    if isinstance(source, LabelOracle):
        return source
    if isinstance(source, Mapping):
        return GroundTruthOracle(source)
    if callable(source):
        return FunctionOracle(source)
    raise TypeError(f"cannot build an oracle from {type(source).__name__}")
