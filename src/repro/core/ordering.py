"""Labeling orders (paper Section 4).

The order in which pairs are labeled determines how many must be
crowdsourced.  The paper's results:

* **Optimal** (Theorem 1): all matching pairs first, then all non-matching
  pairs.  Requires ground truth, so it is an oracle-only upper bound on
  savings.
* **Expected / heuristic** (Section 4.2): decreasing machine-estimated match
  likelihood.  Finding the truly expected-optimal order is NP-hard
  (Vesdapunt et al., VLDB 2014); this heuristic is what the framework uses in
  practice.
* **Random** and **Worst** (non-matching first) serve as the paper's
  baselines in Figure 12.

Each sorter consumes candidate pairs and returns a new, sorted list; input
order is used as a deterministic tie-break so results are reproducible.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Protocol, Sequence, runtime_checkable

from .oracle import LabelOracle
from .pairs import CandidatePair, Label


@runtime_checkable
class Sorter(Protocol):
    """The framework's Sorting component (paper Figure 4)."""

    def sort(self, candidates: Sequence[CandidatePair]) -> List[CandidatePair]:
        """Return the candidates in labeling order (a new list)."""
        ...  # pragma: no cover - protocol


class ExpectedOrderSorter:
    """Heuristic order: decreasing likelihood of being a matching pair.

    This is the order the paper recommends (and uses for all experiments
    after Figure 12): since matching-first is optimal and true labels are
    unknown, sort by the machine-based likelihood instead.
    """

    def sort(self, candidates: Sequence[CandidatePair]) -> List[CandidatePair]:
        indexed = list(enumerate(candidates))
        indexed.sort(key=lambda item: (-item[1].likelihood, item[0]))
        return [cand for _, cand in indexed]


class OptimalOrderSorter:
    """Ground-truth order: all matching pairs, then all non-matching pairs.

    Within each group the input order is preserved (any such order is optimal
    by Lemma 3).  Only available in simulation, where truth is known.
    """

    def __init__(self, truth: LabelOracle) -> None:
        self._truth = truth

    def sort(self, candidates: Sequence[CandidatePair]) -> List[CandidatePair]:
        matching = [c for c in candidates if self._truth.label(c.pair) is Label.MATCHING]
        non_matching = [c for c in candidates if self._truth.label(c.pair) is Label.NON_MATCHING]
        return matching + non_matching


class WorstOrderSorter:
    """Adversarial order: all non-matching pairs first (paper Figure 12)."""

    def __init__(self, truth: LabelOracle) -> None:
        self._truth = truth

    def sort(self, candidates: Sequence[CandidatePair]) -> List[CandidatePair]:
        matching = [c for c in candidates if self._truth.label(c.pair) is Label.MATCHING]
        non_matching = [c for c in candidates if self._truth.label(c.pair) is Label.NON_MATCHING]
        return non_matching + matching


class RandomOrderSorter:
    """Uniformly random order with a fixed seed (paper Figure 12 baseline)."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed

    def sort(self, candidates: Sequence[CandidatePair]) -> List[CandidatePair]:
        shuffled = list(candidates)
        random.Random(self._seed).shuffle(shuffled)
        return shuffled


class IdentityOrderSorter:
    """Keeps the input order — for externally pre-sorted candidate lists."""

    def sort(self, candidates: Sequence[CandidatePair]) -> List[CandidatePair]:
        return list(candidates)


def expected_order(candidates: Iterable[CandidatePair]) -> List[CandidatePair]:
    """Sort by decreasing likelihood (convenience wrapper)."""
    return ExpectedOrderSorter().sort(list(candidates))


def optimal_order(
    candidates: Iterable[CandidatePair], truth: LabelOracle
) -> List[CandidatePair]:
    """Matching pairs first, then non-matching (convenience wrapper)."""
    return OptimalOrderSorter(truth).sort(list(candidates))


def worst_order(
    candidates: Iterable[CandidatePair], truth: LabelOracle
) -> List[CandidatePair]:
    """Non-matching pairs first (convenience wrapper)."""
    return WorstOrderSorter(truth).sort(list(candidates))


def random_order(candidates: Iterable[CandidatePair], seed: int = 0) -> List[CandidatePair]:
    """Seeded random shuffle (convenience wrapper)."""
    return RandomOrderSorter(seed).sort(list(candidates))


SORTER_NAMES = {
    "expected": ExpectedOrderSorter,
    "identity": IdentityOrderSorter,
}


def make_sorter(
    name: str,
    truth: "LabelOracle | None" = None,
    seed: int = 0,
) -> Sorter:
    """Build a sorter by name: expected, optimal, worst, random, identity.

    ``optimal`` and ``worst`` need a ground-truth oracle.

    Raises:
        ValueError: for unknown names or a missing required oracle.
    """
    if name == "expected":
        return ExpectedOrderSorter()
    if name == "identity":
        return IdentityOrderSorter()
    if name == "random":
        return RandomOrderSorter(seed)
    if name in ("optimal", "worst"):
        if truth is None:
            raise ValueError(f"the {name!r} order requires a ground-truth oracle")
        return OptimalOrderSorter(truth) if name == "optimal" else WorstOrderSorter(truth)
    raise ValueError(f"unknown sorter {name!r}")
