"""Core algorithms from the paper: transitivity-aware labeling of candidate
pairs with minimal crowdsourcing.

Public surface:

* pair/label model: :class:`Pair`, :class:`Label`, :class:`CandidatePair`
* deduction: :class:`ClusterGraph`, :func:`deduce_label`
* orders: :class:`ExpectedOrderSorter`, :class:`OptimalOrderSorter`, ...
* labelers: :class:`SequentialLabeler`, :class:`ParallelLabeler`,
  :class:`InstantLabeler`
* facade: :class:`TransitiveJoinFramework`
"""

from .cluster_graph import (
    ClusterGraph,
    Conflict,
    ConflictPolicy,
    GraphListener,
    InconsistentLabelError,
    deduce_label,
)
from .consistency import entity_partition, find_violations, is_consistent
from .deduction import deduce_by_path_enumeration, deduce_by_search
from .expected_cost import (
    brute_force_expected_optimal,
    crowdsourcing_probabilities,
    enumerate_consistent_assignments,
    expected_cost,
)
from .framework import (
    FrameworkRun,
    TransitiveJoinFramework,
    label_baseline,
    label_with_transitivity,
)
from .instant import (
    AnswerPolicy,
    AvailabilityPoint,
    InstantLabeler,
    InstantRunResult,
    label_instant,
)
from .oracle import (
    CountingOracle,
    FunctionOracle,
    GroundTruthOracle,
    LabelOracle,
    MappingOracle,
    NoisyOracle,
    oracle_from,
)
from .ordering import (
    ExpectedOrderSorter,
    IdentityOrderSorter,
    OptimalOrderSorter,
    RandomOrderSorter,
    Sorter,
    WorstOrderSorter,
    expected_order,
    make_sorter,
    optimal_order,
    random_order,
    worst_order,
)
from .pairs import (
    CandidatePair,
    Label,
    LabeledPair,
    Pair,
    Provenance,
    candidate,
    make_pair,
    objects_of,
    pairs_of,
)
from .parallel import ParallelLabeler, label_parallel, parallel_crowdsourced_pairs
from .result import LabelingResult, PairOutcome
from .sweep import PendingPairIndex
from .sequential import (
    SequentialLabeler,
    crowdsourced_count,
    label_non_transitive,
    label_sequential,
)
from .union_find import UnionFind

__all__ = [
    "AnswerPolicy",
    "AvailabilityPoint",
    "CandidatePair",
    "ClusterGraph",
    "Conflict",
    "ConflictPolicy",
    "CountingOracle",
    "ExpectedOrderSorter",
    "FrameworkRun",
    "FunctionOracle",
    "GraphListener",
    "GroundTruthOracle",
    "IdentityOrderSorter",
    "InconsistentLabelError",
    "InstantLabeler",
    "InstantRunResult",
    "Label",
    "LabelOracle",
    "LabeledPair",
    "LabelingResult",
    "MappingOracle",
    "NoisyOracle",
    "OptimalOrderSorter",
    "Pair",
    "PairOutcome",
    "PendingPairIndex",
    "ParallelLabeler",
    "Provenance",
    "RandomOrderSorter",
    "SequentialLabeler",
    "Sorter",
    "TransitiveJoinFramework",
    "UnionFind",
    "WorstOrderSorter",
    "brute_force_expected_optimal",
    "candidate",
    "crowdsourced_count",
    "crowdsourcing_probabilities",
    "deduce_by_path_enumeration",
    "deduce_by_search",
    "deduce_label",
    "entity_partition",
    "enumerate_consistent_assignments",
    "expected_cost",
    "expected_order",
    "find_violations",
    "is_consistent",
    "label_baseline",
    "label_instant",
    "label_non_transitive",
    "label_parallel",
    "label_sequential",
    "label_with_transitivity",
    "make_pair",
    "make_sorter",
    "objects_of",
    "optimal_order",
    "pairs_of",
    "parallel_crowdsourced_pairs",
    "random_order",
    "worst_order",
]
