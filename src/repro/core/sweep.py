"""Incremental deduction sweeps: re-check only pairs that could have changed.

The event-driven labelers re-evaluate deducibility of every pending pair
after each crowd answer — an O(pending) scan per answer that dominates the
Figure 15 simulation at full scale.  This module provides
:class:`PendingPairIndex`, an index over pending pairs keyed by the cluster
that each endpoint currently belongs to.  A pair's deducibility can only
change when its endpoint clusters change — merge with another cluster or
gain an incident non-matching edge — so the index listens for exactly those
ClusterGraph events and marks the touched pairs *dirty*; a sweep then checks
only the dirty set.

The naive full scan and the indexed sweep are equivalent (property-tested);
the index is purely a performance feature.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Set

from .cluster_graph import ClusterGraph
from .pairs import Label, Pair


class PendingPairIndex:
    """Index of pending (unlabeled, unpublished) pairs by cluster root.

    Attach to a :class:`ClusterGraph` via its ``listener`` slot *before*
    inserting further pairs; the graph reports cluster merges and new
    non-matching edges, and the index translates them into a dirty set of
    pending pairs whose deducibility must be re-checked.

    Endpoints the graph has not seen yet are tracked separately (the graph's
    own object set stays untouched); call :meth:`note_objects_seen` right
    after inserting a labeled pair so those endpoints migrate into the
    cluster-keyed index.

    The index is backend-agnostic: it works identically over a monolithic
    :class:`ClusterGraph` and a
    :class:`~repro.engine.sharding.ShardedClusterGraph` — cluster roots are
    plain objects living in exactly one shard, and the sharded graph funnels
    every shard's merge/edge events through its own ``listener`` slot.

    Args:
        graph: the deduction graph (the index registers itself as listener);
            anything honouring the ClusterGraph ``listener``/``cluster_of``/
            ``deduce`` contract.
        pending: the initially pending pairs.

    Raises:
        ValueError: if the graph already has another listener.
    """

    def __init__(self, graph: "ClusterGraph", pending: Iterable[Pair]) -> None:
        if graph.listener is not None:
            raise ValueError("the graph already has a listener attached")
        self._graph = graph
        self._by_root: Dict[Hashable, Set[Pair]] = {}
        self._by_unseen: Dict[Hashable, Set[Pair]] = {}
        self._pending: Set[Pair] = set()
        self._dirty: Set[Pair] = set()
        for pair in pending:
            self.add_pending(pair)
        graph.listener = self

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._pending)

    def __contains__(self, pair: Pair) -> bool:
        return pair in self._pending

    def add_pending(self, pair: Pair) -> None:
        """Track a new pending pair (it is marked dirty so the next sweep
        evaluates it at least once)."""
        if pair in self._pending:
            return
        self._pending.add(pair)
        for obj in pair:
            if obj in self._graph:
                self._by_root.setdefault(self._graph.cluster_of(obj), set()).add(pair)
            else:
                self._by_unseen.setdefault(obj, set()).add(pair)
        self._dirty.add(pair)

    def remove(self, pair: Pair) -> None:
        """Stop tracking a pair (labeled, or handed to the platform)."""
        if pair not in self._pending:
            return
        self._pending.discard(pair)
        self._dirty.discard(pair)
        for obj in pair:
            if obj in self._graph:
                bucket = self._by_root.get(self._graph.cluster_of(obj))
                if bucket is not None:
                    bucket.discard(pair)
            unseen = self._by_unseen.get(obj)
            if unseen is not None:
                unseen.discard(pair)
                if not unseen:
                    del self._by_unseen[obj]

    def note_objects_seen(self, *objects: Hashable) -> None:
        """Migrate pairs waiting on ``objects`` into the cluster index.

        Call right after inserting a labeled pair whose endpoints may have
        been previously unseen.
        """
        for obj in objects:
            waiting = self._by_unseen.pop(obj, None)
            if not waiting:
                continue
            root = self._graph.cluster_of(obj)
            self._by_root.setdefault(root, set()).update(waiting)
            self._dirty.update(waiting)

    # ------------------------------------------------------------------
    # ClusterGraph listener protocol
    # ------------------------------------------------------------------
    def on_union(self, survivor: Hashable, loser: Hashable) -> None:
        """Two clusters merged: every pending pair touching either may now
        be deducible (same-cluster, or via rewired edges)."""
        moved = self._by_root.pop(loser, set())
        bucket = self._by_root.setdefault(survivor, set())
        bucket.update(moved)
        self._dirty.update(bucket)

    def on_edge(self, root_a: Hashable, root_b: Hashable) -> None:
        """A new cluster-level non-matching edge: pairs spanning these
        clusters may now be deducible as non-matching."""
        self._dirty.update(self._by_root.get(root_a, ()))
        self._dirty.update(self._by_root.get(root_b, ()))

    # ------------------------------------------------------------------
    # sweeping
    # ------------------------------------------------------------------
    def sweep(self) -> List[tuple[Pair, Label]]:
        """Resolve every dirty pair that is now deducible.

        Returns:
            (pair, deduced label) for each newly resolved pair; resolved
            pairs leave the index.
        """
        resolved: List[tuple[Pair, Label]] = []
        dirty = self._dirty
        self._dirty = set()
        for pair in dirty:
            if pair not in self._pending:
                continue
            label = self._graph.deduce(pair)
            if label is not None:
                resolved.append((pair, label))
        for pair, _ in resolved:
            self.remove(pair)
        return resolved

    def pending_pairs(self) -> Set[Pair]:
        """The currently tracked pairs (a copy)."""
        return set(self._pending)

    def check_invariants(self) -> None:
        """Verify internal consistency (for tests)."""
        indexed: Set[Pair] = set()
        for root, bucket in self._by_root.items():
            assert self._graph.cluster_of(root) == root, f"stale root {root!r}"
            indexed.update(bucket)
        for bucket in self._by_unseen.values():
            indexed.update(bucket)
        assert self._pending <= indexed, "pending pair missing from the index"
