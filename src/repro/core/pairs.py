"""Object-pair and label primitives used across the library.

The paper (Section 2.2) works with *object pairs* ``p = (o, o')`` whose label
is either ``matching`` (the two objects refer to the same real-world entity)
or ``non-matching``.  This module provides canonical, hashable value types for
pairs and labels, plus the likelihood-carrying candidate pair produced by the
machine-based matcher (Section 2.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Iterator


class Label(enum.Enum):
    """The label of an object pair.

    ``MATCHING`` means the two objects refer to the same real-world entity
    (written ``o = o'`` in the paper); ``NON_MATCHING`` means they refer to
    different entities (``o != o'``).
    """

    MATCHING = "matching"
    NON_MATCHING = "non-matching"

    def negate(self) -> "Label":
        """Return the opposite label."""
        if self is Label.MATCHING:
            return Label.NON_MATCHING
        return Label.MATCHING

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Label.{self.name}"


class Provenance(enum.Enum):
    """How a pair obtained its label in the labeling framework."""

    CROWDSOURCED = "crowdsourced"
    DEDUCED = "deduced"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Provenance.{self.name}"


def _object_sort_key(obj: Hashable) -> tuple[str, str]:
    """A total order over arbitrary hashable objects.

    Objects of heterogeneous types cannot always be compared with ``<``; we
    order by ``(type name, repr)`` which is deterministic and total —
    *provided* the repr itself is deterministic.  The default
    ``object.__repr__`` embeds the instance's memory address, which varies
    across processes: a pair canonicalised by it would store its members in
    different left/right order in different processes, silently breaking the
    journal's encoded order and ``state_fingerprint`` comparisons.  Such
    objects are rejected at construction.

    Raises:
        TypeError: if ``obj``'s repr is the address-based default.
    """
    cls = type(obj)
    if cls.__repr__ is object.__repr__:
        raise TypeError(
            f"cannot canonicalise a Pair containing a {cls.__name__} instance: "
            "its default repr embeds a memory address, so left/right order "
            "would differ across processes. Use scalar object ids "
            "(str/int/float/bool/None) — the contract repro.spec.encode_object "
            "enforces — or give the type a deterministic __repr__."
        )
    return (cls.__name__, repr(obj))


@dataclass(frozen=True)
class Pair:
    """An unordered pair of distinct objects.

    ``Pair(a, b)`` and ``Pair(b, a)`` compare and hash equal: the pair is
    canonicalised at construction so the "smaller" object (by a deterministic
    total order) is stored first.

    Raises:
        ValueError: if the two objects are equal (a pair must relate two
            *distinct* objects).
    """

    left: Hashable
    right: Hashable

    def __post_init__(self) -> None:
        if self.left == self.right:
            raise ValueError(f"a Pair must contain two distinct objects, got {self.left!r} twice")
        if _object_sort_key(self.left) > _object_sort_key(self.right):
            smaller, larger = self.right, self.left
            object.__setattr__(self, "left", smaller)
            object.__setattr__(self, "right", larger)

    def __iter__(self) -> Iterator[Hashable]:
        yield self.left
        yield self.right

    def other(self, obj: Hashable) -> Hashable:
        """Return the pair's other object.

        Raises:
            KeyError: if ``obj`` is not a member of this pair.
        """
        if obj == self.left:
            return self.right
        if obj == self.right:
            return self.left
        raise KeyError(f"{obj!r} is not a member of {self!r}")

    def __contains__(self, obj: Hashable) -> bool:
        return obj == self.left or obj == self.right

    def __hash__(self) -> int:
        # Pairs key every hot dict in the engine (positions, likelihoods,
        # outcomes), so the tuple hash is cached on first use.  The cache
        # lives in the instance dict, not a field: it must never leak
        # through pickle (str hashes are salted per process — see
        # __getstate__) and never participate in repr/eq.
        fields = self.__dict__
        cached = fields.get("_hash")
        if cached is None:
            cached = fields["_hash"] = hash((self.left, self.right))
        return cached

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def __repr__(self) -> str:
        return f"Pair({self.left!r}, {self.right!r})"


@dataclass(frozen=True)
class LabeledPair:
    """A pair together with its label."""

    pair: Pair
    label: Label

    @property
    def is_matching(self) -> bool:
        return self.label is Label.MATCHING

    def __iter__(self) -> Iterator[Any]:
        yield self.pair
        yield self.label


@dataclass(frozen=True, order=False)
class CandidatePair:
    """A pair plus the machine-estimated likelihood that it is matching.

    The likelihood plays two roles in the paper: thresholding (only pairs with
    likelihood above a cut-off are sent for labeling, Section 6) and ordering
    (the heuristic labeling order sorts by decreasing likelihood,
    Section 4.2).
    """

    pair: Pair
    likelihood: float = field(default=0.5)

    def __post_init__(self) -> None:
        if not 0.0 <= self.likelihood <= 1.0:
            raise ValueError(f"likelihood must be in [0, 1], got {self.likelihood}")

    @property
    def left(self) -> Hashable:
        return self.pair.left

    @property
    def right(self) -> Hashable:
        return self.pair.right

    def sort_key(self) -> tuple[float, str, str]:
        """Deterministic tie-broken key: likelihood, then pair identity."""
        return (self.likelihood, repr(self.pair.left), repr(self.pair.right))


def make_pair(a: Hashable, b: Hashable) -> Pair:
    """Convenience constructor mirroring the paper's ``(o, o')`` notation."""
    return Pair(a, b)


def candidate(a: Hashable, b: Hashable, likelihood: float = 0.5) -> CandidatePair:
    """Build a :class:`CandidatePair` from two objects and a likelihood."""
    return CandidatePair(Pair(a, b), likelihood)


def pairs_of(candidates: Iterable[CandidatePair]) -> list[Pair]:
    """Project a sequence of candidates to their bare pairs, preserving order."""
    return [c.pair for c in candidates]


def objects_of(pairs: Iterable[Pair]) -> set[Hashable]:
    """The set of distinct objects mentioned by ``pairs``."""
    objects: set[Hashable] = set()
    for pair in pairs:
        objects.add(pair.left)
        objects.add(pair.right)
    return objects


def ensure_unique(candidates: Iterable[CandidatePair]) -> list[CandidatePair]:
    """Drop duplicate pairs, keeping the first (highest-priority) occurrence.

    Raises:
        ValueError: if the same pair appears twice with *different*
            likelihoods, which almost always indicates a bug in candidate
            generation.
    """
    seen: dict[Pair, float] = {}
    unique: list[CandidatePair] = []
    for cand in candidates:
        if cand.pair in seen:
            if seen[cand.pair] != cand.likelihood:
                raise ValueError(
                    f"duplicate candidate {cand.pair!r} with conflicting likelihoods "
                    f"{seen[cand.pair]} and {cand.likelihood}"
                )
            continue
        seen[cand.pair] = cand.likelihood
        unique.append(cand)
    return unique
