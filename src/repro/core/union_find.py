"""Disjoint-set (union-find) data structure.

The paper's ClusterGraph (Section 3.2, Algorithm 1) merges matching objects
into clusters with the classic union-find algorithm of Tarjan [20].  This
implementation uses union by size and path compression, giving effectively
constant amortised time per operation.

Elements may be arbitrary hashable objects and are added lazily on first use.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Set


class UnionFind:
    """Union-find over arbitrary hashable elements.

    Examples:
        >>> uf = UnionFind()
        >>> uf.union("a", "b")
        'a'
        >>> uf.connected("a", "b")
        True
        >>> uf.connected("a", "c")
        False
    """

    def __init__(self, elements: Iterable[Hashable] = ()) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}
        self._n_components = 0
        for element in elements:
            self.add(element)

    def add(self, element: Hashable) -> None:
        """Register ``element`` as a singleton component if unseen."""
        if element not in self._parent:
            self._parent[element] = element
            self._size[element] = 1
            self._n_components += 1

    def __contains__(self, element: Hashable) -> bool:
        return element in self._parent

    def __len__(self) -> int:
        """Number of registered elements."""
        return len(self._parent)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._parent)

    @property
    def n_components(self) -> int:
        """Number of disjoint components among registered elements."""
        return self._n_components

    def find(self, element: Hashable) -> Hashable:
        """Return the canonical representative of ``element``'s component.

        Unseen elements are registered as singletons first.  Uses iterative
        path compression (two-pass) so deep structures never hit the
        recursion limit.
        """
        self.add(element)
        parent = self._parent
        root = element
        while parent[root] != root:
            root = parent[root]
        while parent[element] != root:
            parent[element], element = root, parent[element]
        return root

    def union(self, a: Hashable, b: Hashable) -> Hashable:
        """Merge the components of ``a`` and ``b``; return the surviving root.

        Union by size: the root of the larger component survives, which keeps
        tree depth logarithmic even without compression.
        """
        root_a = self.find(a)
        root_b = self.find(b)
        if root_a == root_b:
            return root_a
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        self._n_components -= 1
        return root_a

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """True iff ``a`` and ``b`` are in the same component."""
        return self.find(a) == self.find(b)

    def component_size(self, element: Hashable) -> int:
        """Number of elements in ``element``'s component."""
        return self._size[self.find(element)]

    def components(self) -> List[Set[Hashable]]:
        """All components as a list of sets (deterministic insertion order)."""
        by_root: Dict[Hashable, Set[Hashable]] = {}
        for element in self._parent:
            by_root.setdefault(self.find(element), set()).add(element)
        return list(by_root.values())

    def roots(self) -> Set[Hashable]:
        """The set of canonical representatives."""
        return {self.find(element) for element in self._parent}

    def copy(self) -> "UnionFind":
        """An independent copy (components are preserved)."""
        clone = UnionFind()
        clone._parent = dict(self._parent)
        clone._size = dict(self._size)
        clone._n_components = self._n_components
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UnionFind({len(self)} elements, {self.n_components} components)"
