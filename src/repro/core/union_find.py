"""Disjoint-set (union-find) data structure.

The paper's ClusterGraph (Section 3.2, Algorithm 1) merges matching objects
into clusters with the classic union-find algorithm of Tarjan [20].  This
implementation uses union by size and path compression, giving effectively
constant amortised time per operation.

Elements may be arbitrary hashable objects and are added lazily on first use.

Two extensions support the sharded backend and the incremental frontier:

* :meth:`UnionFind.checkpoint` / :meth:`UnionFind.rollback` — a journal of
  structural changes so a caller can apply speculative unions (the optimistic
  "all unlabeled pairs match" scan) and undo them in time proportional to the
  speculation, not the structure;
* :meth:`UnionFind.absorb` — splice a *disjoint* union-find into this one in
  O(len(other)), used when two component shards merge.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple


class UnionFind:
    """Union-find over arbitrary hashable elements.

    Examples:
        >>> uf = UnionFind()
        >>> uf.union("a", "b")
        'a'
        >>> uf.connected("a", "b")
        True
        >>> uf.connected("a", "c")
        False
    """

    def __init__(self, elements: Iterable[Hashable] = ()) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._size: Dict[Hashable, int] = {}
        self._n_components = 0
        # Journal of undoable structural changes; None when no checkpoint is
        # active.  Entries: ("add", element) or ("union", survivor, loser,
        # loser_size).
        self._journal: Optional[List[Tuple]] = None
        for element in elements:
            self.add(element)

    def add(self, element: Hashable) -> None:
        """Register ``element`` as a singleton component if unseen."""
        if element not in self._parent:
            self._parent[element] = element
            self._size[element] = 1
            self._n_components += 1
            if self._journal is not None:
                self._journal.append(("add", element))

    def __contains__(self, element: Hashable) -> bool:
        return element in self._parent

    def __len__(self) -> int:
        """Number of registered elements."""
        return len(self._parent)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._parent)

    @property
    def n_components(self) -> int:
        """Number of disjoint components among registered elements."""
        return self._n_components

    def find(self, element: Hashable) -> Hashable:
        """Return the canonical representative of ``element``'s component.

        Unseen elements are registered as singletons first.  Uses iterative
        path compression (two-pass) so deep structures never hit the
        recursion limit.
        """
        self.add(element)
        parent = self._parent
        root = element
        while parent[root] != root:
            root = parent[root]
        if self._journal is None:
            # Path compression rewrites parent pointers; while a checkpoint
            # is active we skip it so the journal stays proportional to the
            # speculative unions (union by size keeps depth logarithmic).
            while parent[element] != root:
                parent[element], element = root, parent[element]
        return root

    def union(self, a: Hashable, b: Hashable) -> Hashable:
        """Merge the components of ``a`` and ``b``; return the surviving root.

        Union by size: the root of the larger component survives, which keeps
        tree depth logarithmic even without compression.
        """
        root_a = self.find(a)
        root_b = self.find(b)
        if root_a == root_b:
            return root_a
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        self._n_components -= 1
        if self._journal is not None:
            self._journal.append(("union", root_a, root_b, self._size[root_b]))
        return root_a

    # ------------------------------------------------------------------
    # speculative operation (checkpoint / rollback)
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Start journaling structural changes for a later :meth:`rollback`.

        While a checkpoint is active, path compression is suspended (union by
        size alone keeps find logarithmic), so undoing costs time proportional
        to the operations performed since the checkpoint.

        Raises:
            RuntimeError: if a checkpoint is already active (the journal does
                not nest).
        """
        if self._journal is not None:
            raise RuntimeError("a checkpoint is already active")
        self._journal = []

    def rollback(self) -> None:
        """Undo every structural change since :meth:`checkpoint`.

        Raises:
            RuntimeError: if no checkpoint is active.
        """
        if self._journal is None:
            raise RuntimeError("no active checkpoint to roll back")
        journal = self._journal
        self._journal = None
        for entry in reversed(journal):
            if entry[0] == "union":
                _, survivor, loser, loser_size = entry
                self._parent[loser] = loser
                self._size[survivor] -= loser_size
                self._n_components += 1
            else:  # ("add", element)
                _, element = entry
                del self._parent[element]
                del self._size[element]
                self._n_components -= 1

    # ------------------------------------------------------------------
    # disjoint splice (shard merging)
    # ------------------------------------------------------------------
    def absorb(self, other: "UnionFind") -> None:
        """Splice a *disjoint* union-find into this one in O(len(other)).

        Components are preserved unchanged on both sides — no unions happen;
        the element universes are simply combined.  Used by the sharded
        cluster graph to merge two component shards lazily.

        Raises:
            ValueError: if the element sets overlap.
            RuntimeError: if either side has an active checkpoint.
        """
        if self._journal is not None or other._journal is not None:
            raise RuntimeError("cannot absorb while a checkpoint is active")
        if self._parent.keys() & other._parent.keys():
            raise ValueError("absorb requires disjoint element sets")
        self._parent.update(other._parent)
        self._size.update(other._size)
        self._n_components += other._n_components

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """True iff ``a`` and ``b`` are in the same component."""
        return self.find(a) == self.find(b)

    def component_size(self, element: Hashable) -> int:
        """Number of elements in ``element``'s component."""
        return self._size[self.find(element)]

    def components(self) -> List[Set[Hashable]]:
        """All components as a list of sets (deterministic insertion order)."""
        by_root: Dict[Hashable, Set[Hashable]] = {}
        for element in self._parent:
            by_root.setdefault(self.find(element), set()).add(element)
        return list(by_root.values())

    def roots(self) -> Set[Hashable]:
        """The set of canonical representatives."""
        return {self.find(element) for element in self._parent}

    def copy(self) -> "UnionFind":
        """An independent copy (components are preserved)."""
        clone = UnionFind()
        clone._parent = dict(self._parent)
        clone._size = dict(self._size)
        clone._n_components = self._n_components
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UnionFind({len(self)} elements, {self.n_components} components)"
