"""Consistency (realisability) of a pair labeling.

A full assignment of matching/non-matching labels to a set of pairs is
*consistent* when some partition of the objects into entities induces it:
equivalently, when no non-matching edge connects two objects joined by a path
of matching edges.  The expected-cost machinery (paper Section 4.2,
Example 4) enumerates exactly the consistent assignments; the noisy-crowd
experiments use these checks to quantify how inconsistent the crowd's raw
answers were.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple

from .pairs import Label, LabeledPair, Pair
from .union_find import UnionFind


def is_consistent(labeled: Iterable[LabeledPair]) -> bool:
    """True iff the labeling is realisable by some entity partition."""
    return not find_violations(labeled)


def find_violations(labeled: Iterable[LabeledPair]) -> List[Pair]:
    """Return the non-matching pairs whose endpoints are transitively matched.

    These are the edges that make the labeling unrealisable.  Matching edges
    are never reported: any set of matching edges alone is always consistent.
    """
    items = list(labeled)
    uf = UnionFind()
    for item in items:
        if item.label is Label.MATCHING:
            uf.union(item.pair.left, item.pair.right)
    violations = [
        item.pair
        for item in items
        if item.label is Label.NON_MATCHING
        and item.pair.left in uf
        and item.pair.right in uf
        and uf.connected(item.pair.left, item.pair.right)
    ]
    return violations


def consistent_assignment_from_labels(
    labels: Mapping[Pair, Label],
) -> List[LabeledPair]:
    """Convert a pair->label mapping to a list of LabeledPair values."""
    return [LabeledPair(pair, label) for pair, label in labels.items()]


def closure(labeled: Iterable[LabeledPair], universe: Iterable[Pair]) -> Dict[Pair, Label]:
    """Transitive closure of ``labeled`` restricted to ``universe``.

    For every pair in ``universe`` whose label is implied by ``labeled``
    (Lemma 1), the implied label is returned; unimplied pairs are omitted.

    Raises:
        repro.core.cluster_graph.InconsistentLabelError: if ``labeled`` is
            itself inconsistent.
    """
    from .cluster_graph import ClusterGraph  # local import to avoid a cycle

    graph = ClusterGraph(labeled)
    implied: Dict[Pair, Label] = {}
    for pair in universe:
        label = graph.deduce(pair)
        if label is not None:
            implied[pair] = label
    return implied


def entity_partition(labeled: Iterable[LabeledPair]) -> Tuple[List[set], List[Pair]]:
    """Partition objects into entities implied by the matching edges.

    Returns:
        (clusters, violations): the connected components of the matching
        subgraph, and any non-matching edges internal to a component (empty
        for consistent labelings).
    """
    items = list(labeled)
    uf = UnionFind()
    for item in items:
        uf.add(item.pair.left)
        uf.add(item.pair.right)
        if item.label is Label.MATCHING:
            uf.union(item.pair.left, item.pair.right)
    violations = [
        item.pair
        for item in items
        if item.label is Label.NON_MATCHING and uf.connected(item.pair.left, item.pair.right)
    ]
    return uf.components(), violations
