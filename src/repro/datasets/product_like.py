"""The synthetic "Product" dataset: an Abt-Buy stand-in.

Abt-Buy joins 1081 products from abt.com against 1092 from buy.com; each
record has a name and a price, clusters are tiny (Figure 10(b): mostly 1-2,
never above 6).  We reproduce that structure bipartitely: every entity places
at most a few records per store, listings differ by formatting, token order,
and spec noise.

Products are generated in brand *series* ("sony bravia 32 inch television",
"sony bravia 40 inch television", ...) so that different entities within a
series are highly similar — the source of the non-matching candidate pairs
that dominate this dataset, and the reason its transitive savings are small
but non-zero (deduced non-matches between series siblings).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from . import vocab
from .corruption import Corruptor
from .distributions import ClusterSizeSpec, product_spec
from .schema import Dataset, Record

SOURCES = ("abt", "buy")
FIELD_NAMES = ("name", "price")


def _canonical_product(
    rng: random.Random, series: Tuple[str, str, str], model_index: int
) -> Dict[str, str]:
    """One product of a series: shared brand/series/noun, distinct model."""
    brand, series_name, noun = series
    model_number = f"{series_name[:2].upper()}{rng.randint(10, 99)}{model_index:02d}"
    size = rng.choice((19, 22, 26, 32, 37, 40, 42, 46, 52))
    adjective = rng.choice(vocab.PRODUCT_ADJECTIVES)
    name = f"{brand} {series_name} {model_number} {size} inch {adjective} {noun}"
    price = round(rng.uniform(40, 1800), 2)
    return {"name": name, "price": f"{price:.2f}"}


def _store_variant(
    canonical: Dict[str, str], rng: random.Random, corruptor: Corruptor
) -> Dict[str, str]:
    """How a different store lists the same product."""
    fields = dict(canonical)
    # Stores disagree on price by a few percent and reformat names.
    price = float(fields["price"])
    fields["price"] = f"{price * rng.uniform(0.93, 1.07):.2f}"
    corrupted = corruptor.corrupt_fields(fields, skip=("price",))
    return corrupted


def generate_product_dataset(
    spec: Optional[ClusterSizeSpec] = None,
    seed: int = 0,
    corruptor_factory=None,
    n_series: int = 110,
) -> Dataset:
    """Generate the Abt-Buy-like bipartite Product dataset.

    Args:
        spec: cluster-size histogram (default: the full 2173-record
            Figure 10(b) shape; pass ``product_spec(scale)`` to shrink).
        seed: master RNG seed.
        corruptor_factory: callable ``seed -> Corruptor`` controlling how
            much two stores' listings of the same product diverge.
        n_series: number of brand series; fewer series packs more distinct
            entities into the same series, raising cross-entity similarity.

    Returns:
        A bipartite :class:`Dataset` (sources "abt" and "buy") whose
        cluster-size histogram equals ``spec`` exactly.
    """
    spec = spec if spec is not None else product_spec()
    if corruptor_factory is None:
        corruptor_factory = lambda s: Corruptor(  # noqa: E731
            word_ops_rate=0.08, drop_rate=0.12, swap_rate=0.25, seed=s
        )
    rng = random.Random(seed)
    series_pool: List[Tuple[str, str, str]] = []
    for _ in range(n_series):
        series_pool.append(
            (
                rng.choice(vocab.BRANDS),
                rng.choice(vocab.PRODUCT_SERIES),
                rng.choice(vocab.PRODUCT_NOUNS),
            )
        )

    records: List[Record] = []
    entity_of: Dict[str, str] = {}
    counters = {source: 0 for source in SOURCES}

    def add_record(source: str, fields: Dict[str, str], entity_id: str) -> None:
        record_id = f"{source}-{counters[source]:04d}"
        counters[source] += 1
        records.append(Record(record_id=record_id, fields=fields, source=source))
        entity_of[record_id] = entity_id

    entity_index = 0
    series_model_counts: Dict[int, int] = {}
    for cluster_size in spec.sizes():
        entity_id = f"product-entity-{entity_index}"
        series_index = entity_index % len(series_pool)
        model_index = series_model_counts.get(series_index, 0)
        series_model_counts[series_index] = model_index + 1
        canonical = _canonical_product(rng, series_pool[series_index], model_index)
        # Distribute the cluster across the two stores as evenly as possible
        # (a k-cluster means the same product listed k times across stores);
        # alternate the starting store per entity so singletons split evenly.
        for duplicate_index in range(cluster_size):
            source = SOURCES[(duplicate_index + entity_index) % 2]
            if duplicate_index == 0:
                fields = dict(canonical)
            else:
                duplicate_seed = seed * 999_983 + entity_index * 1013 + duplicate_index
                corruptor = corruptor_factory(duplicate_seed)
                fields = _store_variant(canonical, rng, corruptor)
            add_record(source, fields, entity_id)
        entity_index += 1

    dataset = Dataset(name="product", records=records, entity_of=entity_of)
    return dataset
