"""Record and dataset model for the synthetic entity-resolution corpora.

A :class:`Dataset` bundles records with the ground-truth entity assignment —
the thing the paper's datasets (Cora "Paper" and Abt-Buy "Product") provide
via their match annotations.  For bipartite (two-table) datasets each record
carries a source name and only cross-source pairs are join candidates.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterator, List, Mapping, Optional, Sequence, Set

from ..core.oracle import GroundTruthOracle
from ..core.pairs import Pair


@dataclass(frozen=True)
class Record:
    """One record: an id, a field map, and an optional source table name."""

    record_id: str
    fields: Mapping[str, str]
    source: Optional[str] = None

    def text(self, field_names: Optional[Sequence[str]] = None) -> str:
        """The record's matching text: selected fields joined by spaces."""
        names = field_names if field_names is not None else sorted(self.fields)
        return " ".join(str(self.fields[n]) for n in names if self.fields.get(n))

    def __getitem__(self, name: str) -> str:
        return self.fields[name]


@dataclass
class Dataset:
    """Records plus ground truth.

    Attributes:
        name: human-readable dataset name.
        records: all records (both tables for bipartite datasets).
        entity_of: record id -> ground-truth entity id.
    """

    name: str
    records: List[Record]
    entity_of: Dict[str, Hashable]

    def __post_init__(self) -> None:
        ids = [r.record_id for r in self.records]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate record ids in dataset")
        missing = [rid for rid in ids if rid not in self.entity_of]
        if missing:
            raise ValueError(f"records without ground truth: {missing[:5]}")
        self._by_id: Dict[str, Record] = {r.record_id: r for r in self.records}

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self.records)

    def record(self, record_id: str) -> Record:
        """Look up a record by id (raises KeyError if absent)."""
        return self._by_id[record_id]

    def ids(self) -> List[str]:
        """All record ids, in record order."""
        return [r.record_id for r in self.records]

    def texts(self, field_names: Optional[Sequence[str]] = None) -> Dict[str, str]:
        """record id -> matching text."""
        return {r.record_id: r.text(field_names) for r in self.records}

    @property
    def is_bipartite(self) -> bool:
        """True when records carry at least two distinct source names."""
        return len(self.sources()) >= 2

    def sources(self) -> List[str]:
        """Distinct source names, sorted (empty for single-table data)."""
        return sorted({r.source for r in self.records if r.source is not None})

    def source_of(self) -> Dict[str, str]:
        """record id -> source name (only records that have one)."""
        return {r.record_id: r.source for r in self.records if r.source is not None}

    # ------------------------------------------------------------------
    # ground truth
    # ------------------------------------------------------------------
    def truth_oracle(self) -> GroundTruthOracle:
        """A perfect oracle over this dataset's entity assignment."""
        return GroundTruthOracle(self.entity_of)

    def clusters(self) -> List[Set[str]]:
        """Ground-truth entity clusters as sets of record ids."""
        by_entity: Dict[Hashable, Set[str]] = {}
        for record_id, entity in self.entity_of.items():
            by_entity.setdefault(entity, set()).add(record_id)
        return list(by_entity.values())

    def cluster_size_histogram(self) -> Counter:
        """cluster size -> number of clusters (paper Figure 10's data)."""
        return Counter(len(cluster) for cluster in self.clusters())

    def matching_pairs(self) -> Set[Pair]:
        """Every true matching pair (cross-source only, for bipartite data)."""
        source = self.source_of() if self.is_bipartite else None
        pairs: Set[Pair] = set()
        for cluster in self.clusters():
            members = sorted(cluster)
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    a, b = members[i], members[j]
                    if source is not None and source.get(a) == source.get(b):
                        continue
                    pairs.add(Pair(a, b))
        return pairs

    def n_possible_pairs(self) -> int:
        """Size of the join's pair space: n*(n-1)/2 for one table, |A|*|B|
        for two tables (the paper's 496,506 and 1,180,452)."""
        if not self.is_bipartite:
            n = len(self.records)
            return n * (n - 1) // 2
        sizes = Counter(r.source for r in self.records)
        names = self.sources()
        total = 0
        for i in range(len(names)):
            for j in range(i + 1, len(names)):
                total += sizes[names[i]] * sizes[names[j]]
        return total

    def summary(self) -> dict:
        """Headline statistics for reports."""
        histogram = self.cluster_size_histogram()
        return {
            "name": self.name,
            "n_records": len(self.records),
            "n_entities": len(self.clusters()),
            "n_possible_pairs": self.n_possible_pairs(),
            "n_matching_pairs": len(self.matching_pairs()),
            "max_cluster_size": max(histogram) if histogram else 0,
            "sources": self.sources(),
        }
