"""Vocabulary pools for the synthetic dataset generators.

Deterministic word lists: bibliographic vocabulary for the Cora-like Paper
dataset and commerce vocabulary for the Abt-Buy-like Product dataset.  The
lists are intentionally sized so that records from *different* entities can
still share rare tokens — that is what creates the cross-cluster candidate
pairs above the likelihood thresholds.
"""

from __future__ import annotations

SURNAMES = [
    "smith", "johnson", "lee", "chen", "wang", "garcia", "kumar", "patel",
    "mueller", "rossi", "tanaka", "kim", "nguyen", "brown", "davis", "miller",
    "wilson", "moore", "taylor", "anderson", "thomas", "jackson", "white",
    "harris", "martin", "thompson", "martinez", "robinson", "clark",
    "rodriguez", "lewis", "walker", "hall", "allen", "young", "hernandez",
    "king", "wright", "lopez", "hill", "scott", "green", "adams", "baker",
    "gonzalez", "nelson", "carter", "mitchell", "perez", "roberts", "turner",
    "phillips", "campbell", "parker", "evans", "edwards", "collins",
    "stewart", "sanchez", "morris", "rogers", "reed", "cook", "morgan",
]

FIRST_INITIALS = list("abcdefghijklmnoprstw")

TITLE_WORDS = [
    "learning", "adaptive", "efficient", "parallel", "distributed",
    "probabilistic", "scalable", "incremental", "optimal", "approximate",
    "robust", "dynamic", "hierarchical", "bayesian", "neural", "genetic",
    "fuzzy", "hybrid", "online", "structured", "query", "database",
    "networks", "inference", "classification", "clustering", "retrieval",
    "optimization", "reasoning", "recognition", "estimation", "indexing",
    "integration", "resolution", "matching", "mining", "analysis",
    "evaluation", "processing", "systems", "models", "methods", "algorithms",
    "framework", "architecture", "semantics", "knowledge", "information",
    "decision", "planning", "search", "selection", "induction", "prediction",
    "abstraction", "propagation", "sampling", "caching", "scheduling",
    "replication", "consistency", "concurrency", "transactions", "streams",
    "graphs", "trees", "tables", "joins", "views", "constraints", "entities",
    "records", "duplicates", "crowdsourcing", "wrappers", "agents",
    "features", "kernels", "margins", "ensembles", "boosting", "regression",
]

VENUES = [
    "sigmod", "vldb", "icde", "kdd", "icml", "nips", "aaai", "ijcai",
    "uai", "colt", "www", "cikm", "icdt", "pods", "edbt", "sigir",
    "machine learning journal", "artificial intelligence", "tods", "tkde",
]

BRANDS = [
    "sony", "samsung", "panasonic", "toshiba", "philips", "canon", "nikon",
    "garmin", "bose", "yamaha", "pioneer", "sharp", "sanyo", "jvc", "denon",
    "onkyo", "logitech", "netgear", "linksys", "dlink", "frigidaire",
    "whirlpool", "delonghi", "cuisinart", "kitchenaid", "hoover", "dyson",
    "braun", "norelco", "sennheiser", "audiovox", "haier", "zenith",
    "olympus", "kodak", "casio", "seiko", "motorola", "nokia", "apple",
]

PRODUCT_NOUNS = [
    "television", "camcorder", "camera", "receiver", "speaker", "headphones",
    "refrigerator", "microwave", "dishwasher", "blender", "toaster",
    "vacuum", "router", "monitor", "keyboard", "printer", "scanner",
    "projector", "subwoofer", "soundbar", "turntable", "amplifier",
    "dehumidifier", "heater", "fan", "grill", "mixer", "kettle", "dvd player",
    "home theater", "gps navigator", "radio", "telephone", "washer", "dryer",
]

PRODUCT_ADJECTIVES = [
    "black", "white", "silver", "stainless", "portable", "wireless",
    "digital", "compact", "professional", "premium", "slim", "widescreen",
    "high definition", "energy efficient", "rechargeable", "bluetooth",
]

PRODUCT_SERIES = [
    "bravia", "viera", "aquos", "regza", "cybershot", "powershot", "coolpix",
    "lumix", "handycam", "walkman", "diamond", "elite", "signature",
    "classic", "pro", "ultra", "mega", "prime", "advantage", "select",
]
