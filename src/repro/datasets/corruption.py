"""Corruption operators: how duplicate records diverge from their canonical
form.

Real duplicate bibliography entries differ by citation style, abbreviations,
typos, and truncation; product listings differ by token order, spec noise,
and formatting.  The :class:`Corruptor` applies a configurable mix of these
operators with an *intensity* knob, which is what controls how much of the
within-cluster pair mass stays above a given likelihood threshold.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


def typo(word: str, rng: random.Random) -> str:
    """One random character edit: swap, delete, insert, or substitute."""
    if len(word) < 2:
        return word + rng.choice(_ALPHABET)
    op = rng.randrange(4)
    i = rng.randrange(len(word) - 1)
    if op == 0:  # swap adjacent
        return word[:i] + word[i + 1] + word[i] + word[i + 2 :]
    if op == 1:  # delete
        return word[:i] + word[i + 1 :]
    if op == 2:  # insert
        return word[:i] + rng.choice(_ALPHABET) + word[i:]
    return word[:i] + rng.choice(_ALPHABET) + word[i + 1 :]  # substitute


def abbreviate(word: str, rng: random.Random) -> str:
    """Abbreviate to an initial ("proceedings" -> "proc")."""
    if len(word) <= 4:
        return word
    cut = rng.choice((1, 3, 4))
    return word[:cut]


def drop_token(tokens: List[str], rng: random.Random) -> List[str]:
    """Remove one random token (keeps at least one)."""
    if len(tokens) <= 1:
        return tokens
    index = rng.randrange(len(tokens))
    return tokens[:index] + tokens[index + 1 :]


def swap_tokens(tokens: List[str], rng: random.Random) -> List[str]:
    """Swap two adjacent tokens (author-order / word-order changes)."""
    if len(tokens) < 2:
        return tokens
    index = rng.randrange(len(tokens) - 1)
    swapped = list(tokens)
    swapped[index], swapped[index + 1] = swapped[index + 1], swapped[index]
    return swapped


def perturb_number(word: str, rng: random.Random) -> str:
    """Nudge a numeric token by one (page/yr off-by-ones in citations)."""
    if not word.isdigit():
        return word
    value = int(word)
    return str(max(value + rng.choice((-1, 1)), 0))


@dataclass
class Corruptor:
    """Applies a randomized mix of corruption operators to field text.

    Args:
        word_ops_rate: probability that any given token receives a word-level
            operator (typo / abbreviation / number nudge).
        drop_rate: probability of dropping one token from a field.
        swap_rate: probability of swapping two adjacent tokens.
        seed: RNG seed; every duplicate should use a distinct derived seed.
    """

    word_ops_rate: float = 0.12
    drop_rate: float = 0.15
    swap_rate: float = 0.2
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("word_ops_rate", "drop_rate", "swap_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        self._rng = random.Random(self.seed)

    def corrupt_text(self, text: str) -> str:
        """Corrupt one field value, preserving rough recognisability."""
        rng = self._rng
        tokens = text.split()
        if not tokens:
            return text
        if rng.random() < self.swap_rate:
            tokens = swap_tokens(tokens, rng)
        if rng.random() < self.drop_rate:
            tokens = drop_token(tokens, rng)
        corrupted: List[str] = []
        for token in tokens:
            if rng.random() < self.word_ops_rate:
                if token.isdigit():
                    corrupted.append(perturb_number(token, rng))
                elif rng.random() < 0.5:
                    corrupted.append(typo(token, rng))
                else:
                    corrupted.append(abbreviate(token, rng))
            else:
                corrupted.append(token)
        return " ".join(corrupted)

    def corrupt_fields(self, fields: Dict[str, str], skip: Sequence[str] = ()) -> Dict[str, str]:
        """Corrupt every field value except the ones in ``skip``."""
        return {
            name: value if name in skip else self.corrupt_text(value)
            for name, value in fields.items()
        }


def light_corruptor(seed: int) -> Corruptor:
    """Mild divergence: duplicates stay highly similar (likelihood ~0.6+)."""
    return Corruptor(word_ops_rate=0.06, drop_rate=0.08, swap_rate=0.12, seed=seed)


def heavy_corruptor(seed: int) -> Corruptor:
    """Strong divergence: duplicates drift toward the threshold boundary."""
    return Corruptor(word_ops_rate=0.25, drop_rate=0.3, swap_rate=0.35, seed=seed)
