"""Synthetic evaluation datasets: Cora-like "Paper" and Abt-Buy-like
"Product" corpora with cluster-size histograms matching paper Figure 10."""

from .corruption import Corruptor, heavy_corruptor, light_corruptor
from .distributions import (
    ClusterSizeSpec,
    histogram_of,
    paper_spec,
    product_spec,
)
from .io import load_dataset, save_dataset
from .paper_like import generate_paper_dataset
from .product_like import generate_product_dataset
from .schema import Dataset, Record

__all__ = [
    "ClusterSizeSpec",
    "Corruptor",
    "Dataset",
    "Record",
    "generate_paper_dataset",
    "generate_product_dataset",
    "heavy_corruptor",
    "histogram_of",
    "light_corruptor",
    "load_dataset",
    "paper_spec",
    "product_spec",
    "save_dataset",
]
