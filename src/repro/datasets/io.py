"""CSV persistence for datasets.

Round-trips a :class:`~repro.datasets.schema.Dataset` through two CSV files:
``<name>.records.csv`` (record id, source, fields...) and
``<name>.truth.csv`` (record id, entity id).  Lets users export the synthetic
corpora and import their own.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .schema import Dataset, Record

_RESERVED = ("record_id", "source", "entity_id")


def save_dataset(dataset: Dataset, directory: "str | Path") -> tuple[Path, Path]:
    """Write the dataset's records and ground truth as CSV.

    Returns:
        (records_path, truth_path).

    Raises:
        ValueError: if a record field collides with a reserved column name.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    field_names: List[str] = sorted(
        {name for record in dataset.records for name in record.fields}
    )
    for name in field_names:
        if name in _RESERVED:
            raise ValueError(f"field name {name!r} collides with a reserved column")
    records_path = directory / f"{dataset.name}.records.csv"
    truth_path = directory / f"{dataset.name}.truth.csv"

    with records_path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["record_id", "source", *field_names])
        for record in dataset.records:
            writer.writerow(
                [record.record_id, record.source or ""]
                + [record.fields.get(name, "") for name in field_names]
            )

    with truth_path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["record_id", "entity_id"])
        for record in dataset.records:
            writer.writerow([record.record_id, dataset.entity_of[record.record_id]])

    return records_path, truth_path


def load_dataset(
    name: str, directory: "str | Path", field_names: Optional[Sequence[str]] = None
) -> Dataset:
    """Read a dataset previously written by :func:`save_dataset`.

    Args:
        name: dataset name (file prefix).
        directory: where the CSVs live.
        field_names: restrict to a subset of field columns (default: all).

    Raises:
        FileNotFoundError: when either CSV is missing.
    """
    directory = Path(directory)
    records_path = directory / f"{name}.records.csv"
    truth_path = directory / f"{name}.truth.csv"

    entity_of: Dict[str, str] = {}
    with truth_path.open(newline="") as handle:
        for row in csv.DictReader(handle):
            entity_of[row["record_id"]] = row["entity_id"]

    records: List[Record] = []
    with records_path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        columns = [
            column
            for column in (reader.fieldnames or [])
            if column not in ("record_id", "source")
        ]
        if field_names is not None:
            columns = [column for column in columns if column in field_names]
        for row in reader:
            records.append(
                Record(
                    record_id=row["record_id"],
                    fields={column: row[column] for column in columns},
                    source=row["source"] or None,
                )
            )

    return Dataset(name=name, records=records, entity_of=entity_of)
