"""Cluster-size distributions matching the paper's Figure 10.

Figure 10 is the load-bearing difference between the two evaluation datasets:

* **Paper (Cora)** — 997 records with *large* clusters (the biggest has 102
  matching records), so transitivity collapses thousands of within-cluster
  pairs into cluster-size-minus-one crowdsourced pairs (~95 % savings).
* **Product (Abt-Buy)** — 1081 + 1092 records in *tiny* clusters (size <= 6,
  overwhelmingly 1-2), so savings are modest (~10-25 %).

A :class:`ClusterSizeSpec` is an explicit ``size -> count`` histogram; the
generators consume it verbatim, which makes the distributions testable and
the Figure 10 reproduction exact by construction.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Tuple


@dataclass(frozen=True)
class ClusterSizeSpec:
    """An explicit cluster-size histogram.

    Attributes:
        counts: cluster size -> number of clusters of that size.
    """

    counts: Tuple[Tuple[int, int], ...]

    def __post_init__(self) -> None:
        for size, count in self.counts:
            if size < 1:
                raise ValueError(f"cluster size must be >= 1, got {size}")
            if count < 0:
                raise ValueError(f"cluster count must be >= 0, got {count}")
        sizes = [size for size, _ in self.counts]
        if len(set(sizes)) != len(sizes):
            raise ValueError("duplicate cluster sizes in spec")

    @staticmethod
    def from_mapping(counts: Mapping[int, int]) -> "ClusterSizeSpec":
        return ClusterSizeSpec(tuple(sorted(counts.items())))

    def as_mapping(self) -> Dict[int, int]:
        return dict(self.counts)

    @property
    def n_records(self) -> int:
        """Total records implied by the histogram."""
        return sum(size * count for size, count in self.counts)

    @property
    def n_clusters(self) -> int:
        return sum(count for _, count in self.counts)

    @property
    def max_size(self) -> int:
        return max((size for size, count in self.counts if count), default=0)

    def n_matching_pairs(self) -> int:
        """Sum of C(size, 2) — the within-cluster pair mass transitivity can
        exploit."""
        return sum(count * size * (size - 1) // 2 for size, count in self.counts)

    def sizes(self) -> Iterator[int]:
        """Yield each cluster's size, largest first (deterministic)."""
        for size, count in sorted(self.counts, reverse=True):
            for _ in range(count):
                yield size

    def with_singletons_adjusted(self, target_records: int) -> "ClusterSizeSpec":
        """Pad or trim the singleton count so totals hit ``target_records``.

        Raises:
            ValueError: if non-singleton clusters already exceed the target.
        """
        counts = self.as_mapping()
        non_singleton = sum(s * c for s, c in counts.items() if s > 1)
        if non_singleton > target_records:
            raise ValueError(
                f"non-singleton clusters already cover {non_singleton} records, "
                f"more than the target {target_records}"
            )
        counts[1] = target_records - non_singleton
        if counts[1] == 0:
            del counts[1]
        return ClusterSizeSpec.from_mapping(counts)


def paper_spec(scale: float = 1.0) -> ClusterSizeSpec:
    """The Cora-like histogram: 997 records, heavy tail up to size 102.

    Figure 10(a) shows a roughly power-law histogram with a ~102-record
    cluster at the extreme.  ``scale`` shrinks the dataset (for fast tests
    and benchmarks) while preserving the shape: sizes keep their spread,
    counts shrink proportionally.
    """
    base: Dict[int, int] = {
        102: 1,
        78: 1,
        62: 1,
        54: 1,
        45: 1,
        38: 1,
        32: 1,
        27: 1,
        22: 2,
        18: 2,
        15: 2,
        12: 3,
        10: 4,
        8: 5,
        6: 7,
        5: 9,
        4: 12,
        3: 16,
        2: 20,
        1: 110,
    }
    if scale >= 0.999:
        spec = ClusterSizeSpec.from_mapping(base)
        return spec.with_singletons_adjusted(997)
    scaled: Dict[int, int] = {}
    for size, count in base.items():
        kept = max(round(count * scale), 1 if size >= 30 else 0)
        if kept:
            scaled[size] = kept
    # keep at least one mid-size and some small clusters at any scale
    scaled.setdefault(10, 1)
    scaled.setdefault(3, 2)
    scaled.setdefault(2, max(round(40 * scale), 2))
    target = max(int(997 * scale), sum(s * c for s, c in scaled.items() if s > 1) + 10)
    return ClusterSizeSpec.from_mapping(scaled).with_singletons_adjusted(target)


def product_spec(scale: float = 1.0) -> ClusterSizeSpec:
    """The Abt-Buy-like histogram: 2173 records, clusters of size <= 6.

    Figure 10(b): around a thousand 2-clusters (one record per store), a
    handful of 3-6 clusters, the rest singletons.
    """
    base: Dict[int, int] = {
        6: 1,
        5: 1,
        4: 3,
        3: 12,
        2: 960,
        1: 200,
    }
    if scale >= 0.999:
        spec = ClusterSizeSpec.from_mapping(base)
        return spec.with_singletons_adjusted(1081 + 1092)
    scaled: Dict[int, int] = {}
    for size, count in base.items():
        kept = round(count * scale)
        if size <= 2:
            kept = max(kept, 2)
        if kept:
            scaled[size] = kept
    scaled.setdefault(3, 1)
    target = max(
        int((1081 + 1092) * scale),
        sum(s * c for s, c in scaled.items() if s > 1) + 4,
    )
    return ClusterSizeSpec.from_mapping(scaled).with_singletons_adjusted(target)


def histogram_of(cluster_sizes: Counter) -> List[Tuple[int, int]]:
    """(size, count) rows sorted by size — the Figure 10 plotting series."""
    return sorted(cluster_sizes.items())
