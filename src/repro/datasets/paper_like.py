"""The synthetic "Paper" dataset: a Cora stand-in.

The paper's Paper dataset (Cora) has 997 bibliographic records over research
publications, with large duplicate clusters (up to 102 records citing the
same publication in different styles).  We reproduce its *structure* — the
Figure 10(a) cluster-size histogram — and its *texture*: duplicates are the
same publication rendered with different citation styles, abbreviations,
token drops, and typos.

Entities are generated in topic families that share title vocabulary, so
records of *different* entities can also be similar — that is what produces
the non-matching candidate pairs the crowd has to reject.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from . import vocab
from .corruption import Corruptor
from .distributions import ClusterSizeSpec, paper_spec
from .schema import Dataset, Record

FIELD_NAMES = ("authors", "title", "venue", "date", "pages")


def _make_author(rng: random.Random) -> tuple[str, str]:
    """(surname, first initial) of one author."""
    return rng.choice(vocab.SURNAMES), rng.choice(vocab.FIRST_INITIALS)


def _canonical_publication(rng: random.Random, family_words: List[str]) -> Dict[str, str]:
    """The canonical (uncorrupted) field values of one publication."""
    n_authors = rng.choice((1, 1, 2, 2, 2, 3, 3, 4))
    authors = [_make_author(rng) for _ in range(n_authors)]
    author_text = " and ".join(f"{initial} {surname}" for surname, initial in authors)
    n_title = rng.randint(4, 8)
    # Titles mix family-shared words (topic) with global vocabulary.
    title_words = [
        rng.choice(family_words) if rng.random() < 0.55 else rng.choice(vocab.TITLE_WORDS)
        for _ in range(n_title)
    ]
    title = " ".join(title_words)
    venue = rng.choice(vocab.VENUES)
    year = str(rng.randint(1988, 2012))
    first_page = rng.randint(1, 600)
    pages = f"{first_page} {first_page + rng.randint(5, 18)}"
    return {
        "authors": author_text,
        "title": title,
        "venue": venue,
        "date": year,
        "pages": pages,
    }


def _sibling_publication(
    rng: random.Random, previous: Dict[str, str], family_words: List[str]
) -> Dict[str, str]:
    """A *different* publication closely related to ``previous``.

    Real bibliographies are full of these: the same authors publishing a
    series of related papers whose titles overlap heavily.  Sibling entities
    are what put non-matching pairs *above* the likelihood thresholds — the
    pairs the crowd is actually needed for, and the source of the multi-round
    cascades in the parallel labeler (paper Figures 13-15).
    """
    fields = dict(previous)
    title_words = fields["title"].split()
    mutated = [
        word
        if rng.random() < 0.75
        else (rng.choice(family_words) if rng.random() < 0.5 else rng.choice(vocab.TITLE_WORDS))
        for word in title_words
    ]
    if rng.random() < 0.3:
        mutated.append(rng.choice(vocab.TITLE_WORDS))
    fields["title"] = " ".join(mutated)
    if rng.random() < 0.3:
        fields["venue"] = rng.choice(vocab.VENUES)
    fields["date"] = str(int(previous["date"]) + rng.choice((-2, -1, 1, 2)))
    first_page = rng.randint(1, 600)
    fields["pages"] = f"{first_page} {first_page + rng.randint(5, 18)}"
    return fields


def _styled_duplicate(
    canonical: Dict[str, str], rng: random.Random, corruptor: Corruptor
) -> Dict[str, str]:
    """One citation-style variant of a canonical publication."""
    fields = dict(canonical)
    # Style choices before noise: drop pages, abbreviate venue, reorder
    # author list, initial-only authors.
    if rng.random() < 0.35:
        fields["pages"] = ""
    if rng.random() < 0.4:
        fields["venue"] = fields["venue"][:5]
    if rng.random() < 0.3:
        authors = fields["authors"].split(" and ")
        rng.shuffle(authors)
        fields["authors"] = " and ".join(authors)
    corrupted = corruptor.corrupt_fields(fields, skip=("date",))
    return corrupted


def generate_paper_dataset(
    spec: Optional[ClusterSizeSpec] = None,
    seed: int = 0,
    corruptor_factory=None,
    n_topic_families: int = 24,
    sibling_probability: float = 0.65,
) -> Dataset:
    """Generate the Cora-like Paper dataset.

    Args:
        spec: cluster-size histogram (default: the full 997-record
            Figure 10(a) shape; pass ``paper_spec(scale)`` to shrink).
        seed: master RNG seed — the same seed always yields the same bytes.
        corruptor_factory: callable ``seed -> Corruptor`` for duplicate
            divergence (default: the standard mix).
        n_topic_families: how many shared-vocabulary topic groups entities
            are drawn from; fewer families means more cross-entity
            similarity, hence more non-matching candidates.
        sibling_probability: chance that a new entity is a closely related
            paper by the same authors as the family's previous entity.
            Siblings create the high-likelihood *non-matching* pairs that
            drive the paper's multi-round parallel behaviour.

    Returns:
        A single-table :class:`Dataset` whose cluster-size histogram equals
        ``spec`` exactly.
    """
    spec = spec if spec is not None else paper_spec()
    if corruptor_factory is None:
        corruptor_factory = lambda s: Corruptor(seed=s)  # noqa: E731
    rng = random.Random(seed)
    families: List[List[str]] = []
    for _ in range(n_topic_families):
        family_size = rng.randint(6, 10)
        families.append([rng.choice(vocab.TITLE_WORDS) for _ in range(family_size)])

    records: List[Record] = []
    entity_of: Dict[str, str] = {}
    previous_in_family: Dict[int, Dict[str, str]] = {}
    entity_index = 0
    for cluster_size in spec.sizes():
        entity_id = f"paper-entity-{entity_index}"
        family_index = entity_index % len(families)
        family = families[family_index]
        previous = previous_in_family.get(family_index)
        if previous is not None and rng.random() < sibling_probability:
            canonical = _sibling_publication(rng, previous, family)
        else:
            canonical = _canonical_publication(rng, family)
        previous_in_family[family_index] = canonical
        for duplicate_index in range(cluster_size):
            record_id = f"P{len(records):04d}"
            if duplicate_index == 0:
                fields = dict(canonical)
            else:
                duplicate_seed = seed * 1_000_003 + entity_index * 1009 + duplicate_index
                corruptor = corruptor_factory(duplicate_seed)
                fields = _styled_duplicate(canonical, rng, corruptor)
            records.append(Record(record_id=record_id, fields=fields))
            entity_of[record_id] = entity_id
        entity_index += 1

    dataset = Dataset(name="paper", records=records, entity_of=entity_of)
    return dataset
