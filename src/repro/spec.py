"""CampaignSpec: the one way to describe a labeling campaign.

Before this module, every entry point re-plumbed the same ~8 keyword
arguments (``policy``, ``backend``, ``shard_threshold``,
``parallel_threshold``, ``n_workers``, ``mp_start_method``, ``budget``,
``timeout``, ``review``, ``max_rounds``) through every dispatch strategy,
and a campaign could not be described *as data* — which a long-running
service, an HTTP create endpoint, and a durable journal header all need.

:class:`CampaignSpec` is a frozen dataclass capturing everything a campaign
is, independent of *which* crowd answers it:

* the labeling order (pairs with machine likelihoods);
* the dispatch semantics (:class:`~repro.engine.async_dispatch.RuntimeMode`);
* the engine configuration (conflict policy, backend, thresholds, workers);
* the runtime policies (budget, timeout, review, round cap);
* the platform shape (:class:`PlatformConfig`: client kind, HIT batch size,
  replication, free-form options the client factory interprets).

Specs round-trip to/from JSON (:meth:`CampaignSpec.to_json` /
:meth:`CampaignSpec.from_json`), so the service's HTTP create endpoint and
the journal header written by :class:`repro.service.journal.Journal` share
one schema.  Every public entry point accepts a spec:
``LabelingEngine`` via :meth:`CampaignSpec.build_engine`,
:class:`~repro.engine.async_dispatch.CrowdRuntime` and
:class:`~repro.engine.async_dispatch.AsyncDispatch` via their ``spec=``
argument, the synchronous dispatch strategies and
:func:`repro.crowd.campaign.run_transitive` likewise, and
:class:`repro.service.CampaignService` hosts one campaign per spec.

JSON-serializability constrains the pair objects: the order's objects must
be JSON scalars (``str``/``int``/``float``/``bool``) so they survive the
round trip with identity intact.  That is not a loss of generality — real
workloads key records by id — and :func:`encode_object` fails loudly on
anything else.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple, Union

from .core.cluster_graph import ConflictPolicy
from .core.pairs import CandidatePair, Label, Pair
from .crowd.aggregation import WeightedAggregation, WorkerAccuracyTracker
from .crowd.budget import BudgetPolicy, CostModel
from .crowd.hit import DEFAULT_ASSIGNMENTS, DEFAULT_BATCH_SIZE
from .crowd.latency import TimeoutPolicy
from .crowd.review import ApproveAll, EscalateOnLowConfidence, ReviewPolicy

#: Current wire-format version of the spec schema (also the journal header's).
#: Version 2 added ``ordering``, ``aggregation``, and the
#: ``escalate-low-confidence`` review kind; version 3 added the
#: ``backend="distributed"`` knobs ``workers`` and ``spawn_local_workers``.
#: Older documents decode with the newer fields' defaults (static ordering,
#: flat majority aggregation, no distributed workers).
SPEC_SCHEMA_VERSION = 3

#: Spec schema versions :meth:`CampaignSpec.from_dict` accepts.
_READABLE_SPEC_VERSIONS = (1, 2, 3)

_SCALARS = (str, int, float, bool)


class SpecError(ValueError):
    """A CampaignSpec could not be built, serialized, or deserialized."""


def encode_object(obj: Hashable) -> Any:
    """Encode one pair-member object for JSON.

    Only JSON scalars round-trip with identity (and hashability) intact;
    anything else would come back as a different object and silently break
    pair equality, so it is rejected here instead.
    """
    if isinstance(obj, bool) or obj is None:
        # bool before int: True is an int but must round-trip as a bool.
        return obj
    if isinstance(obj, _SCALARS):
        return obj
    raise SpecError(
        f"pair object {obj!r} ({type(obj).__name__}) is not JSON-serializable; "
        "campaign specs and journals require str/int/float/bool object ids"
    )


def encode_pair(pair: Pair) -> List[Any]:
    """``Pair`` -> ``[left, right]`` (canonical order preserved)."""
    return [encode_object(pair.left), encode_object(pair.right)]


def decode_pair(data: Sequence[Any]) -> Pair:
    """``[left, right]`` -> ``Pair`` (re-canonicalised on construction)."""
    if len(data) != 2:
        raise SpecError(f"a pair must be a 2-element array, got {data!r}")
    return Pair(data[0], data[1])


def decode_canonical_pair(data: Sequence[Any]) -> Pair:
    """``[left, right]`` -> ``Pair``, trusting the serialized member order.

    For machine-written documents only — journal headers and journal
    records, which :func:`encode_pair` wrote from already-canonical pairs.
    Skipping the constructor's re-canonicalisation (two ``repr``-based sort
    keys per pair) roughly halves the cost of decoding a large labeling
    order, which recovery pays on every restart.  User-supplied documents
    (the HTTP create body) must keep going through :func:`decode_pair`: a
    hand-written ``[b, a]`` would otherwise compare unequal to the same
    pair spelled ``[a, b]`` everywhere else in the system.
    """
    if len(data) != 2 or data[0] == data[1]:
        raise SpecError(f"a pair must be two distinct objects, got {data!r}")
    pair = object.__new__(Pair)
    object.__setattr__(pair, "left", data[0])
    object.__setattr__(pair, "right", data[1])
    return pair


def encode_label(label: Label) -> str:
    return label.value


def decode_label(value: str) -> Label:
    return Label(value)


@dataclass(frozen=True)
class PlatformConfig:
    """The platform shape of a campaign: which client kind, at what HIT
    granularity, with what free-form options.

    Attributes:
        kind: registry key the service's client factories interpret
            (``"simulated"`` is the offline default; a deployment registers
            e.g. ``"mturk"`` or ``"in-memory"`` factories with
            :class:`repro.service.CampaignService`).
        batch_size: pairs per HIT.
        n_assignments: replication factor per HIT.
        options: free-form JSON-serializable options for the client factory
            (seeds, poll intervals, credentials *references* — never
            secrets themselves).
    """

    kind: str = "simulated"
    batch_size: int = DEFAULT_BATCH_SIZE
    n_assignments: int = DEFAULT_ASSIGNMENTS
    options: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise SpecError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.n_assignments < 1:
            raise SpecError(
                f"n_assignments must be >= 1, got {self.n_assignments}"
            )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "batch_size": self.batch_size,
            "n_assignments": self.n_assignments,
            "options": dict(self.options),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlatformConfig":
        return cls(
            kind=data.get("kind", "simulated"),
            batch_size=int(data.get("batch_size", DEFAULT_BATCH_SIZE)),
            n_assignments=int(data.get("n_assignments", DEFAULT_ASSIGNMENTS)),
            options=dict(data.get("options", {})),
        )


@dataclass(frozen=True)
class JournalConfig:
    """Per-campaign journal durability and compaction knobs.

    Attributes:
        fsync_every: appends between journal fsyncs (``None`` = the
            service's default; ``1`` = maximally durable).
        compact_every: automatically snapshot + compact the journal once
            this many records have accumulated past the last snapshot
            (``None`` = compact only on explicit request or pause).
    """

    fsync_every: Optional[int] = None
    compact_every: Optional[int] = None

    def __post_init__(self) -> None:
        if self.fsync_every is not None and self.fsync_every < 1:
            raise SpecError(
                f"fsync_every must be >= 1, got {self.fsync_every}"
            )
        if self.compact_every is not None and self.compact_every < 1:
            raise SpecError(
                f"compact_every must be >= 1, got {self.compact_every}"
            )

    def to_dict(self) -> dict:
        return {
            "fsync_every": self.fsync_every,
            "compact_every": self.compact_every,
        }

    @classmethod
    def from_dict(cls, data: Optional[Mapping[str, Any]]) -> "JournalConfig":
        data = data or {}
        fsync_every = data.get("fsync_every")
        compact_every = data.get("compact_every")
        return cls(
            fsync_every=None if fsync_every is None else int(fsync_every),
            compact_every=None if compact_every is None else int(compact_every),
        )


@dataclass(frozen=True)
class AggregationConfig:
    """How a campaign turns replicated assignments into labels.

    Attributes:
        kind: ``"majority"`` (the paper's flat majority vote, applied by
            the platform/client layer — the runtime adds nothing) or
            ``"weighted"`` (quality-aware weighted majority: the runtime
            re-aggregates assignment-bearing completions with per-worker
            accuracy weights; see
            :class:`~repro.crowd.aggregation.WeightedAggregation`).
        prior_accuracy / prior_strength / agreement_weight: the
            :class:`~repro.crowd.aggregation.WorkerAccuracyTracker` prior
            (``"weighted"`` only).
        min_votes: per-pair quorum; pairs with fewer cast votes are
            re-issued instead of being aggregated.
    """

    kind: str = "majority"
    prior_accuracy: float = 0.7
    prior_strength: float = 8.0
    agreement_weight: float = 0.5
    min_votes: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("majority", "weighted"):
            raise SpecError(
                f"unknown aggregation kind {self.kind!r}; "
                "expected 'majority' or 'weighted'"
            )
        if not 0.0 < self.prior_accuracy < 1.0:
            raise SpecError(
                f"prior_accuracy must be in (0, 1), got {self.prior_accuracy}"
            )
        if self.prior_strength <= 0:
            raise SpecError(
                f"prior_strength must be positive, got {self.prior_strength}"
            )
        if self.agreement_weight < 0:
            raise SpecError(
                f"agreement_weight must be non-negative, got {self.agreement_weight}"
            )
        if self.min_votes < 1:
            raise SpecError(f"min_votes must be >= 1, got {self.min_votes}")

    def build(self) -> Optional[WeightedAggregation]:
        """The runtime-side aggregator this config describes.

        ``None`` for ``"majority"``: flat majority is what the platform
        layer already computes, so the runtime applies labels as-is.
        """
        if self.kind == "majority":
            return None
        return WeightedAggregation(
            tracker=WorkerAccuracyTracker(
                prior_accuracy=self.prior_accuracy,
                prior_strength=self.prior_strength,
                agreement_weight=self.agreement_weight,
            ),
            min_votes=self.min_votes,
        )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "prior_accuracy": self.prior_accuracy,
            "prior_strength": self.prior_strength,
            "agreement_weight": self.agreement_weight,
            "min_votes": self.min_votes,
        }

    @classmethod
    def from_dict(cls, data: Optional[Mapping[str, Any]]) -> "AggregationConfig":
        data = data or {}
        defaults = cls()
        return cls(
            kind=data.get("kind", defaults.kind),
            prior_accuracy=float(
                data.get("prior_accuracy", defaults.prior_accuracy)
            ),
            prior_strength=float(
                data.get("prior_strength", defaults.prior_strength)
            ),
            agreement_weight=float(
                data.get("agreement_weight", defaults.agreement_weight)
            ),
            min_votes=int(data.get("min_votes", defaults.min_votes)),
        )


def _encode_budget(budget: Optional[BudgetPolicy]) -> Optional[dict]:
    if budget is None:
        return None
    return {
        "max_cost": budget.max_cost,
        "max_assignments": budget.max_assignments,
        "price_per_assignment": budget.model.price_per_assignment,
    }


def _decode_budget(data: Optional[Mapping[str, Any]]) -> Optional[BudgetPolicy]:
    if data is None:
        return None
    return BudgetPolicy(
        max_cost=data.get("max_cost"),
        max_assignments=data.get("max_assignments"),
        model=CostModel(
            price_per_assignment=data.get(
                "price_per_assignment", CostModel().price_per_assignment
            )
        ),
    )


def _encode_timeout(timeout: Optional[TimeoutPolicy]) -> Optional[dict]:
    if timeout is None:
        return None
    return {"hit_timeout": timeout.hit_timeout, "max_reissues": timeout.max_reissues}


def _decode_timeout(data: Optional[Mapping[str, Any]]) -> Optional[TimeoutPolicy]:
    if data is None:
        return None
    return TimeoutPolicy(
        hit_timeout=float(data["hit_timeout"]),
        max_reissues=int(data.get("max_reissues", 3)),
    )


def _encode_review(review: Optional[ReviewPolicy]) -> Optional[dict]:
    if review is None:
        return None
    if isinstance(review, EscalateOnLowConfidence):
        return {
            "kind": "escalate-low-confidence",
            "min_confidence": review.min_confidence,
            "feedback": review.feedback,
        }
    if isinstance(review, ApproveAll):
        return {"kind": "approve-all", "feedback": review.feedback}
    raise SpecError(
        f"review policy {type(review).__name__} has no JSON form; only "
        "ApproveAll and EscalateOnLowConfidence (or None) can be carried by "
        "a CampaignSpec — wire custom policies into the runtime directly"
    )


def _decode_review(data: Optional[Mapping[str, Any]]) -> Optional[ReviewPolicy]:
    if data is None:
        return None
    kind = data.get("kind")
    if kind == "approve-all":
        return ApproveAll(feedback=data.get("feedback", ApproveAll().feedback))
    if kind == "escalate-low-confidence":
        defaults = EscalateOnLowConfidence()
        return EscalateOnLowConfidence(
            min_confidence=float(
                data.get("min_confidence", defaults.min_confidence)
            ),
            feedback=data.get("feedback", defaults.feedback),
        )
    raise SpecError(f"unknown review policy kind {kind!r}")


@dataclass(frozen=True)
class CampaignSpec:
    """A complete, immutable, JSON-serializable description of a campaign.

    Attributes:
        order: the labeling order as :class:`CandidatePair`\\ s (bare pairs
            are accepted at construction and get the neutral 0.5 likelihood).
        mode: dispatch semantics — a :class:`RuntimeMode` value string
            (``"sequential"``, ``"rounds"``, ``"instant"``, ``"hit-rounds"``,
            ``"flood"``; ``"serial"`` campaigns need preplanned HITs and are
            not spec-expressible).
        policy: conflict policy for the deduction graph.
        backend: engine backend (string or
            :class:`~repro.engine.engine.EngineBackend`).
        shard_threshold / parallel_threshold / n_workers / mp_start_method:
            engine scaling knobs, exactly as :class:`LabelingEngine` takes
            them.
        workers / spawn_local_workers: ``backend="distributed"`` knobs —
            ``"host:port"`` addresses of running shard worker hosts, and/or
            a count of local worker hosts to spawn.
        budget: optional spending cap (:class:`BudgetPolicy`).
        timeout: optional per-HIT expiry policy (:class:`TimeoutPolicy`).
        review: optional assignment review policy (JSON-serializable kinds
            only; see :func:`_encode_review`).
        max_rounds: ROUNDS-mode safety cap.
        ordering: labeling-order strategy — ``"static"`` (walk the order /
            frontier as given) or ``"expected-value"`` (the runtime re-picks
            each next question adaptively by expected transitive deductions;
            requires ``mode="sequential"``).
        aggregation: how replicated assignments become labels
            (:class:`AggregationConfig`).
        platform: the platform shape (:class:`PlatformConfig`).
        journal: per-campaign journal durability/compaction knobs
            (:class:`JournalConfig`); only the campaign service reads it.

    Build one explicitly, or from JSON via :meth:`from_json`.  Derive the
    engine with :meth:`build_engine`; entry points accept the spec directly.
    """

    order: Tuple[CandidatePair, ...]
    mode: str = "instant"
    policy: ConflictPolicy = ConflictPolicy.STRICT
    backend: str = "auto"
    shard_threshold: Optional[int] = None
    parallel_threshold: Optional[int] = None
    n_workers: Optional[int] = None
    mp_start_method: Optional[str] = None
    workers: Optional[Tuple[str, ...]] = None
    spawn_local_workers: Optional[int] = None
    budget: Optional[BudgetPolicy] = None
    timeout: Optional[TimeoutPolicy] = None
    review: Optional[ReviewPolicy] = None
    max_rounds: Optional[int] = None
    ordering: str = "static"
    aggregation: AggregationConfig = field(default_factory=AggregationConfig)
    platform: PlatformConfig = field(default_factory=PlatformConfig)
    journal: JournalConfig = field(default_factory=JournalConfig)

    def __post_init__(self) -> None:
        normalized = []
        for item in self.order:
            if isinstance(item, CandidatePair):
                normalized.append(item)
            elif isinstance(item, Pair):
                normalized.append(CandidatePair(item))
            else:
                try:
                    left, right = item
                except (TypeError, ValueError):
                    raise SpecError(
                        "order items must be CandidatePair, Pair, or a "
                        f"(left, right) 2-sequence, got {item!r}"
                    ) from None
                normalized.append(CandidatePair(Pair(left, right)))
        object.__setattr__(self, "order", tuple(normalized))
        if isinstance(self.mode, enum.Enum):
            object.__setattr__(self, "mode", self.mode.value)
        if isinstance(self.backend, enum.Enum):
            object.__setattr__(self, "backend", self.backend.value)
        if self.mode == "serial":
            raise SpecError(
                "SERIAL campaigns replay preplanned HITs and cannot be "
                "described by a CampaignSpec"
            )
        # Validate mode/policy eagerly so a bad spec fails at construction,
        # not deep inside a runtime build.  RuntimeMode itself is imported
        # lazily to keep this module on the engine's import path.
        from .engine.async_dispatch import ORDERINGS, RuntimeMode

        RuntimeMode(self.mode)
        if self.ordering not in ORDERINGS:
            raise SpecError(
                f"unknown ordering {self.ordering!r}; "
                f"expected one of {ORDERINGS}"
            )
        if self.ordering == "expected-value" and self.mode != "sequential":
            raise SpecError(
                "expected-value ordering requires mode='sequential' (it "
                f"picks one next question at a time), got mode={self.mode!r}"
            )
        if not isinstance(self.policy, ConflictPolicy):
            object.__setattr__(self, "policy", ConflictPolicy(self.policy))
        if self.workers is not None:
            if isinstance(self.workers, str):
                raise SpecError(
                    "workers must be a sequence of 'host:port' strings, "
                    f"got the bare string {self.workers!r}"
                )
            object.__setattr__(self, "workers", tuple(self.workers))
            for address in self.workers:
                if not isinstance(address, str) or ":" not in address:
                    raise SpecError(
                        f"workers entries must be 'host:port' strings, "
                        f"got {address!r}"
                    )
        if not isinstance(self.aggregation, AggregationConfig):
            object.__setattr__(
                self, "aggregation", AggregationConfig.from_dict(self.aggregation)
            )
        if not isinstance(self.journal, JournalConfig):
            object.__setattr__(
                self, "journal", JournalConfig.from_dict(self.journal)
            )

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    @property
    def pairs(self) -> List[Pair]:
        """The bare pairs of the order, in order."""
        return [item.pair for item in self.order]

    def runtime_mode(self):
        """The :class:`RuntimeMode` this spec dispatches with."""
        from .engine.async_dispatch import RuntimeMode

        return RuntimeMode(self.mode)

    def engine_kwargs(self) -> Dict[str, Any]:
        """Keyword arguments for :class:`LabelingEngine` (minus the order)."""
        from .engine.engine import DEFAULT_SHARD_THRESHOLD
        from .engine.parallel import DEFAULT_PARALLEL_THRESHOLD

        return {
            "policy": self.policy,
            "backend": self.backend,
            "shard_threshold": (
                DEFAULT_SHARD_THRESHOLD
                if self.shard_threshold is None
                else self.shard_threshold
            ),
            "parallel_threshold": (
                DEFAULT_PARALLEL_THRESHOLD
                if self.parallel_threshold is None
                else self.parallel_threshold
            ),
            "n_workers": self.n_workers,
            "mp_start_method": self.mp_start_method,
            "workers": self.workers,
            "spawn_local_workers": self.spawn_local_workers,
        }

    def build_engine(self):
        """Construct the :class:`LabelingEngine` this spec describes.

        The static sequential mode deduces at visit time and never sweeps,
        so the incremental pending-pair index would be pure overhead — the
        same optimisation every pre-spec entry point applied by hand.  The
        expected-value ordering sweeps (whenever every remaining pair became
        deducible), so it keeps the index.
        """
        from .engine.engine import LabelingEngine

        return LabelingEngine(
            list(self.order),
            use_index=(
                self.mode != "sequential" or self.ordering == "expected-value"
            ),
            **self.engine_kwargs(),
        )

    def with_order(
        self, order: Sequence[Union[Pair, CandidatePair]]
    ) -> "CampaignSpec":
        """A copy of this spec over a different labeling order."""
        return replace(self, order=tuple(order))

    def make_aggregation(self) -> Optional[WeightedAggregation]:
        """The runtime-side aggregator this spec configures.

        A fresh instance per call (trackers are stateful); ``None`` when
        the spec keeps the platform layer's flat majority.
        """
        return self.aggregation.build()

    # ------------------------------------------------------------------
    # JSON round trip (the HTTP create schema == the journal header schema)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "version": SPEC_SCHEMA_VERSION,
            "order": [
                [*encode_pair(item.pair), item.likelihood] for item in self.order
            ],
            "mode": self.mode,
            "policy": self.policy.value,
            "backend": self.backend,
            "shard_threshold": self.shard_threshold,
            "parallel_threshold": self.parallel_threshold,
            "n_workers": self.n_workers,
            "mp_start_method": self.mp_start_method,
            "workers": list(self.workers) if self.workers is not None else None,
            "spawn_local_workers": self.spawn_local_workers,
            "budget": _encode_budget(self.budget),
            "timeout": _encode_timeout(self.timeout),
            "review": _encode_review(self.review),
            "max_rounds": self.max_rounds,
            "ordering": self.ordering,
            "aggregation": self.aggregation.to_dict(),
            "platform": self.platform.to_dict(),
            "journal": self.journal.to_dict(),
        }

    @classmethod
    def from_dict(
        cls, data: Mapping[str, Any], *, trusted_order: bool = False
    ) -> "CampaignSpec":
        """Decode a spec document.

        ``trusted_order=True`` is for machine-written documents (journal
        headers): pair entries are decoded via
        :func:`decode_canonical_pair`, skipping re-canonicalisation.
        """
        version = data.get("version", SPEC_SCHEMA_VERSION)
        if version not in _READABLE_SPEC_VERSIONS:
            raise SpecError(
                f"unsupported spec schema version {version!r} "
                f"(this build reads versions {_READABLE_SPEC_VERSIONS})"
            )
        try:
            if trusted_order:
                # Machine-written orders (journal headers) get a tight
                # loop that builds both frozen dataclasses by assigning
                # their instance dicts directly — the per-entry cost is
                # what bounds recovery time on 100k-pair campaigns, and
                # the document was produced by to_dict() from an
                # already-validated spec, so only the distinctness check
                # from decode_canonical_pair is kept.
                new = object.__new__
                items = []
                for entry in data["order"]:
                    if len(entry) < 2 or entry[0] == entry[1]:
                        raise SpecError(
                            f"a pair must be two distinct objects, got {entry!r}"
                        )
                    pair = new(Pair)
                    fields = pair.__dict__  # in-place: frozen __setattr__
                    fields["left"] = entry[0]  # guards attribute sets only
                    fields["right"] = entry[1]
                    candidate = new(CandidatePair)
                    fields = candidate.__dict__
                    fields["pair"] = pair
                    fields["likelihood"] = (
                        float(entry[2]) if len(entry) > 2 else 0.5
                    )
                    items.append(candidate)
                order = tuple(items)
            else:
                order = tuple(
                    CandidatePair(
                        decode_pair(entry[:2]),
                        float(entry[2]) if len(entry) > 2 else 0.5,
                    )
                    for entry in data["order"]
                )
        except (KeyError, TypeError, IndexError) as exc:
            raise SpecError(f"malformed spec order: {exc}") from exc
        return cls(
            order=order,
            mode=data.get("mode", "instant"),
            policy=ConflictPolicy(data.get("policy", "strict")),
            backend=data.get("backend", "auto"),
            shard_threshold=data.get("shard_threshold"),
            parallel_threshold=data.get("parallel_threshold"),
            n_workers=data.get("n_workers"),
            mp_start_method=data.get("mp_start_method"),
            # Version <3 documents predate the distributed backend; their
            # absence decodes to "no remote workers".
            workers=data.get("workers"),
            spawn_local_workers=data.get("spawn_local_workers"),
            budget=_decode_budget(data.get("budget")),
            timeout=_decode_timeout(data.get("timeout")),
            review=_decode_review(data.get("review")),
            max_rounds=data.get("max_rounds"),
            # Version-1 documents predate these fields; their absence decodes
            # to the pre-2 behaviour (static order, flat majority).
            ordering=data.get("ordering", "static"),
            aggregation=AggregationConfig.from_dict(data.get("aggregation")),
            platform=PlatformConfig.from_dict(data.get("platform", {})),
            journal=JournalConfig.from_dict(data.get("journal")),
        )

    def to_json(self, *, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"spec is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise SpecError("a spec document must be a JSON object")
        return cls.from_dict(data)
