"""Vectorized backend: array-native kernels for the engine's hot paths.

The sharded backend (PR 3) made the per-answer sweep+frontier work
component-local, but every kernel is still a Python loop over dict-based
structures.  This module re-implements the three hot paths as *batched
array operations* over a flat integer encoding of the labeling order:

* **bulk deduce/sweep** — pairs live as two parallel ``int64`` id arrays;
  cluster membership is a flat ``parent`` array queried with a vectorized
  iterated-``parent[roots]`` find, so re-checking every pending pair of a
  touched component is a handful of array expressions instead of one
  Python ``deduce`` call per pair;
* **batched answer application** — a contiguous run of answers dirties a
  set of components; one :meth:`VectorizedEngineCore.sweep` then resolves
  everything the run implies with a single bulk pass per dirty component
  (the dirty-component idea from
  :class:`~repro.engine.sharding.ShardedFrontier`, applied to deduction);
* **vectorized Algorithm-3 frontier** — for components with no
  non-matching labels, the must-crowdsource selection is computed exactly
  by a Boruvka minimum-spanning-forest kernel (see below) instead of the
  per-pair optimistic scan.

Frontier/MSF equivalence
    In the Algorithm-3 scan every pair — labeled matching or assumed
    matching — merges its endpoints when it is reached, and an unlabeled
    pair is *selected* exactly when its endpoints are still in different
    clusters at its position.  When a component contains no non-matching
    labels, that greedy order-insertion forest is precisely the minimum
    spanning forest of the component's pair graph under weight = order
    position; positions are distinct, so the MSF is unique and therefore
    independent of how it is computed.  Boruvka rounds (pick each
    cluster's minimum-weight incident edge — the cut property marks it as
    a forest edge — then hook and flatten) compute the same mask in
    O(log n) array passes.  Selection and publication never affect how
    the optimistic graph evolves, so exclusions are applied as a mask
    *after* the forest is marked.  Components that do contain a
    non-matching label fall back to their own
    :class:`~repro.engine.frontier.FrontierCursor`, the property-tested
    scalar implementation — negative deducibility does not reduce to a
    spanning forest.

Array namespace policy
    Kernels take the array namespace as a parameter
    (``array_api_compat``-style indirection): :func:`array_namespace`
    resolves it at runtime, preferring ``array_api_compat`` when
    installed and falling back to plain ``numpy``.  numpy is an *optional*
    dependency (the ``perf`` extra): when it is missing,
    ``LabelingEngine(backend="vectorized")`` silently degrades to the
    pure-Python sharded backend, and ``backend="auto"`` skips the
    vectorized tier.  Two kernels intentionally use numpy-specific
    behaviour beyond the array API standard — object-dtype arrays for
    O(1) pair materialization and duplicate-index scatter assignment
    (last write wins) in the Boruvka pick step; a strict array-API
    backend would need those two seams ported.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from ..core.cluster_graph import Conflict, ConflictPolicy, admit_label
from ..core.pairs import CandidatePair, Label, Pair
from .frontier import FrontierCursor

#: Components with at most this many pairs recompute their frontier with a
#: scalar greedy-forest scan: the Boruvka kernel pays O(n_objects) array
#: passes per round, which only amortizes over large batches.
SMALL_COMPONENT_THRESHOLD = 4096

#: ``label_code`` values (the PR-4 wire encoding, extended with a pending
#: state): 0 = unlabeled, 1 = matching, 2 = non-matching.
CODE_UNLABELED = 0
_CODE_OF = {Label.MATCHING: 1, Label.NON_MATCHING: 2}
_LABEL_FROM_CODE = {1: Label.MATCHING, 2: Label.NON_MATCHING}

#: Kind tag of the :meth:`VectorizedEngineCore.snapshot_arrays` payload.
VECTOR_SNAPSHOT_KIND = "vectorized-arrays-v1"


def _pack_adjacency(nm: Dict[int, Set[int]], b64) -> dict:
    """Encode a root -> neighbour-set adjacency as three packed columns."""
    roots: List[int] = []
    counts: List[int] = []
    flat: List[int] = []
    for root in sorted(nm):
        neighbours = sorted(nm[root])
        roots.append(root)
        counts.append(len(neighbours))
        flat.extend(neighbours)
    # Object ids are bounded by the order's universe, so 4-byte lanes
    # always fit and halve the base64 footprint.
    return {
        "roots": b64(roots, "<i4"),
        "counts": b64(counts, "<i4"),
        "flat": b64(flat, "<i4"),
    }


def _unpack_adjacency(payload: dict) -> Dict[int, Set[int]]:
    """Decode a :func:`_pack_adjacency` payload back into the dict."""
    import base64

    import numpy

    def ints(key: str) -> List[int]:
        return numpy.frombuffer(
            base64.b64decode(payload[key]), dtype="<i4"
        ).tolist()

    flat = ints("flat")
    nm: Dict[int, Set[int]] = {}
    idx = 0
    for root, count in zip(ints("roots"), ints("counts")):
        nm[root] = set(flat[idx : idx + count])
        idx += count
    return nm


def array_namespace():
    """The array namespace backing the vectorized kernels, or ``None``.

    Resolution order: ``array_api_compat.array_namespace`` over a numpy
    array when that package is installed, else numpy itself, else ``None``
    when numpy is unavailable.  The import happens on every call so test
    harnesses can simulate a numpy-less interpreter by stubbing
    ``sys.modules["numpy"]``; modules lacking the required surface (e.g. a
    test double) count as unavailable.
    """
    try:
        import numpy
    except ImportError:
        return None
    for name in ("asarray", "arange", "empty", "zeros", "concatenate", "minimum"):
        if not hasattr(numpy, name):
            return None
    try:
        import array_api_compat
    except ImportError:
        return numpy
    try:
        return array_api_compat.array_namespace(numpy.empty(0))
    except Exception:
        return numpy


def vectorized_available() -> bool:
    """True iff the vectorized backend can run in this interpreter."""
    return array_namespace() is not None


# ----------------------------------------------------------------------
# kernels
# ----------------------------------------------------------------------
def _find_many(xp, parent, ids):
    """Roots of ``ids`` under ``parent`` (no path compression): iterate
    ``parent[roots]`` to a fixpoint.  Depth is kept O(1)-ish by the
    union-by-size scalar path and the per-round flatten in the Boruvka
    kernel, so two or three passes suffice in practice."""
    roots = parent[ids]
    while True:
        nxt = parent[roots]
        if bool((nxt == roots).all()):
            return roots
        roots = nxt


def _flatten_inplace(xp, parent):
    """Pointer-jump ``parent`` until every entry points at its root."""
    while True:
        nxt = parent[parent]
        if bool((nxt == parent).all()):
            return
        parent[:] = nxt


def _forest_mask(xp, left, right, n_objects, parent=None):
    """Mark the unique minimum spanning forest of an edge list.

    ``left``/``right`` are endpoint id arrays in **ascending weight
    order** (weight = array index; all weights distinct by construction).
    Returns ``(mask, parent)``: a boolean array flagging forest edges, and
    the flattened ``parent`` array whose entries are final component
    roots.

    Boruvka rounds: drop intra-component edges, let every component pick
    its minimum-weight incident edge via reversed scatter (duplicate-index
    assignment writes in order, so scattering in descending weight order
    makes the minimum win), mark the picks — the cut property guarantees
    each is a forest edge — then hook the higher root under the lower and
    flatten.  Conflicting hooks lose at most the union, never the mark:
    a lost edge stays alive and is re-applied in a later round, and since
    forest edges never become intra-component before being applied, the
    mask converges to exactly the greedy order-insertion forest.
    """
    m = int(left.shape[0])
    if parent is None:
        parent = xp.arange(n_objects, dtype=xp.int64)
    mask = xp.zeros(m, dtype=bool)
    alive = xp.arange(m, dtype=xp.int64)
    sentinel = m
    best_left = xp.empty(n_objects, dtype=xp.int64)
    best_right = xp.empty(n_objects, dtype=xp.int64)
    while alive.shape[0]:
        roots_l = _find_many(xp, parent, left[alive])
        roots_r = _find_many(xp, parent, right[alive])
        crossing = roots_l != roots_r
        alive = alive[crossing]
        if not alive.shape[0]:
            break
        roots_l = roots_l[crossing]
        roots_r = roots_r[crossing]
        k = xp.arange(alive.shape[0], dtype=xp.int64)
        best_left[:] = sentinel
        best_right[:] = sentinel
        best_left[roots_l[::-1]] = k[::-1]
        best_right[roots_r[::-1]] = k[::-1]
        pick = xp.minimum(best_left, best_right)
        picked = pick[pick != sentinel]
        mask[alive[picked]] = True
        lo = xp.minimum(roots_l[picked], roots_r[picked])
        hi = xp.maximum(roots_l[picked], roots_r[picked])
        parent[hi] = lo
        _flatten_inplace(xp, parent)
    return mask, parent


def _greedy_forest_mask(left_ids: List[int], right_ids: List[int]) -> List[bool]:
    """Scalar greedy order-insertion forest over one small component's
    edges: the reference semantics the Boruvka kernel reproduces, cheaper
    below :data:`SMALL_COMPONENT_THRESHOLD` because it touches only the
    component's own ids."""
    parent: Dict[int, int] = {}

    def find(x: int) -> int:
        root = parent.setdefault(x, x)
        while root != parent[root]:
            parent[root] = parent[parent[root]]
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    mask: List[bool] = []
    for a, b in zip(left_ids, right_ids):
        root_a, root_b = find(a), find(b)
        if root_a == root_b:
            mask.append(False)
        else:
            parent[root_b] = root_a
            mask.append(True)
    return mask


# ----------------------------------------------------------------------
# the engine core
# ----------------------------------------------------------------------
class VectorizedEngineCore:
    """Array-native deduction graph + frontier for one labeling order.

    Owns the flat encoding (dense object ids, parallel ``left``/``right``
    position arrays, ``label_code``/``excluded``/``withheld`` state masks),
    the union-find deduction graph over that encoding, and the per-component
    caches behind :meth:`sweep` and :meth:`frontier`.  The
    :class:`VectorizedClusterGraph` adapter exposes the ClusterGraph
    contract over this state; ``LabelingEngine`` routes its event handlers
    here for ``backend="vectorized"``.

    The candidate components are *static* (computed from the full order at
    construction): answers are always order pairs, so deduction paths and
    Algorithm-3 interactions never cross component boundaries, and both
    kernels re-check only components dirtied since their last run.

    Args:
        order: the labeling order (pairs or candidate pairs; duplicates
            collapse to their first occurrence, as in the engine).
        policy: conflict policy for insertions.
        xp: array namespace override (tests); defaults to
            :func:`array_namespace`.

    Raises:
        ImportError: when no array namespace is available.
    """

    def __init__(
        self,
        order: Sequence[Union[Pair, CandidatePair]],
        *,
        policy: ConflictPolicy = ConflictPolicy.STRICT,
        xp=None,
        positions: Optional[Dict[Pair, int]] = None,
    ) -> None:
        if xp is None:
            xp = array_namespace()
        if xp is None:
            raise ImportError(
                "the vectorized backend requires numpy (install the 'perf' extra)"
            )
        self._xp = xp
        if positions is not None:
            # Trusted fast path: the caller already deduplicated the order
            # into plain pairs, with ``positions`` mapping each pair to its
            # index — skip re-walking the sequence.
            pairs: List[Pair] = list(order)
        else:
            pairs = []
            positions = {}
            for item in order:
                pair = item.pair if isinstance(item, CandidatePair) else item
                if pair not in positions:
                    positions[pair] = len(pairs)
                    pairs.append(pair)
        self.pairs = pairs
        self._pos_of = positions
        m = len(pairs)

        # Dense object ids and the parallel endpoint arrays.  Ids are
        # collected in plain lists first: per-element scatter into a numpy
        # array costs more than the single bulk conversion at the end.
        id_of: Dict[Hashable, int] = {}
        left_ids: List[int] = []
        right_ids: List[int] = []
        setdefault = id_of.setdefault
        for pair in pairs:
            left_ids.append(setdefault(pair.left, len(id_of)))
            right_ids.append(setdefault(pair.right, len(id_of)))
        self._id_of = id_of
        # Dict insertion order *is* id order, so the id->object list falls
        # out of the index for free.
        self._objects = objects = list(id_of)
        left = xp.asarray(left_ids, dtype=xp.int64)
        right = xp.asarray(right_ids, dtype=xp.int64)
        if m == 0:
            left = xp.empty(0, dtype=xp.int64)
            right = xp.empty(0, dtype=xp.int64)
        self._left = left
        self._right = right
        n = len(objects)
        self.n_universe = n

        # O(1) bulk pair materialization: an object array over the order.
        pair_arr = xp.empty(m, dtype=object)
        pair_arr[:] = pairs
        self._pair_arr = pair_arr

        # Static candidate components (one full-order Boruvka pass) are
        # materialized lazily by :meth:`_ensure_components`: only the
        # frontier path and the cross-component guard read them, so a
        # snapshot restore of an already-finished campaign never pays for
        # the decomposition.
        self._comp_of_obj: Optional[object] = None
        self._comp_of_pair: Optional[object] = None
        self._comp_positions: Optional[Dict[int, object]] = None

        # Deduction graph state (the VectorizedClusterGraph contract's
        # backing store): union-find arrays over the dense ids, lazy "seen"
        # registration mirroring the monolithic graph, and an nm adjacency
        # between current roots with monolithic-style rewiring on union.
        self._parent = xp.arange(n, dtype=xp.int64)
        self._size = xp.ones(n, dtype=xp.int64)
        self._seen = xp.zeros(n, dtype=bool)
        self._nm_store: Optional[Dict[int, Set[int]]] = {}
        self._nm_packed: Optional[dict] = None
        self._n_objects = 0
        self._n_clusters = 0
        self._n_matching_edges = 0
        self._n_non_matching_edges = 0
        self.policy = policy
        self.conflicts: List[Conflict] = []

        # Labeling/publication state masks over order positions.
        self._label_code = xp.zeros(m, dtype=xp.int8)
        self._excluded = xp.zeros(m, dtype=bool)
        self._withheld = xp.zeros(m, dtype=bool)

        # Dirty bookkeeping.  Sweeps are root-granular: each union-find
        # root owns the pending order positions touching its cluster, and
        # an answer dirties only the roots it changed, so one sweep costs
        # O(affected neighbourhood) instead of O(component).  The sweep
        # set starts empty (nothing is deducible before any answer); the
        # frontier set (component-granular — Algorithm 3 is a per-component
        # computation) starts all-dirty so the first call reads the full
        # state.
        self._sweep_dirty: Set[int] = set()
        self._root_pending: Dict[int, object] = {}
        if m:
            self._rebuild_root_pending(xp.arange(m, dtype=xp.int64))
        self._frontier_all_dirty = True
        self._frontier_dirty: Set[int] = set()
        self._nm_label_comps: Set[int] = set()
        self._cursors: Dict[int, FrontierCursor] = {}
        self._selected: Dict[int, object] = {}
        self._merged: Optional[List[Pair]] = None
        self._empty_positions = xp.empty(0, dtype=xp.int64)

    def _ensure_components(self) -> None:
        """Materialize the static component decomposition on first use.

        Components drive the frontier computation and the cross-component
        guard; the deduction sweep is root-granular and never reads them.
        Comp-keyed state that accrued while the decomposition was absent
        (nm-labeled components, the all-dirty frontier marker) is derived
        here from the label masks, which carry the same information.
        """
        if self._comp_positions is not None:
            return
        xp = self._xp
        m = len(self.pairs)
        _, comp_of_obj = _forest_mask(xp, self._left, self._right, self.n_universe)
        self._comp_of_obj = comp_of_obj
        comp_of_pair = (
            comp_of_obj[self._left] if m else xp.empty(0, dtype=xp.int64)
        )
        self._comp_of_pair = comp_of_pair
        # Group order positions by component: a stable argsort on the
        # component key keeps each slice in ascending position order.
        comp_positions: Dict[int, object] = {}
        if m:
            by_comp = xp.argsort(comp_of_pair, kind="stable")
            sorted_comps = comp_of_pair[by_comp]
            boundary = xp.empty(sorted_comps.shape[0], dtype=bool)
            boundary[0] = True
            boundary[1:] = sorted_comps[1:] != sorted_comps[:-1]
            starts = xp.nonzero(boundary)[0]
            for t in range(starts.shape[0]):
                start = int(starts[t])
                stop = int(starts[t + 1]) if t + 1 < starts.shape[0] else m
                comp_positions[int(sorted_comps[start])] = by_comp[start:stop]
        self._comp_positions = comp_positions
        if m:
            nm_mask = self._label_code == _CODE_OF[Label.NON_MATCHING]
            self._nm_label_comps = {
                int(comp) for comp in xp.unique(comp_of_pair[nm_mask]).tolist()
            }
        if self._frontier_all_dirty:
            self._frontier_dirty = set(comp_positions)
            self._frontier_all_dirty = False

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def n_components(self) -> int:
        """Number of static candidate-graph components."""
        self._ensure_components()
        return len(self._comp_positions)

    @property
    def xp(self):
        """The array namespace the kernels run against."""
        return self._xp

    # ------------------------------------------------------------------
    # scalar graph operations (the ClusterGraph contract's hot seam)
    # ------------------------------------------------------------------
    def _find(self, i: int) -> int:
        """Scalar find with full path compression."""
        parent = self._parent
        root = int(parent[i])
        while True:
            up = int(parent[root])
            if up == root:
                break
            root = up
        while int(parent[i]) != root:
            parent[i], i = root, int(parent[i])
        return root

    def _see(self, i: int) -> None:
        if not bool(self._seen[i]):
            self._seen[i] = True
            self._n_objects += 1
            self._n_clusters += 1

    @property
    def _nm(self) -> Dict[int, Set[int]]:
        """Root -> neighbour-roots non-matching adjacency.

        After :meth:`restore_arrays` the adjacency stays in its packed
        snapshot form until something actually reads it — deduction and
        sweeps during live labeling do, but a restore that only serves
        queries (e.g. recovering an already-finished campaign) never pays
        the dict-of-sets rebuild.
        """
        nm = self._nm_store
        if nm is None:
            nm = self._nm_store = _unpack_adjacency(self._nm_packed)
            self._nm_packed = None
        return nm

    @_nm.setter
    def _nm(self, value: Dict[int, Set[int]]) -> None:
        self._nm_store = value
        self._nm_packed = None

    def _require_ids(self, pair: Pair) -> Tuple[int, int]:
        id_of = self._id_of
        i = id_of.get(pair.left)
        j = id_of.get(pair.right)
        if i is None or j is None:
            raise ValueError(
                f"{pair!r} involves objects outside the labeling order: the "
                "vectorized graph is bound to the engine's candidate universe "
                "(use the monolithic backend for open-world graphs)"
            )
        self._ensure_components()
        if int(self._comp_of_obj[i]) != int(self._comp_of_obj[j]):
            raise ValueError(
                f"{pair!r} spans two candidate components: the vectorized "
                "backend tracks deductions per static component and no order "
                "pair crosses them"
            )
        return i, j

    def deduce(self, pair: Pair) -> Optional[Label]:
        """Algorithm-1 deduction over the array state (scalar path)."""
        id_of = self._id_of
        i = id_of.get(pair.left)
        j = id_of.get(pair.right)
        if i is None or j is None:
            return None
        if not (bool(self._seen[i]) and bool(self._seen[j])):
            return None
        root_i = self._find(i)
        root_j = self._find(j)
        if root_i == root_j:
            return Label.MATCHING
        if root_j in self._nm.get(root_i, ()):
            return Label.NON_MATCHING
        return None

    def graph_add(self, pair: Pair, label: Label) -> bool:
        """Insert a labeled pair; same contract as ``ClusterGraph.add``.

        New deduction information (an effective union or a new cluster-level
        non-matching edge) dirties the pair's component for the next
        :meth:`sweep`; redundant edges dirty nothing, mirroring the listener
        events :class:`~repro.core.sweep.PendingPairIndex` reacts to.
        """
        i, j = self._require_ids(pair)
        if not admit_label(self, pair, label):
            return False
        self._see(i)
        self._see(j)
        root_i = self._find(i)
        root_j = self._find(j)
        if label is Label.MATCHING:
            self._n_matching_edges += 1
            if root_i != root_j:
                survivor = self._union(root_i, root_j)
                # Every pair the merge made deducible touches the merged
                # cluster, and the loser's pending list just folded into
                # the survivor's.
                self._sweep_dirty.add(survivor)
        else:
            # admit_label rejected intra-cluster non-matching edges.
            if root_j not in self._nm.get(root_i, ()):
                self._nm.setdefault(root_i, set()).add(root_j)
                self._nm.setdefault(root_j, set()).add(root_i)
                self._n_non_matching_edges += 1
                self._sweep_dirty.add(root_i)
                self._sweep_dirty.add(root_j)
        return True

    def _rebuild_root_pending(self, positions) -> None:
        """Key ``positions`` (pending order positions) by the current root
        of each endpoint, one vectorized argsort pass.  A position lands in
        both endpoints' lists; :meth:`sweep` de-duplicates on read."""
        xp = self._xp
        self._root_pending = {}
        if not positions.shape[0]:
            return
        roots = xp.concatenate(
            (
                _find_many(xp, self._parent, self._left[positions]),
                _find_many(xp, self._parent, self._right[positions]),
            )
        )
        doubled = xp.concatenate((positions, positions))
        order_idx = xp.argsort(roots, kind="stable")
        sorted_roots = roots[order_idx]
        doubled = doubled[order_idx]
        boundary = xp.empty(sorted_roots.shape[0], dtype=bool)
        boundary[0] = True
        boundary[1:] = sorted_roots[1:] != sorted_roots[:-1]
        starts = xp.nonzero(boundary)[0]
        n_runs = starts.shape[0]
        for t in range(n_runs):
            start = int(starts[t])
            stop = int(starts[t + 1]) if t + 1 < n_runs else sorted_roots.shape[0]
            self._root_pending[int(sorted_roots[start])] = doubled[start:stop]

    def _union(self, root_a: int, root_b: int) -> int:
        """Union by size with monolithic-style nm-adjacency rewiring."""
        size = self._size
        if int(size[root_a]) < int(size[root_b]):
            root_a, root_b = root_b, root_a
        survivor, loser = root_a, root_b
        self._parent[loser] = survivor
        size[survivor] = int(size[survivor]) + int(size[loser])
        self._n_clusters -= 1
        loser_nm = self._nm.pop(loser, None)
        if loser_nm:
            survivor_nm = self._nm.setdefault(survivor, set())
            for neighbour in loser_nm:
                self._nm[neighbour].discard(loser)
                if neighbour == survivor:
                    # Defensive: admit_label rejects the self-loop case.
                    self._n_non_matching_edges -= 1
                    continue
                if neighbour in survivor_nm:
                    # Parallel edges collapse into one cluster-level edge.
                    self._n_non_matching_edges -= 1
                else:
                    self._nm[neighbour].add(survivor)
                    survivor_nm.add(neighbour)
            if not survivor_nm:
                del self._nm[survivor]
        loser_pending = self._root_pending.pop(loser, None)
        if loser_pending is not None:
            mine = self._root_pending.get(survivor)
            if mine is None:
                self._root_pending[survivor] = loser_pending
            else:
                self._root_pending[survivor] = self._xp.concatenate(
                    (mine, loser_pending)
                )
        return survivor

    # ------------------------------------------------------------------
    # engine event hooks
    # ------------------------------------------------------------------
    def note_labeled(self, pair: Pair, label: Label) -> None:
        """A pair received its final label (crowd answer or deduction):
        update the state masks.  Idempotent; labels are final."""
        pos = self._pos_of.get(pair)
        if pos is None:
            return
        self._label_code[pos] = _CODE_OF[label]
        self._excluded[pos] = False
        self._withheld[pos] = False
        if label is Label.NON_MATCHING and self._comp_of_pair is not None:
            # The component leaves the MSF fast path for good: negative
            # deducibility needs the full optimistic scan.  Before the
            # decomposition exists this is a no-op — _ensure_components
            # rederives the set from the label mask.
            self._nm_label_comps.add(int(self._comp_of_pair[pos]))

    def note_published(self, batch: Sequence[Pair]) -> None:
        """Pairs handed to the crowd: excluded from future selections."""
        pos_of = self._pos_of
        for pair in batch:
            pos = pos_of.get(pair)
            if pos is not None:
                self._excluded[pos] = True

    def note_withheld(self, batch: Sequence[Pair]) -> None:
        """Pairs taken out of the deduction sweep's reach."""
        pos_of = self._pos_of
        for pair in batch:
            pos = pos_of.get(pair)
            if pos is not None:
                self._withheld[pos] = True

    def mark_frontier_dirty(self, pair: Pair) -> None:
        """A pair's labeled/published status changed: its component's
        cached selection must be recomputed."""
        pos = self._pos_of.get(pair)
        if pos is None:
            return
        if self._comp_of_pair is not None:
            self._frontier_dirty.add(int(self._comp_of_pair[pos]))
        # else: _frontier_all_dirty still holds — the first frontier()
        # call dirties every component anyway.
        self._merged = None

    # ------------------------------------------------------------------
    # bulk kernels
    # ------------------------------------------------------------------
    def sweep(self) -> List[Tuple[Pair, Label]]:
        """Resolve every pending pair the answers so far imply.

        One bulk pass over the dirty roots' pending lists: vectorized find
        over both endpoint arrays decides matching deductions (equal
        roots); the surviving cross-cluster pairs probe the nm adjacency.
        Exactly the pairs :class:`~repro.core.sweep.PendingPairIndex`
        would resolve — both compute "all pending deducible pairs", and a
        pair can only become deducible through an answer that dirtied a
        root its endpoint now resolves to (a union folds the loser's
        pending list into the dirtied survivor; a new nm edge dirties
        both roots it connects, and rewired nm edges are all incident to
        the dirtied survivor).

        Visited pending lists are compacted on the way: already-labeled
        positions drop out for good, withheld positions stay listed (they
        leave the pending set only by being labeled).

        Returns:
            (pair, implied label) per newly resolved pair, in order
            position.  Callers record the results (which updates
            ``label_code`` via :meth:`note_labeled`).
        """
        if not self._sweep_dirty:
            return []
        xp = self._xp
        dirty = self._sweep_dirty
        self._sweep_dirty = set()
        chunks: List[object] = []
        visited: Set[int] = set()
        for r in dirty:
            live = self._find(int(r))  # a dirtied root may have retired
            if live in visited:
                continue
            visited.add(live)
            positions = self._root_pending.get(live)
            if positions is None:
                continue
            keep = self._label_code[positions] == CODE_UNLABELED
            if not bool(keep.all()):
                positions = positions[keep]
                if positions.shape[0]:
                    self._root_pending[live] = positions
                else:
                    del self._root_pending[live]
                    continue
            chunks.append(positions)
        if not chunks:
            return []
        # A position sits in both endpoints' lists: de-duplicate (unique
        # also sorts, giving order-position output for free).
        pending = xp.unique(
            chunks[0] if len(chunks) == 1 else xp.concatenate(chunks)
        )
        pending = pending[~self._withheld[pending]]
        if not pending.shape[0]:
            return []
        roots_l = _find_many(xp, self._parent, self._left[pending])
        roots_r = _find_many(xp, self._parent, self._right[pending])
        seen = self._seen[self._left[pending]] & self._seen[self._right[pending]]
        same = (roots_l == roots_r) & seen
        pairs = self.pairs
        resolved: List[Tuple[int, Pair, Label]] = []
        for pos in pending[same].tolist():
            resolved.append((pos, pairs[pos], Label.MATCHING))
        if self._nm:
            nm = self._nm
            cross = seen & ~same
            if bool(cross.any()):
                for pos, root_a, root_b in zip(
                    pending[cross].tolist(),
                    roots_l[cross].tolist(),
                    roots_r[cross].tolist(),
                ):
                    if root_b in nm.get(root_a, ()):
                        resolved.append((pos, pairs[pos], Label.NON_MATCHING))
        resolved.sort(key=lambda entry: entry[0])
        return [(pair, label) for _, pair, label in resolved]

    def frontier(
        self,
        labeled: Dict[Pair, Label],
        exclude: Optional[Set[Pair]] = None,
    ) -> List[Pair]:
        """The current must-crowdsource pairs, in order (Algorithm 3).

        Identical to ``must_crowdsource_frontier(order, labeled, exclude)``
        (property-tested).  Dirty components with no non-matching label
        recompute through the Boruvka MSF kernel — batched into a single
        kernel invocation across components, since disjoint components
        cannot interact; components carrying a non-matching label fall
        back to a per-component :class:`FrontierCursor` over ``labeled``/
        ``exclude``.  Clean components serve their cached selections.
        """
        if self._merged is not None and not self._frontier_dirty:
            return list(self._merged)
        self._ensure_components()
        xp = self._xp
        dirty = self._frontier_dirty
        self._frontier_dirty = set()
        batch: List[object] = []
        for comp in dirty:
            positions = self._comp_positions[comp]
            if comp in self._nm_label_comps:
                cursor = self._cursors.get(comp)
                if cursor is None:
                    cursor = self._cursors[comp] = FrontierCursor(
                        self._pair_arr[positions].tolist(), positions.tolist()
                    )
                selected = cursor.select(labeled, exclude)
                self._selected[comp] = xp.asarray(
                    [position for position, _ in selected], dtype=xp.int64
                )
            elif positions.shape[0] <= SMALL_COMPONENT_THRESHOLD:
                mask = _greedy_forest_mask(
                    self._left[positions].tolist(), self._right[positions].tolist()
                )
                candidates = positions[xp.asarray(mask, dtype=bool)]
                self._selected[comp] = candidates[
                    (self._label_code[candidates] == CODE_UNLABELED)
                    & ~self._excluded[candidates]
                ]
            else:
                batch.append(positions)
                self._selected[comp] = self._empty_positions
        if batch:
            # One kernel call covers every large dirty component: the MSF of
            # a disjoint union is the union of the MSFs.  Sorting restores
            # the global ascending-weight order the kernel requires.
            all_positions = xp.sort(xp.concatenate(batch))
            mask, _ = _forest_mask(
                xp,
                self._left[all_positions],
                self._right[all_positions],
                self.n_universe,
            )
            candidates = all_positions[mask]
            candidates = candidates[
                (self._label_code[candidates] == CODE_UNLABELED)
                & ~self._excluded[candidates]
            ]
            # Split the combined selection back into per-component caches.
            comps = self._comp_of_pair[candidates]
            by_comp = xp.argsort(comps, kind="stable")
            candidates = candidates[by_comp]
            comps = comps[by_comp]
            if comps.shape[0]:
                boundary = xp.empty(comps.shape[0], dtype=bool)
                boundary[0] = True
                boundary[1:] = comps[1:] != comps[:-1]
                starts = xp.nonzero(boundary)[0]
                n_runs = starts.shape[0]
                for t in range(n_runs):
                    start = int(starts[t])
                    stop = (
                        int(starts[t + 1]) if t + 1 < n_runs else comps.shape[0]
                    )
                    self._selected[int(comps[start])] = candidates[start:stop]
        runs = [selected for selected in self._selected.values() if selected.shape[0]]
        if not runs:
            merged: List[Pair] = []
        else:
            merged_positions = runs[0] if len(runs) == 1 else xp.sort(
                xp.concatenate(runs)
            )
            merged = self._pair_arr[merged_positions].tolist()
        self._merged = merged
        return list(merged)

    def apply_answers(
        self, answers: Sequence[Tuple[Pair, Label]]
    ) -> List[Tuple[Pair, Label]]:
        """Fold a contiguous run of answers into the graph, then resolve
        everything the run implies with one bulk re-sweep.

        The scalar per-answer inserts are O(α); the expensive part — the
        re-sweep — runs once over the union of dirtied components instead
        of once per answer.  Callers that need engine bookkeeping should
        use ``LabelingEngine.record_answers`` instead, which wraps this
        sequence with result/label-map updates.

        Returns:
            the resolved (pair, label) deductions, as :meth:`sweep`.
        """
        for pair, label in answers:
            self.note_labeled(pair, label)
            self.graph_add(pair, label)
            self.mark_frontier_dirty(pair)
        return self.sweep()

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify internal consistency; raises AssertionError on violation."""
        xp = self._xp
        for root, neighbours in self._nm.items():
            assert self._find(root) == root, f"{root} is not a current root"
            assert root not in neighbours, f"self-loop at {root}"
            for other in neighbours:
                assert root in self._nm.get(other, ()), "asymmetric adjacency"
        n_edges = sum(len(neighbours) for neighbours in self._nm.values())
        assert n_edges == 2 * self._n_non_matching_edges, "edge count drift"
        assert int(self._seen.sum()) == self._n_objects, "seen-count drift"
        if self._n_objects:
            seen_ids = xp.nonzero(self._seen)[0]
            roots = _find_many(xp, self._parent, seen_ids)
            assert len(set(roots.tolist())) == self._n_clusters, "cluster-count drift"
        labeled_positions = xp.nonzero(self._label_code != CODE_UNLABELED)[0]
        assert not bool(self._excluded[labeled_positions].any()), (
            "a labeled pair is still marked published"
        )
        for root in self._root_pending:
            assert self._find(root) == root, (
                f"pending list keyed by retired root {root}"
            )
        pending = xp.nonzero(self._label_code == CODE_UNLABELED)[0]
        if pending.shape[0]:
            listed: Set[int] = set()
            for positions in self._root_pending.values():
                listed.update(positions.tolist())
            missing = set(pending.tolist()) - listed
            assert not missing, (
                f"pending positions missing from root lists: {sorted(missing)[:5]}"
            )

    # ------------------------------------------------------------------
    # snapshot / restore (the near-native serialization seam)
    # ------------------------------------------------------------------
    def snapshot_arrays(self) -> dict:
        """Serialize the flat array state near-natively.

        The union-find, seen mask, label/exclusion masks, nm adjacency,
        and counters are the *entire* deduction-graph state; everything
        else (static component decomposition, cursors, dirty sets) is
        either rebuilt from the order or a recoverable cache.  Arrays ship
        as base64 over explicit little-endian dtypes, keeping the payload
        JSON-serializable for the journal.
        """
        import base64

        import numpy

        def b64(arr, dtype) -> str:
            data = numpy.ascontiguousarray(numpy.asarray(arr), dtype=dtype)
            return base64.b64encode(data.tobytes()).decode("ascii")

        pos_of = self._pos_of
        return {
            "kind": VECTOR_SNAPSHOT_KIND,
            "n_universe": self.n_universe,
            "n_pairs": len(self.pairs),
            "parent": b64(self._parent, "<i4"),
            "size": b64(self._size, "<i4"),
            "seen": b64(self._seen, "|b1"),
            "label_code": b64(self._label_code, "|i1"),
            "excluded": b64(self._excluded, "|b1"),
            "withheld": b64(self._withheld, "|b1"),
            # The nm adjacency packs as three parallel columns (sorted
            # roots, per-root neighbour counts, flattened sorted
            # neighbours): one b64 string per column keeps the JSON line
            # flat and lets restore rebuild the dict from C-speed slices.
            # If the adjacency is still in packed form from a restore it
            # round-trips untouched.
            "nm": (
                self._nm_packed
                if self._nm_store is None
                else _pack_adjacency(self._nm_store, b64)
            ),
            "counters": [
                self._n_objects,
                self._n_clusters,
                self._n_matching_edges,
                self._n_non_matching_edges,
            ],
            "conflicts": [
                [pos_of[c.pair], _CODE_OF[c.label], _CODE_OF[c.implied]]
                for c in self.conflicts
            ],
        }

    def restore_arrays(self, payload: dict) -> bool:
        """Load a :meth:`snapshot_arrays` payload into this (fresh) core.

        Returns False — leaving the core untouched — when the payload is
        not this encoding or was taken over a different order shape, so
        callers can fall back to per-record replay.  Dirty sets are reset
        conservatively (every live root with pending pairs re-sweeps,
        every component recomputes its first frontier), which preserves
        the sweep/frontier contracts without serializing cache state.
        """
        if payload.get("kind") != VECTOR_SNAPSHOT_KIND:
            return False
        if payload.get("n_universe") != self.n_universe or payload.get(
            "n_pairs"
        ) != len(self.pairs):
            return False
        import base64

        import numpy

        def arr(key: str, dtype, native_dtype, n: int):
            data = numpy.frombuffer(base64.b64decode(payload[key]), dtype=dtype)
            if data.shape[0] != n:
                raise ValueError(
                    f"vectorized snapshot field {key!r} has {data.shape[0]} "
                    f"elements, expected {n}"
                )
            return self._xp.asarray(data.astype(native_dtype))

        n, m = self.n_universe, len(self.pairs)
        self._parent = arr("parent", "<i4", numpy.int64, n)
        self._size = arr("size", "<i4", numpy.int64, n)
        self._seen = arr("seen", "|b1", bool, n)
        self._label_code = arr("label_code", "|i1", numpy.int8, m)
        self._excluded = arr("excluded", "|b1", bool, m)
        self._withheld = arr("withheld", "|b1", bool, m)
        self._nm_store = None
        self._nm_packed = payload["nm"]
        (
            self._n_objects,
            self._n_clusters,
            self._n_matching_edges,
            self._n_non_matching_edges,
        ) = (int(value) for value in payload["counters"])
        self.conflicts = [
            Conflict(self.pairs[pos], _LABEL_FROM_CODE[label], _LABEL_FROM_CODE[implied])
            for pos, label, implied in payload["conflicts"]
        ]
        if self._comp_positions is not None:
            self._nm_label_comps = {
                int(comp)
                for comp in numpy.asarray(self._comp_of_pair)[
                    numpy.asarray(self._label_code) == _CODE_OF[Label.NON_MATCHING]
                ].tolist()
            }
            self._frontier_dirty = set(self._comp_positions)
        else:
            # The decomposition hasn't been forced yet: leave it lazy
            # (restores of finished campaigns never need it) and let
            # _ensure_components derive the nm/dirty sets on first use.
            self._nm_label_comps = set()
            self._frontier_dirty = set()
            self._frontier_all_dirty = True
        # Re-key the pending lists under the restored union-find and dirty
        # every live root: the snapshot carries no cache state, so the
        # first sweep re-derives whatever was deducible-but-unswept.
        xp = self._xp
        pending = xp.nonzero(self._label_code == CODE_UNLABELED)[0].astype(xp.int64)
        self._rebuild_root_pending(pending)
        self._sweep_dirty = set(self._root_pending)
        self._cursors = {}
        self._selected = {}
        self._merged = None
        return True


# ----------------------------------------------------------------------
# the ClusterGraph contract adapter
# ----------------------------------------------------------------------
class VectorizedClusterGraph:
    """The ClusterGraph contract over a :class:`VectorizedEngineCore`.

    This is what ``LabelingEngine`` installs as ``engine.graph`` for
    ``backend="vectorized"``: scalar insertions and deductions operate on
    the core's flat arrays, inspection aggregates over them.  The
    ``listener`` seam is intentionally absent (always ``None``) —
    incremental sweep state lives in the core's dirty-component sets, not
    in a :class:`~repro.core.sweep.PendingPairIndex`.

    Not supported (the encoding is closed over the labeling order):
    ``copy()``, ``absorb()``, and pairs involving objects outside the
    order — :meth:`add` raises ``ValueError`` for those, while
    :meth:`deduce` simply answers ``None``.
    """

    #: No listener: the core's component-dirty sets replace the
    #: PendingPairIndex machinery wholesale.
    listener = None

    def __init__(self, core: VectorizedEngineCore) -> None:
        self._core = core

    @property
    def core(self) -> VectorizedEngineCore:
        return self._core

    @property
    def policy(self) -> ConflictPolicy:
        return self._core.policy

    @property
    def conflicts(self) -> List[Conflict]:
        return self._core.conflicts

    # -- insertion ------------------------------------------------------
    def add(self, pair: Pair, label: Label) -> bool:
        return self._core.graph_add(pair, label)

    def add_matching(self, a: Hashable, b: Hashable) -> bool:
        return self.add(Pair(a, b), Label.MATCHING)

    def add_non_matching(self, a: Hashable, b: Hashable) -> bool:
        return self.add(Pair(a, b), Label.NON_MATCHING)

    # -- deduction ------------------------------------------------------
    def deduce(self, pair: Pair) -> Optional[Label]:
        return self._core.deduce(pair)

    def deducible(self, pair: Pair) -> bool:
        return self.deduce(pair) is not None

    # -- inspection -----------------------------------------------------
    @property
    def n_objects(self) -> int:
        return self._core._n_objects

    @property
    def n_clusters(self) -> int:
        return self._core._n_clusters

    @property
    def n_matching_edges(self) -> int:
        return self._core._n_matching_edges

    @property
    def n_non_matching_edges(self) -> int:
        return self._core._n_non_matching_edges

    @property
    def n_components(self) -> int:
        return self._core.n_components

    def __contains__(self, obj: Hashable) -> bool:
        core = self._core
        obj_id = core._id_of.get(obj)
        return obj_id is not None and bool(core._seen[obj_id])

    def objects(self) -> Iterator[Hashable]:
        core = self._core
        for obj_id in core._xp.nonzero(core._seen)[0].tolist():
            yield core._objects[obj_id]

    def cluster_of(self, obj: Hashable) -> Hashable:
        """The canonical representative of ``obj``'s cluster.  Like the
        monolithic graph this lazily registers the object — but only
        objects from the labeling order are representable."""
        core = self._core
        obj_id = core._id_of.get(obj)
        if obj_id is None:
            raise ValueError(
                f"{obj!r} is outside the labeling order's object universe"
            )
        core._see(obj_id)
        return core._objects[core._find(obj_id)]

    def cluster_members(self, obj: Hashable) -> Set[Hashable]:
        core = self._core
        xp = core._xp
        obj_id = core._id_of.get(obj)
        if obj_id is None or not bool(core._seen[obj_id]):
            return {obj} if obj_id is not None else set()
        root = core._find(obj_id)
        seen_ids = xp.nonzero(core._seen)[0]
        roots = _find_many(xp, core._parent, seen_ids)
        return {
            core._objects[i] for i in seen_ids[roots == root].tolist()
        }

    def same_cluster(self, a: Hashable, b: Hashable) -> bool:
        if a == b:
            return a in self
        return self.deduce(Pair(a, b)) is Label.MATCHING

    def clusters(self) -> List[Set[Hashable]]:
        core = self._core
        xp = core._xp
        if not core._n_objects:
            return []
        seen_ids = xp.nonzero(core._seen)[0]
        roots = _find_many(xp, core._parent, seen_ids)
        grouped: Dict[int, Set[Hashable]] = {}
        for obj_id, root in zip(seen_ids.tolist(), roots.tolist()):
            grouped.setdefault(root, set()).add(core._objects[obj_id])
        return list(grouped.values())

    def non_matching_cluster_edges(self) -> Iterator[Tuple[Hashable, Hashable]]:
        core = self._core
        emitted: Set[frozenset] = set()
        for root, neighbours in core._nm.items():
            for other in neighbours:
                key = frozenset((root, other))
                if key not in emitted:
                    emitted.add(key)
                    yield (core._objects[root], core._objects[other])

    def check_invariants(self) -> None:
        self._core.check_invariants()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VectorizedClusterGraph({self.n_objects} objects, "
            f"{self.n_clusters} clusters, {self._core.n_components} components)"
        )
