"""The must-crowdsource frontier (paper Section 5.1, Algorithm 3).

A pair *must* be crowdsourced — no matter how earlier pairs turn out — when
every path between its objects has a minimum of two non-matching edges even
under the optimistic assumption that **all** unlabeled pairs before it are
matching: real answers can only turn assumed-matching edges into non-matching
ones, which never lowers a path's non-matching count.

This module is the single shared implementation of that test.  Every
dispatch strategy (round-parallel, instant-decision, the HIT-granularity
campaign adapter) and the ``parallel_crowdsourced_pairs`` compatibility
wrapper in :mod:`repro.core.parallel` call into it, so the optimistic
semantics live in exactly one place.

Reproduction note: the paper's Algorithm 3 pseudocode inserts only the
*selected* pairs as matching and leaves optimistically-deducible pairs out of
the graph.  That variant is unsound in rare interleavings (an unlabeled pair
whose optimistic deduction is non-matching may truly be matching, enabling
deductions the selection ignored — the instant-decision mode can then
over-publish).  We implement the paper's *prose* criterion instead: every
unlabeled pair, selected or skipped, is assumed matching, which restores the
minimum-non-matching-count argument.  See docs/engine.md.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set, Union

from ..core.pairs import CandidatePair, Label, Pair
from ..core.union_find import UnionFind


class OptimisticGraph:
    """Cluster graph under the "all unlabeled pairs match" assumption.

    Unlike :class:`~repro.core.cluster_graph.ClusterGraph`, merging two
    clusters connected by a non-matching edge is *allowed* here: the edge
    becomes a self-loop and is dropped, because in minimum-non-matching-count
    semantics an intra-cluster non-matching edge can never lie on a minimal
    path.  Likewise a non-matching edge inside one cluster is silently
    ignored.  This permissiveness is exactly what the optimistic assumption
    needs and would be a consistency violation anywhere else.
    """

    def __init__(self) -> None:
        self._uf = UnionFind()
        self._nm: Dict[Hashable, Set[Hashable]] = {}

    def assume_matching(self, a: Hashable, b: Hashable) -> None:
        """Merge the clusters of ``a`` and ``b`` (real or assumed match)."""
        root_a = self._uf.find(a)
        root_b = self._uf.find(b)
        if root_a == root_b:
            return
        survivor = self._uf.union(root_a, root_b)
        loser = root_b if survivor == root_a else root_a
        loser_nm = self._nm.pop(loser, set())
        if loser_nm:
            survivor_nm = self._nm.setdefault(survivor, set())
            for neighbour in loser_nm:
                self._nm[neighbour].discard(loser)
                if neighbour != survivor:
                    self._nm[neighbour].add(survivor)
                    survivor_nm.add(neighbour)
            if not survivor_nm:
                del self._nm[survivor]

    def add_non_matching(self, a: Hashable, b: Hashable) -> None:
        """Record a real non-matching answer (ignored if intra-cluster)."""
        root_a = self._uf.find(a)
        root_b = self._uf.find(b)
        if root_a == root_b:
            return
        self._nm.setdefault(root_a, set()).add(root_b)
        self._nm.setdefault(root_b, set()).add(root_a)

    def deduce(self, pair: Pair) -> Optional[Label]:
        """Optimistic ``DeduceLabel``: the label ``pair`` would get if every
        assumed pair really were matching, or None when no path constrains
        it."""
        if pair.left not in self._uf or pair.right not in self._uf:
            return None
        root_left = self._uf.find(pair.left)
        root_right = self._uf.find(pair.right)
        if root_left == root_right:
            return Label.MATCHING
        if root_right in self._nm.get(root_left, ()):
            return Label.NON_MATCHING
        return None

    def must_crowdsource(self, pair: Pair) -> bool:
        """True iff no path between the objects can have fewer than two
        non-matching edges, i.e. the pair is undeducible under every possible
        outcome of the assumed pairs."""
        return self.deduce(pair) is None


def must_crowdsource_frontier(
    order: Sequence[Union[Pair, CandidatePair]],
    labeled: Dict[Pair, Label],
    exclude: Optional[Set[Pair]] = None,
) -> List[Pair]:
    """Identify the pairs that can be crowdsourced in parallel (Algorithm 3).

    Scans ``order`` once, maintaining an :class:`OptimisticGraph`.  Labeled
    pairs are inserted with their real label; every unlabeled pair is assumed
    matching, and is selected for crowdsourcing when, at its position, it is
    undeducible under that assumption (hence undeducible under *any* actual
    outcome of the pairs before it).

    Args:
        order: the full labeling order.
        labeled: pairs already labeled (crowdsourced or deduced).
        exclude: pairs already published and awaiting answers; they keep
            their assumed-matching role but are not re-published.  This is
            the one-line change enabling the instant-decision optimisation
            (Section 5.2).

    Returns:
        Pairs to publish now, in order.
    """
    exclude = exclude or set()
    graph = OptimisticGraph()
    selected: List[Pair] = []
    for item in order:
        pair = item.pair if isinstance(item, CandidatePair) else item
        known = labeled.get(pair)
        if known is not None:
            if known is Label.MATCHING:
                graph.assume_matching(pair.left, pair.right)
            else:
                graph.add_non_matching(pair.left, pair.right)
            continue
        if graph.must_crowdsource(pair) and pair not in exclude:
            selected.append(pair)
        # Optimistic assumption: the unlabeled pair is matching — whether it
        # was selected, excluded, or deducible (see module docstring).
        graph.assume_matching(pair.left, pair.right)
    return selected
