"""The must-crowdsource frontier (paper Section 5.1, Algorithm 3).

A pair *must* be crowdsourced — no matter how earlier pairs turn out — when
every path between its objects has a minimum of two non-matching edges even
under the optimistic assumption that **all** unlabeled pairs before it are
matching: real answers can only turn assumed-matching edges into non-matching
ones, which never lowers a path's non-matching count.

This module is the single shared implementation of that test.  Every
dispatch strategy (round-parallel, instant-decision, the HIT-granularity
campaign adapter) and the ``parallel_crowdsourced_pairs`` compatibility
wrapper in :mod:`repro.core.parallel` call into it, so the optimistic
semantics live in exactly one place.

Reproduction note: the paper's Algorithm 3 pseudocode inserts only the
*selected* pairs as matching and leaves optimistically-deducible pairs out of
the graph.  That variant is unsound in rare interleavings (an unlabeled pair
whose optimistic deduction is non-matching may truly be matching, enabling
deductions the selection ignored — the instant-decision mode can then
over-publish).  We implement the paper's *prose* criterion instead: every
unlabeled pair, selected or skipped, is assumed matching, which restores the
minimum-non-matching-count argument.  See docs/engine.md.
"""

from __future__ import annotations

from typing import (
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..core.pairs import CandidatePair, Label, Pair
from ..core.union_find import UnionFind


class OptimisticGraph:
    """Cluster graph under the "all unlabeled pairs match" assumption.

    Unlike :class:`~repro.core.cluster_graph.ClusterGraph`, merging two
    clusters connected by a non-matching edge is *allowed* here: the edge
    becomes a self-loop and is dropped, because in minimum-non-matching-count
    semantics an intra-cluster non-matching edge can never lie on a minimal
    path.  Likewise a non-matching edge inside one cluster is silently
    ignored.  This permissiveness is exactly what the optimistic assumption
    needs and would be a consistency violation anywhere else.

    :meth:`checkpoint` / :meth:`rollback` journal all structural changes so
    the selection scan can apply its *speculative* assumed-matching merges on
    top of a persistent prefix and undo them in time proportional to the
    speculation (see :class:`FrontierCursor`).
    """

    def __init__(self) -> None:
        self._uf = UnionFind()
        self._nm: Dict[Hashable, Set[Hashable]] = {}
        # Undo log for the active checkpoint; None when not journaling.
        # Entries: ("restore_key", key, set), ("del_key", key),
        # ("add", set, element) and ("discard", set, element) — each the
        # *inverse* of the mutation performed.
        self._log: Optional[List[Tuple]] = None

    def checkpoint(self) -> None:
        """Start journaling changes for a later :meth:`rollback`.

        Raises:
            RuntimeError: if a checkpoint is already active.
        """
        if self._log is not None:
            raise RuntimeError("a checkpoint is already active")
        self._uf.checkpoint()
        self._log = []

    def rollback(self) -> None:
        """Undo every change since :meth:`checkpoint`.

        Raises:
            RuntimeError: if no checkpoint is active.
        """
        if self._log is None:
            raise RuntimeError("no active checkpoint to roll back")
        log = self._log
        self._log = None
        for entry in reversed(log):
            op = entry[0]
            if op == "add":
                entry[1].add(entry[2])
            elif op == "discard":
                entry[1].discard(entry[2])
            elif op == "restore_key":
                self._nm[entry[1]] = entry[2]
            else:  # "del_key"
                del self._nm[entry[1]]
        self._uf.rollback()

    def assume_matching(self, a: Hashable, b: Hashable) -> None:
        """Merge the clusters of ``a`` and ``b`` (real or assumed match)."""
        root_a = self._uf.find(a)
        root_b = self._uf.find(b)
        if root_a == root_b:
            return
        survivor = self._uf.union(root_a, root_b)
        loser = root_b if survivor == root_a else root_a
        log = self._log
        loser_nm = self._nm.pop(loser, None)
        if loser_nm is None:
            return
        if log is not None:
            log.append(("restore_key", loser, loser_nm))
        survivor_nm = self._nm.get(survivor)
        if survivor_nm is None:
            survivor_nm = self._nm[survivor] = set()
            if log is not None:
                log.append(("del_key", survivor))
        for neighbour in loser_nm:
            neighbour_nm = self._nm[neighbour] if neighbour != survivor else survivor_nm
            neighbour_nm.discard(loser)
            if log is not None:
                log.append(("add", neighbour_nm, loser))
            if neighbour != survivor and survivor not in neighbour_nm:
                neighbour_nm.add(survivor)
                survivor_nm.add(neighbour)
                if log is not None:
                    log.append(("discard", neighbour_nm, survivor))
                    log.append(("discard", survivor_nm, neighbour))
        if not survivor_nm and log is None:
            del self._nm[survivor]

    def add_non_matching(self, a: Hashable, b: Hashable) -> None:
        """Record a real non-matching answer (ignored if intra-cluster)."""
        root_a = self._uf.find(a)
        root_b = self._uf.find(b)
        if root_a == root_b:
            return
        log = self._log
        for key, other in ((root_a, root_b), (root_b, root_a)):
            bucket = self._nm.get(key)
            if bucket is None:
                bucket = self._nm[key] = set()
                if log is not None:
                    log.append(("del_key", key))
            if other not in bucket:
                bucket.add(other)
                if log is not None:
                    log.append(("discard", bucket, other))

    def deduce(self, pair: Pair) -> Optional[Label]:
        """Optimistic ``DeduceLabel``: the label ``pair`` would get if every
        assumed pair really were matching, or None when no path constrains
        it."""
        if pair.left not in self._uf or pair.right not in self._uf:
            return None
        root_left = self._uf.find(pair.left)
        root_right = self._uf.find(pair.right)
        if root_left == root_right:
            return Label.MATCHING
        if root_right in self._nm.get(root_left, ()):
            return Label.NON_MATCHING
        return None

    def must_crowdsource(self, pair: Pair) -> bool:
        """True iff no path between the objects can have fewer than two
        non-matching edges, i.e. the pair is undeducible under every possible
        outcome of the assumed pairs."""
        return self.deduce(pair) is None


def must_crowdsource_frontier(
    order: Sequence[Union[Pair, CandidatePair]],
    labeled: Dict[Pair, Label],
    exclude: Optional[Set[Pair]] = None,
) -> List[Pair]:
    """Identify the pairs that can be crowdsourced in parallel (Algorithm 3).

    Scans ``order`` once, maintaining an :class:`OptimisticGraph`.  Labeled
    pairs are inserted with their real label; every unlabeled pair is assumed
    matching, and is selected for crowdsourcing when, at its position, it is
    undeducible under that assumption (hence undeducible under *any* actual
    outcome of the pairs before it).

    Args:
        order: the full labeling order.
        labeled: pairs already labeled (crowdsourced or deduced).
        exclude: pairs already published and awaiting answers; they keep
            their assumed-matching role but are not re-published.  This is
            the one-line change enabling the instant-decision optimisation
            (Section 5.2).

    Returns:
        Pairs to publish now, in order.
    """
    exclude = exclude or set()
    graph = OptimisticGraph()
    selected: List[Pair] = []
    for item in order:
        pair = item.pair if isinstance(item, CandidatePair) else item
        known = labeled.get(pair)
        if known is not None:
            if known is Label.MATCHING:
                graph.assume_matching(pair.left, pair.right)
            else:
                graph.add_non_matching(pair.left, pair.right)
            continue
        if graph.must_crowdsource(pair) and pair not in exclude:
            selected.append(pair)
        # Optimistic assumption: the unlabeled pair is matching — whether it
        # was selected, excluded, or deducible (see module docstring).
        graph.assume_matching(pair.left, pair.right)
    return selected


class FrontierCursor:
    """Incremental Algorithm-3 selection with a decided-prefix cursor.

    :func:`must_crowdsource_frontier` rebuilds its optimistic graph from
    position 0 on every call, although the leading run of already-labeled
    pairs contributes exactly the same insertions each time — labels are
    final once assigned.  The cursor keeps a persistent
    :class:`OptimisticGraph` holding precisely that decided prefix and, per
    call, scans only the remaining suffix: the suffix's temporary
    assumed-matching merges are applied under a checkpoint and rolled back
    afterwards, so a selection costs O(suffix) instead of O(order).  This is
    what makes instant-decision re-publishes cheap late in a run, when most
    of the order is already decided.

    Selections are exactly those of :func:`must_crowdsource_frontier` on the
    same arguments (property-tested).

    Args:
        order: the (sub)sequence of the labeling order this cursor covers.
        positions: optional global order positions of ``order``'s entries —
            used by the sharded frontier, whose per-component cursors cover
            interleaved subsequences.  Defaults to 0..len(order)-1.
    """

    def __init__(
        self,
        order: Sequence[Union[Pair, CandidatePair]],
        positions: Optional[Sequence[int]] = None,
    ) -> None:
        pairs = [item.pair if isinstance(item, CandidatePair) else item for item in order]
        if positions is None:
            positions = range(len(pairs))
        elif len(positions) != len(pairs):
            raise ValueError("positions must parallel the order")
        self._entries: List[Tuple[int, Pair]] = list(zip(positions, pairs))
        self._cursor = 0
        self._graph = OptimisticGraph()

    @property
    def decided_prefix(self) -> int:
        """How many leading positions are permanently folded into the base
        graph (grows monotonically as labels become final)."""
        return self._cursor

    def __len__(self) -> int:
        return len(self._entries)

    def _apply(self, pair: Pair, label: Label) -> None:
        if label is Label.MATCHING:
            self._graph.assume_matching(pair.left, pair.right)
        else:
            self._graph.add_non_matching(pair.left, pair.right)

    def select(
        self,
        labeled: Dict[Pair, Label],
        exclude: Optional[Set[Pair]] = None,
    ) -> List[Tuple[int, Pair]]:
        """The must-crowdsource selection as ``(position, pair)`` tuples.

        Args:
            labeled: pairs with final labels; must be a superset of what any
                earlier call saw (labels never change, so the decided prefix
                only grows).
            exclude: published pairs awaiting answers — assumed matching but
                not re-selected.

        Returns:
            Selected entries in order-position order.
        """
        exclude = exclude or ()
        entries = self._entries
        n = len(entries)
        cursor = self._cursor
        # Fold newly decided prefix positions permanently into the base graph.
        while cursor < n:
            known = labeled.get(entries[cursor][1])
            if known is None:
                break
            self._apply(entries[cursor][1], known)
            cursor += 1
        self._cursor = cursor
        if cursor == n:
            return []
        graph = self._graph
        selected: List[Tuple[int, Pair]] = []
        graph.checkpoint()
        try:
            for i in range(cursor, n):
                position, pair = entries[i]
                known = labeled.get(pair)
                if known is not None:
                    self._apply(pair, known)
                    continue
                if graph.must_crowdsource(pair) and pair not in exclude:
                    selected.append((position, pair))
                # Optimistic assumption, exactly as in the full scan.
                graph.assume_matching(pair.left, pair.right)
        finally:
            graph.rollback()
        return selected

    def frontier(
        self,
        labeled: Dict[Pair, Label],
        exclude: Optional[Set[Pair]] = None,
    ) -> List[Pair]:
        """Like :meth:`select`, without the positions."""
        return [pair for _, pair in self.select(labeled, exclude)]
