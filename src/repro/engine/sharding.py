"""Sharded deduction backend: the ClusterGraph partitioned by component.

Deduction is *component-local*: Algorithm 1 decides a pair from paths of
labeled edges, and a path can never leave the connected component of the
answer graph (matching and non-matching edges alike).  Wang et al. (SIGMOD
2013) exploit this implicitly — every cluster operation touches one
component — and the follow-up expected-optimal-labeling-order work
(arXiv:1409.7472) makes the observation explicit.  At the ROADMAP's target
scale (orders of 10M+ candidate pairs) a monolithic
:class:`~repro.core.cluster_graph.ClusterGraph` keeps working, but every
order-wide operation — the Algorithm-3 frontier scan above all — pays for
the whole graph on every event.

This module shards both halves of the hot path:

* :class:`ShardedClusterGraph` partitions *received answers* into one
  :class:`~repro.core.cluster_graph.ClusterGraph` per answer-graph component.
  Pairs are routed to the shard owning their endpoints; an answer bridging
  two shards merges them **lazily** — the smaller shard's structures are
  spliced into the larger via ``absorb`` in O(smaller), never a rebuild.
  The class implements the full ClusterGraph contract, including the
  ``listener`` seam, so :class:`~repro.core.sweep.PendingPairIndex` and every
  dispatch strategy work unchanged on top of it.

* :class:`ShardedFrontier` partitions the *labeling order* by connected
  component of the candidate-pair graph (fixed at construction: labeled or
  assumed matching, every pair in the order connects its endpoints in the
  optimistic graph, so the Algorithm-3 scan decomposes exactly by these
  components).  Each component gets its own
  :class:`~repro.engine.frontier.FrontierCursor`; an answer or publish event
  dirties only its own component, and a frontier call recomputes only dirty
  components, merging cached per-component selections by order position.

The engine picks this backend automatically above a size threshold (see
``LabelingEngine``'s ``backend`` knob); the monolithic graph remains the
default for small inputs.
"""

from __future__ import annotations

from heapq import merge as _heap_merge
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from ..core.cluster_graph import (
    ClusterGraph,
    Conflict,
    ConflictPolicy,
    GraphListener,
    admit_label,
)
from ..core.pairs import CandidatePair, Label, LabeledPair, Pair
from ..core.union_find import UnionFind
from .frontier import FrontierCursor


class _ListenerForwarder:
    """Relays shard-level graph events to the outer graph's listener.

    Inner cluster roots are plain objects and an object lives in exactly one
    shard, so events forward unchanged — consumers like
    :class:`~repro.core.sweep.PendingPairIndex` cannot tell a sharded graph
    from a monolithic one.
    """

    __slots__ = ("_outer",)

    def __init__(self, outer: "ShardedClusterGraph") -> None:
        self._outer = outer

    def on_union(self, survivor: Hashable, loser: Hashable) -> None:
        listener = self._outer.listener
        if listener is not None:
            listener.on_union(survivor, loser)

    def on_edge(self, root_a: Hashable, root_b: Hashable) -> None:
        listener = self._outer.listener
        if listener is not None:
            listener.on_edge(root_a, root_b)


class ShardedClusterGraph:
    """A drop-in ClusterGraph that keeps one shard per answer-graph component.

    Routing: an outer union-find (``membership``) tracks which component each
    object belongs to, where *any* labeled edge — matching or non-matching —
    connects its endpoints (a non-matching edge can sit on a deduction path,
    so shards joined by one cannot be kept apart).  Each component root maps
    to an inner :class:`ClusterGraph` holding that component's answers.

    Merging is lazy: when an answer bridges two shards, the smaller shard's
    union-find and adjacency are spliced into the larger in O(smaller shard)
    via ``absorb`` — amortised over a run this is the classic small-into-large
    O(n log n) bound, and no rebuild or re-insertion ever happens.

    Conflict policing happens at this outer layer (same semantics and
    bookkeeping as the monolithic graph); inner shards therefore only ever
    see consistent inserts and run STRICT.

    Args:
        labeled: optional initial labeled pairs to insert.
        policy: conflict policy applied on inconsistent insertions.
    """

    def __init__(
        self,
        labeled: Iterable[LabeledPair] = (),
        policy: ConflictPolicy = ConflictPolicy.STRICT,
    ) -> None:
        self._membership = UnionFind()
        self._shards: Dict[Hashable, ClusterGraph] = {}
        self._policy = policy
        self.conflicts: List[Conflict] = []
        #: Optional observer notified of merges and new edges (see
        #: :class:`~repro.core.cluster_graph.GraphListener`); events from all
        #: shards funnel here.  Not copied by :meth:`copy`.
        self.listener: Optional[GraphListener] = None
        self._forward = _ListenerForwarder(self)
        for item in labeled:
            self.add(item.pair, item.label)

    # ------------------------------------------------------------------
    # shard routing
    # ------------------------------------------------------------------
    def _new_shard(self, root: Hashable) -> ClusterGraph:
        shard = ClusterGraph(policy=ConflictPolicy.STRICT)
        shard.listener = self._forward
        self._shards[root] = shard
        return shard

    def _shard_of(self, obj: Hashable) -> ClusterGraph:
        """The shard owning ``obj``; unseen objects get a singleton shard
        (mirroring the monolithic graph's lazy object registration)."""
        membership = self._membership
        if obj not in membership:
            root = membership.find(obj)  # registers the singleton
            shard = self._new_shard(root)
            shard.cluster_of(obj)  # registers obj inside the shard
            return shard
        return self._shards[membership.find(obj)]

    def _route(self, a: Hashable, b: Hashable) -> ClusterGraph:
        """The single shard that will own the edge ``(a, b)``, creating or
        merging shards as needed and re-keying the shard table."""
        membership = self._membership
        in_a = a in membership
        in_b = b in membership
        if not in_a and not in_b:
            root = membership.union(a, b)
            return self._new_shard(root)
        if in_a and in_b:
            root_a = membership.find(a)
            root_b = membership.find(b)
            if root_a == root_b:
                return self._shards[root_a]
            big, small = self._shards[root_a], self._shards[root_b]
            if big.n_objects < small.n_objects:
                big, small = small, big
            big.absorb(small)
            root = membership.union(root_a, root_b)
            self._shards.pop(root_a)
            self._shards.pop(root_b)
            self._shards[root] = big
            return big
        seen = a if in_a else b
        old_root = membership.find(seen)
        shard = self._shards[old_root]
        root = membership.union(a, b)
        if root != old_root:
            del self._shards[old_root]
            self._shards[root] = shard
        return shard

    # ------------------------------------------------------------------
    # insertion (ClusterGraph contract)
    # ------------------------------------------------------------------
    def add(self, pair: Pair, label: Label) -> bool:
        """Insert a labeled pair; same contract as ``ClusterGraph.add``."""
        if not admit_label(self, pair, label):
            return False
        # The shared check above already policed consistency against the
        # routed deduction, so the shard applies the edge without re-deducing
        # — merging, adjacency rewiring, counters, and listener events all
        # happen inside the shard exactly as on the monolithic graph.
        self._route(pair.left, pair.right).add_unchecked(pair, label)
        return True

    def add_matching(self, a: Hashable, b: Hashable) -> bool:
        """Insert ``(a, b)`` as a matching pair."""
        return self.add(Pair(a, b), Label.MATCHING)

    def add_non_matching(self, a: Hashable, b: Hashable) -> bool:
        """Insert ``(a, b)`` as a non-matching pair."""
        return self.add(Pair(a, b), Label.NON_MATCHING)

    # ------------------------------------------------------------------
    # deduction
    # ------------------------------------------------------------------
    def deduce(self, pair: Pair) -> Optional[Label]:
        """Algorithm-1 deduction, routed to the owning shard.

        Objects in different shards share no labeled path, so the answer is
        immediately None without touching any shard.
        """
        membership = self._membership
        if pair.left not in membership or pair.right not in membership:
            return None
        root_left = membership.find(pair.left)
        root_right = membership.find(pair.right)
        if root_left != root_right:
            return None
        return self._shards[root_left].deduce(pair)

    def deducible(self, pair: Pair) -> bool:
        """True iff the label of ``pair`` is implied by inserted pairs."""
        return self.deduce(pair) is not None

    # ------------------------------------------------------------------
    # inspection (ClusterGraph contract)
    # ------------------------------------------------------------------
    @property
    def policy(self) -> ConflictPolicy:
        return self._policy

    @property
    def n_objects(self) -> int:
        return len(self._membership)

    @property
    def n_clusters(self) -> int:
        return sum(shard.n_clusters for shard in self._shards.values())

    @property
    def n_matching_edges(self) -> int:
        return sum(shard.n_matching_edges for shard in self._shards.values())

    @property
    def n_non_matching_edges(self) -> int:
        return sum(shard.n_non_matching_edges for shard in self._shards.values())

    @property
    def n_shards(self) -> int:
        """Number of live shards (= answer-graph components)."""
        return len(self._shards)

    def shard_sizes(self) -> List[int]:
        """Objects per shard, descending — the shard balance picture."""
        return sorted((shard.n_objects for shard in self._shards.values()), reverse=True)

    def __contains__(self, obj: Hashable) -> bool:
        return obj in self._membership

    def objects(self) -> Iterator[Hashable]:
        return iter(self._membership)

    def cluster_of(self, obj: Hashable) -> Hashable:
        return self._shard_of(obj).cluster_of(obj)

    def cluster_members(self, obj: Hashable) -> Set[Hashable]:
        """All objects transitively matched with ``obj`` — an O(shard) scan,
        not O(all objects) as on the monolithic graph."""
        return self._shard_of(obj).cluster_members(obj)

    def same_cluster(self, a: Hashable, b: Hashable) -> bool:
        membership = self._membership
        if a not in membership or b not in membership:
            return False
        root_a = membership.find(a)
        if root_a != membership.find(b):
            return False
        return self._shards[root_a].same_cluster(a, b)

    def clusters(self) -> List[Set[Hashable]]:
        out: List[Set[Hashable]] = []
        for shard in self._shards.values():
            out.extend(shard.clusters())
        return out

    def non_matching_cluster_edges(self) -> Iterator[Tuple[Hashable, Hashable]]:
        for shard in self._shards.values():
            yield from shard.non_matching_cluster_edges()

    def copy(self) -> "ShardedClusterGraph":
        """An independent deep copy (listener not copied, as on the
        monolithic graph)."""
        clone = ShardedClusterGraph(policy=self._policy)
        clone._membership = self._membership.copy()
        for root, shard in self._shards.items():
            inner = shard.copy()
            inner.listener = clone._forward
            clone._shards[root] = inner
        clone.conflicts = list(self.conflicts)
        return clone

    def check_invariants(self) -> None:
        """Verify internal consistency; raises AssertionError on violation."""
        seen_objects = 0
        for root, shard in self._shards.items():
            assert self._membership.find(root) == root, f"{root!r} is not a membership root"
            shard.check_invariants()
            seen_objects += shard.n_objects
        assert seen_objects == len(self._membership), "shard object counts disagree with membership"
        for obj in self._membership:
            root = self._membership.find(obj)
            assert root in self._shards, f"no shard for root {root!r}"
            assert obj in self._shards[root], f"{obj!r} missing from its shard"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedClusterGraph({self.n_objects} objects, {self.n_shards} shards, "
            f"{self.n_clusters} clusters)"
        )


def _as_pairs(order: Sequence[Union[Pair, CandidatePair]]) -> List[Pair]:
    return [item.pair if isinstance(item, CandidatePair) else item for item in order]


class ShardedFrontier:
    """Per-component must-crowdsource frontiers with dirty-component caching.

    The Algorithm-3 scan decomposes exactly by connected component of the
    *candidate-pair graph* (every pair in the order): a pair at position *i*
    is selected based on the optimistic graph built from positions before
    *i*, and only pairs sharing its component can reach its endpoints —
    whether labeled with their real label or assumed matching, pairs in other
    components touch disjoint object sets.  The full frontier is therefore
    the position-order merge of per-component frontiers.

    That makes the frontier *incrementally maintainable*: a label or publish
    event can only change the frontier of its own component, so this class
    caches each component's selection and recomputes only components marked
    dirty since the last call — each through its own
    :class:`~repro.engine.frontier.FrontierCursor`, which additionally skips
    the component's decided prefix.  On workloads with many components (the
    normal shape after blocking), the *scan* work per answer event drops
    from O(order) to O(the touched component); materializing the returned
    list still costs O(current frontier size) — that is the size of the
    answer — plus the position merge, and repeat calls with no dirty
    component return a cached copy.

    Args:
        order: the full labeling order (pairs or candidate pairs).
    """

    def __init__(self, order: Sequence[Union[Pair, CandidatePair]]) -> None:
        pairs = _as_pairs(order)
        components = UnionFind()
        for pair in pairs:
            components.union(pair.left, pair.right)
        grouped: Dict[Hashable, Tuple[List[int], List[Pair]]] = {}
        for position, pair in enumerate(pairs):
            positions, members = grouped.setdefault(
                components.find(pair.left), ([], [])
            )
            positions.append(position)
            members.append(pair)
        self._components = components
        self._cursors: Dict[Hashable, FrontierCursor] = {
            root: FrontierCursor(members, positions)
            for root, (positions, members) in grouped.items()
        }
        self._selected: Dict[Hashable, List[Tuple[int, Pair]]] = {}
        self._dirty: Set[Hashable] = set(self._cursors)
        self._merged: Optional[List[Pair]] = None

    @property
    def n_components(self) -> int:
        """Number of static candidate-graph components (fixed at
        construction; an upper bound on concurrently active shards)."""
        return len(self._cursors)

    def component_of(self, pair: Pair) -> Optional[Hashable]:
        """The component key owning ``pair``, or None for foreign pairs."""
        if pair.left not in self._components:
            return None
        return self._components.find(pair.left)

    def mark_dirty(self, pair: Pair) -> None:
        """Note that ``pair``'s labeled/published status changed: its
        component's cached selection must be recomputed."""
        root = self.component_of(pair)
        if root is not None:
            self._dirty.add(root)
            self._merged = None

    def frontier(
        self,
        labeled: Dict[Pair, Label],
        exclude: Optional[Set[Pair]] = None,
    ) -> List[Pair]:
        """The current must-crowdsource pairs, in order position.

        Identical to ``must_crowdsource_frontier(order, labeled, exclude)``
        (property-tested); only dirty components are recomputed.  Every
        change to a pair's entry in ``labeled``/``exclude`` since the last
        call must have been announced via :meth:`mark_dirty` — the engine
        does this in its event handlers — otherwise the pair's component may
        serve a stale cached selection.
        """
        if self._merged is not None:
            return list(self._merged)
        for root in self._dirty:
            self._selected[root] = self._cursors[root].select(labeled, exclude)
        self._dirty.clear()
        runs = [selected for selected in self._selected.values() if selected]
        if not runs:
            merged: List[Pair] = []
        elif len(runs) == 1:
            merged = [pair for _, pair in runs[0]]
        else:
            merged = [pair for _, pair in _heap_merge(*runs)]
        self._merged = merged
        return list(merged)
