"""Pluggable dispatch strategies over the :class:`LabelingEngine`.

The engine owns the deduction state and the must-crowdsource frontier; a
*dispatch strategy* decides when to publish which frontier pairs and how the
crowd's answers are simulated.  The three strategies here reproduce the
paper's three labelers:

* :class:`SequentialDispatch` — one pair per round (Section 3.2);
* :class:`RoundParallelDispatch` — the full frontier per round, waiting for
  every answer before re-deciding (Section 5.1, Algorithms 2-3);
* :class:`InstantDispatch` — answer-at-a-time with the instant-decision and
  non-matching-first optimisations (Section 5.2, Figure 15).

The companion paper on the Expected Optimal Labeling Order problem
(arXiv:1409.7472) treats ordering and dispatch as orthogonal components; the
same separation here means hot-path work (the incremental frontier, future
batching/async/sharding) lands once in the engine and benefits every
strategy.  The legacy classes in :mod:`repro.core.sequential`,
:mod:`repro.core.parallel`, and :mod:`repro.core.instant` are thin facades
over these strategies.

Since the async-first refactor, :class:`SequentialDispatch` and
:class:`RoundParallelDispatch` are themselves synchronous facades: each run
builds a :class:`~repro.engine.async_dispatch.CrowdRuntime` over the
deterministic simulated client
(:meth:`~repro.crowd.clients.SimulatedPlatformClient.for_oracle`) and drives
it to completion — the same event loop, answer-application path, and expiry
handling that live campaigns use, property-tested identical to the frozen
pre-refactor labelers.  :class:`InstantDispatch` keeps its bespoke loop: its
answer *policies* (which published pair the crowd answers next) simulate the
Figure-15 crowd itself, which is not a platform concern.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence, Union, runtime_checkable

from ..core.cluster_graph import ClusterGraph, ConflictPolicy
from ..core.oracle import LabelOracle
from ..core.pairs import CandidatePair, Label, Pair
from ..core.result import LabelingResult
from ..crowd.clients import SimulatedPlatformClient
from .async_dispatch import CrowdRuntime, RuntimeMode
from .engine import DEFAULT_SHARD_THRESHOLD, LabelingEngine
from .parallel import DEFAULT_PARALLEL_THRESHOLD


def _engine_config(
    spec,
    *,
    policy=None,
    backend=None,
    shard_threshold=None,
    parallel_threshold=None,
    n_workers=None,
    workers=None,
    spawn_local_workers=None,
) -> dict:
    """Resolve engine kwargs: explicit argument > spec value > default.

    Every dispatch strategy used to re-plumb these knobs by hand; a
    :class:`~repro.spec.CampaignSpec` now carries them once, and explicit
    keyword arguments keep working as per-call overrides.
    """
    if spec is not None:
        resolved = spec.engine_kwargs()
    else:
        resolved = {
            "policy": ConflictPolicy.STRICT,
            "backend": "auto",
            "shard_threshold": DEFAULT_SHARD_THRESHOLD,
            "parallel_threshold": DEFAULT_PARALLEL_THRESHOLD,
            "n_workers": None,
            "mp_start_method": None,
            "workers": None,
            "spawn_local_workers": None,
        }
    overrides = {
        "policy": policy,
        "backend": backend,
        "shard_threshold": shard_threshold,
        "parallel_threshold": parallel_threshold,
        "n_workers": n_workers,
        "workers": workers,
        "spawn_local_workers": spawn_local_workers,
    }
    resolved.update({k: v for k, v in overrides.items() if v is not None})
    return resolved


@runtime_checkable
class DispatchStrategy(Protocol):
    """A labeling loop: drives a :class:`LabelingEngine` against an oracle."""

    def run(
        self,
        order: Sequence[Union[Pair, CandidatePair]],
        oracle: LabelOracle,
    ) -> LabelingResult:
        """Label every pair in ``order``; return the full result."""
        ...  # pragma: no cover - protocol


class SequentialDispatch:
    """Publish one must-crowdsource pair per round (paper Section 3.2).

    Walks the order; each pair is either deduced for free or crowdsourced as
    its own round.  Attains the minimum crowdsourced count for the order but
    serialises crowd work — the latency problem the parallel strategies
    solve.
    """

    def __init__(
        self,
        policy: Optional[ConflictPolicy] = None,
        backend: Optional[str] = None,
        shard_threshold: Optional[int] = None,
        parallel_threshold: Optional[int] = None,
        n_workers: Optional[int] = None,
        workers: Optional[Sequence[str]] = None,
        spawn_local_workers: Optional[int] = None,
        *,
        spec=None,
    ) -> None:
        self._engine_kwargs = _engine_config(
            spec,
            policy=policy,
            backend=backend,
            shard_threshold=shard_threshold,
            parallel_threshold=parallel_threshold,
            n_workers=n_workers,
            workers=workers,
            spawn_local_workers=spawn_local_workers,
        )

    def run(
        self,
        order: Sequence[Union[Pair, CandidatePair]],
        oracle: LabelOracle,
        graph: Optional[ClusterGraph] = None,
    ) -> LabelingResult:
        """Label every pair in ``order``; oracle calls follow the order.

        Args:
            order: the labeling order.
            oracle: answers crowdsourced queries.
            graph: optional pre-populated deduction graph to continue from
                (its pairs count as already labeled).
        """
        # The sequential loop deduces at visit time and never sweeps, so the
        # incremental index would be pure overhead; it also must accept
        # foreign graphs (e.g. the one-to-one extension's).
        engine = LabelingEngine(
            order,
            graph=graph,
            use_index=False,
            **self._engine_kwargs,
        )
        CrowdRuntime(
            engine,
            SimulatedPlatformClient.for_oracle(oracle),
            mode=RuntimeMode.SEQUENTIAL,
        ).run_sync()
        return engine.result


class RoundParallelDispatch:
    """Publish the whole must-crowdsource frontier per round (Algorithm 2).

    Every round publishes every pair that must be crowdsourced no matter how
    the outstanding pairs turn out, collects all answers, sweeps deductions,
    and repeats.  Money cost provably never exceeds the sequential strategy
    on the same order (property-tested); only the round count shrinks.
    """

    def __init__(
        self,
        policy: Optional[ConflictPolicy] = None,
        backend: Optional[str] = None,
        shard_threshold: Optional[int] = None,
        parallel_threshold: Optional[int] = None,
        n_workers: Optional[int] = None,
        workers: Optional[Sequence[str]] = None,
        spawn_local_workers: Optional[int] = None,
        *,
        spec=None,
    ) -> None:
        self._engine_kwargs = _engine_config(
            spec,
            policy=policy,
            backend=backend,
            shard_threshold=shard_threshold,
            parallel_threshold=parallel_threshold,
            n_workers=n_workers,
            workers=workers,
            spawn_local_workers=spawn_local_workers,
        )

    def run(
        self,
        order: Sequence[Union[Pair, CandidatePair]],
        oracle: LabelOracle,
        max_rounds: Optional[int] = None,
    ) -> LabelingResult:
        """Label every pair in ``order`` using batched crowd rounds.

        Args:
            order: the labeling order.
            oracle: answers crowdsourced queries (one call per published
                pair).
            max_rounds: safety cap; the algorithm provably terminates (each
                round crowdsources at least the first unlabeled pair), so the
                cap exists only to fail fast on bugs.

        Raises:
            RuntimeError: if ``max_rounds`` is exceeded.
        """
        engine = LabelingEngine(order, **self._engine_kwargs)
        CrowdRuntime(
            engine,
            SimulatedPlatformClient.for_oracle(oracle),
            mode=RuntimeMode.ROUNDS,
            max_rounds=max_rounds,
        ).run_sync()
        return engine.result


class AnswerPolicy(enum.Enum):
    """Which published pair does the crowd answer next?

    FIFO:                publication order (deterministic baseline).
    RANDOM:              uniformly random — how AMT actually assigns HITs,
                         used for Parallel and Parallel(ID) in Figure 15.
    NON_MATCHING_FIRST:  increasing likelihood of being a matching pair —
                         the NF optimisation (only meaningful with ID).
    """

    FIFO = "fifo"
    RANDOM = "random"
    NON_MATCHING_FIRST = "non-matching-first"


@dataclass(frozen=True)
class AvailabilityPoint:
    """One step of the Figure-15 series: after ``n_answered`` crowdsourced
    answers, ``n_available`` published pairs were still waiting."""

    n_answered: int
    n_available: int


@dataclass
class InstantRunResult:
    """Outcome of an event-driven labeling run.

    Attributes:
        result: the per-pair labeling result (rounds = publish events).
        trace: availability after every answer (Figure 15's series).
        publish_events: (answers so far, batch size) per publish event.
    """

    result: LabelingResult
    trace: List[AvailabilityPoint] = field(default_factory=list)
    publish_events: List[tuple[int, int]] = field(default_factory=list)

    @property
    def n_crowdsourced(self) -> int:
        return self.result.n_crowdsourced

    @property
    def n_deduced(self) -> int:
        return self.result.n_deduced

    def availability_series(self) -> List[int]:
        """Pool sizes after each answer, as a plain list."""
        return [point.n_available for point in self.trace]

    def mean_availability(self) -> float:
        """Average pool size over the run — the paper's 'keep the crowd busy'
        metric summarised as one number."""
        if not self.trace:
            return 0.0
        return sum(point.n_available for point in self.trace) / len(self.trace)

    def starvation_count(self, below: int = 1) -> int:
        """How many times (mid-run) the pool dropped below ``below`` pairs."""
        if not self.trace:
            return 0
        interior = self.trace[:-1]  # the pool is legitimately empty at the end
        return sum(1 for point in interior if point.n_available < below)


class InstantDispatch:
    """Answer-at-a-time dispatch with optional ID and NF optimisations.

    Simulates the Figure-15 interaction: a configurable answer policy picks
    which published pair the crowd answers next, and the strategy re-decides
    publication according to its optimisation level.

    Published pairs are *not* resolved by the deduction sweep even if later
    answers would imply their label — they are already on the platform and
    will be answered.  Besides matching platform reality, this is what
    guarantees progress: when the pool drains after a run of matching
    answers, every remaining unlabeled pair is deducible from the answers
    actually received.

    Args:
        instant_decision: publish new must-crowdsource pairs as soon as an
            answer makes them identifiable (Section 5.2 "Instant Decision").
            When False the strategy behaves like the round-based algorithm:
            it waits for the whole published batch before publishing again.
        answer_policy: how the simulated crowd picks the next pair to answer.
        seed: RNG seed for the RANDOM policy.
        policy: ClusterGraph conflict policy (STRICT for perfect oracles).
        use_index: incremental deduction sweep (the engine default); the
            naive full scan is kept for cross-validation and produces
            identical results.
        backend: engine deduction/frontier backend (``"auto"``,
            ``"monolithic"``, ``"sharded"``, ``"vectorized"``, or
            ``"parallel"``; see :class:`LabelingEngine`).
        shard_threshold: the ``auto`` backend's sharding cut-over point.
    """

    def __init__(
        self,
        instant_decision: bool = True,
        answer_policy: AnswerPolicy = AnswerPolicy.RANDOM,
        seed: int = 0,
        policy: Optional[ConflictPolicy] = None,
        use_index: bool = True,
        backend: Optional[str] = None,
        shard_threshold: Optional[int] = None,
        parallel_threshold: Optional[int] = None,
        n_workers: Optional[int] = None,
        workers: Optional[Sequence[str]] = None,
        spawn_local_workers: Optional[int] = None,
        *,
        spec=None,
    ) -> None:
        self._instant = instant_decision
        self._answer_policy = answer_policy
        self._seed = seed
        self._use_index = use_index
        self._engine_kwargs = _engine_config(
            spec,
            policy=policy,
            backend=backend,
            shard_threshold=shard_threshold,
            parallel_threshold=parallel_threshold,
            n_workers=n_workers,
            workers=workers,
            spawn_local_workers=spawn_local_workers,
        )

    def run(
        self,
        order: Sequence[Union[Pair, CandidatePair]],
        oracle: LabelOracle,
    ) -> InstantRunResult:
        """Label every pair in ``order``; return result plus the trace."""
        engine = LabelingEngine(
            order,
            use_index=self._use_index,
            **self._engine_kwargs,
        )
        try:
            return self._run(engine, oracle)
        finally:
            # Release parallel-backend workers (no-op on in-process backends).
            engine.close()

    def _run(self, engine: LabelingEngine, oracle: LabelOracle) -> InstantRunResult:
        rng = random.Random(self._seed)
        run = InstantRunResult(result=engine.result)
        published: List[Pair] = []
        publish_round: Dict[Pair, int] = {}
        n_answered = 0
        n_publish_events = 0

        def publish() -> None:
            nonlocal n_publish_events
            batch = engine.frontier()
            if batch:
                engine.publish(batch)  # the crowd will answer these
                for pair in batch:
                    publish_round[pair] = n_publish_events
                published.extend(batch)
                engine.result.rounds.append(batch)
                run.publish_events.append((n_answered, len(batch)))
                n_publish_events += 1

        def next_to_answer() -> Pair:
            if self._answer_policy is AnswerPolicy.FIFO:
                choice = 0
            elif self._answer_policy is AnswerPolicy.RANDOM:
                choice = rng.randrange(len(published))
            else:  # NON_MATCHING_FIRST: least likely to match answered first
                choice = min(
                    range(len(published)),
                    key=lambda i: engine.likelihoods[published[i]],
                )
            return published.pop(choice)

        publish()
        while not engine.is_done:
            if not published:
                # With a perfect oracle this only happens when the remaining
                # pairs are all deducible; with noisy answers (FIRST_WINS) the
                # invariants can be violated, so recompute defensively.
                publish()
                assert published, "event loop stalled with unlabeled pairs remaining"
            pair = next_to_answer()
            answer = oracle.label(pair)
            n_answered += 1
            engine.record_answer(pair, answer, publish_round[pair])
            # Deduction sweep over unresolved pairs; published pairs are on
            # the platform and stay withheld from it.
            engine.sweep(publish_round[pair])
            if not engine.is_done and self._instant and answer is Label.NON_MATCHING:
                # A matching answer cannot unlock new publishes: selection
                # already assumed all unlabeled pairs match (Section 5.2).
                publish()
            run.trace.append(AvailabilityPoint(n_answered, len(published)))
        return run
