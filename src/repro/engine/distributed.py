"""Distributed shard execution: the PR-4 executor protocol over TCP sockets.

:class:`~repro.engine.parallel.ProcessShardExecutor` already speaks a
shared-nothing command protocol — component snapshots ship once, then the hot
path carries only order positions and label codes.  This module swaps the
multiprocessing pipe for a socket, which turns worker *processes* into worker
*hosts*: the path past one machine for 100M+ pair workloads.

Two halves:

* :class:`ShardWorkerHost` — an ``asyncio`` TCP server (stdlib only) that a
  coordinator connects to.  Each connection gets an independent session: the
  coordinator ships component snapshots (``load``), and the session executes
  answers, deduction sweeps, and frontier recomputes with the *same*
  :class:`~repro.engine.parallel._WorkerState` the in-process pool uses —
  byte-identical behaviour is the whole point, and the differential suite
  pins it.  A background task heartbeats while the session is idle; a
  handler that stalls starves its own heartbeat, which is exactly how the
  coordinator detects a hung worker.  Run one standalone with
  ``python -m repro.engine.distributed --worker host:port``.
* :class:`ShardCoordinator` — the engine-facing executor (duck-typed to the
  ``ProcessShardExecutor`` surface, so ``LabelingEngine`` and
  ``ParallelShardedClusterGraph`` need no changes).  It connects out to each
  worker with plain *blocking* sockets — engine calls are synchronous, and on
  the async runtime they happen inside a running event loop, where nesting
  ``asyncio.run`` is impossible — and keeps an **authoritative event log**
  per static component.

Wire format: length-prefixed JSON — a 4-byte big-endian size then a UTF-8
JSON array, no new dependencies.  Snapshots reuse the PR-8 column packing
(:func:`~repro.engine.engine._pack_ints`: base64 little-endian int arrays),
so a 250k-position bundle decodes with a memcpy instead of a 250k-element
JSON array parse.  Object ids must be JSON scalars (str/int/float/bool/None)
— the same contract :func:`repro.spec.encode_object` enforces — and the
coordinator validates this up front.

Failure contract (the extension of :class:`ShardWorkerError` this PR adds):
a dropped connection, heartbeat silence, or reply timeout marks a worker
**dead** — but instead of poisoning the executor, the coordinator re-ships
the dead worker's components to the surviving workers from its authoritative
snapshot (the static entries plus the committed event log) and replays the
in-flight command.  Events commit to the log only after the owning worker
acknowledged them, so a worker that died *after* applying a command but
*before* replying is replayed without it and the retried command applies it
exactly once.  Only when **no** workers survive does the executor poison
itself and raise :class:`ShardWorkerError`, the PR-4 contract.
"""

from __future__ import annotations

import argparse
import asyncio
import heapq
import json
import multiprocessing
import os
import socket
import struct
import sys
import time
import weakref
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..core.cluster_graph import Conflict, ConflictPolicy, InconsistentLabelError
from ..core.pairs import CandidatePair, Label, Pair
from ..core.union_find import UnionFind
from .parallel import (
    _CODE_OF,
    _LABEL_OF,
    _MAX_DEFAULT_WORKERS,
    _UNCHANGED,
    _WorkerState,
    ShardWorkerError,
    _as_pairs,
    available_cpus,
)

#: Version stamp of the coordinator/worker wire protocol; a mismatch at the
#: hello handshake refuses the connection instead of desyncing later.
PROTOCOL_VERSION = 1

#: Frames larger than this are rejected on both sides (a torn or hostile
#: length prefix must not allocate unbounded memory).  Generous: a 1M-pair
#: snapshot bundle is ~30 MB of JSON.
DEFAULT_MAX_FRAME_BYTES = 256 * 1024 * 1024

#: Worker -> coordinator keepalive cadence while a session is idle.
DEFAULT_HEARTBEAT_INTERVAL = 1.0

#: Heartbeat silence after which the coordinator declares a worker dead.
#: This also bounds single-handler compute time (a busy handler starves its
#: own heartbeat), so the default is generous; chaos tests tune it down.
DEFAULT_HEARTBEAT_TIMEOUT = 60.0

#: Socket poll slice while waiting for a reply — liveness (connection state,
#: heartbeat recency, deadline) is re-checked this often, mirroring the
#: ``conn.poll(0.05)`` cadence of the pipe executor.
_POLL_INTERVAL = 0.05

_HELLO = "hello"
_HEARTBEAT_FRAME = None  # built after encode_frame is defined

#: JSON-scalar types an object id may have on the distributed backend.
_SCALAR_TYPES = (str, int, float, bool, type(None))

#: Exception types a worker may ship by name; anything else arrives as a
#: RuntimeError carrying the original type name.  InconsistentLabelError is
#: the one the STRICT conflict contract requires.
_EXC_TYPES: Dict[str, type] = {
    "InconsistentLabelError": InconsistentLabelError,
    "ValueError": ValueError,
    "TypeError": TypeError,
    "KeyError": KeyError,
    "IndexError": IndexError,
    "RuntimeError": RuntimeError,
    "AssertionError": AssertionError,
    "NotImplementedError": NotImplementedError,
}


class ProtocolError(RuntimeError):
    """A malformed, oversized, or out-of-sequence frame on the wire."""


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def encode_frame(message: Any, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> bytes:
    """One wire frame: 4-byte big-endian length + compact UTF-8 JSON body.

    Messages must be JSON *arrays* — every protocol frame is one, and the
    restriction keeps :meth:`FrameDecoder.next_frame`'s ``None`` ("need more
    bytes") unambiguous.
    """
    if not isinstance(message, (list, tuple)):
        raise ProtocolError(
            f"wire messages must be JSON arrays, got {type(message).__name__}"
        )
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > max_frame_bytes:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the {max_frame_bytes}-byte limit"
        )
    return struct.pack("!I", len(body)) + body


class FrameDecoder:
    """Incremental frame decoder over an arbitrary byte stream.

    Feed whatever the socket produced — bytes arrive torn at any boundary —
    and pull complete frames out as they become decodable.  An oversized
    length prefix raises :class:`ProtocolError` immediately (before any
    body bytes are read), so a corrupt stream cannot demand an unbounded
    allocation.
    """

    def __init__(self, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> None:
        self._buffer = bytearray()
        self._max_frame_bytes = max_frame_bytes

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    def next_frame(self) -> Optional[Any]:
        """The next complete frame, or None until more bytes arrive."""
        if len(self._buffer) < 4:
            return None
        (length,) = struct.unpack_from("!I", self._buffer)
        if length > self._max_frame_bytes:
            raise ProtocolError(
                f"incoming frame of {length} bytes exceeds the "
                f"{self._max_frame_bytes}-byte limit"
            )
        if len(self._buffer) < 4 + length:
            return None
        body = bytes(self._buffer[4 : 4 + length])
        del self._buffer[: 4 + length]
        message = json.loads(body.decode("utf-8"))
        if not isinstance(message, list):
            raise ProtocolError(
                f"wire messages must be JSON arrays, got {type(message).__name__}"
            )
        return message


_HEARTBEAT_FRAME = encode_frame(["hb"])


async def _read_frame(
    reader: asyncio.StreamReader, max_frame_bytes: int
) -> Any:
    """Worker-side frame read (exact, so torn writes just wait for bytes)."""
    header = await reader.readexactly(4)
    (length,) = struct.unpack("!I", header)
    if length > max_frame_bytes:
        raise ProtocolError(
            f"incoming frame of {length} bytes exceeds the "
            f"{max_frame_bytes}-byte limit"
        )
    body = await reader.readexactly(length)
    message = json.loads(body.decode("utf-8"))
    if not isinstance(message, list):
        raise ProtocolError(
            f"wire messages must be JSON arrays, got {type(message).__name__}"
        )
    return message


def _parse_address(address: str) -> Tuple[str, int]:
    """``host:port`` (IPv6 hosts may be bracketed) -> (host, port)."""
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"worker address must look like host:port, got {address!r}"
        )
    return host.strip("[]") or "127.0.0.1", int(port)


# ----------------------------------------------------------------------
# worker host (asyncio server)
# ----------------------------------------------------------------------
class _WorkerSession:
    """Per-connection shard state on a worker host.

    One :class:`_WorkerState` *bundle* per ``load`` command — the initial
    snapshot plus one per re-assignment — each holding whole components, so
    bundles never interact.  Routing by order position picks the bundle; the
    broadcast commands (sweep/frontier/stats/...) merge across bundles
    exactly as the coordinator merges across workers.
    """

    def __init__(self) -> None:
        self.worker_id: Optional[int] = None
        self._bundles: Dict[int, _WorkerState] = {}
        self._bundle_of: Dict[int, _WorkerState] = {}
        self._frontiers: Dict[int, List[int]] = {}
        self._next_bundle = 0

    # -- command handlers ---------------------------------------------
    def load(self, bundle: dict, policy_value: str, events: List[list]) -> int:
        from .engine import _unpack_ints  # lazy: engine imports this module

        positions = list(_unpack_ints(bundle["pos"]))
        entries = [
            (gpos, Pair(left, right))
            for gpos, left, right in zip(positions, bundle["left"], bundle["right"])
        ]
        state = _WorkerState(entries, ConflictPolicy(policy_value))
        for event in events:
            kind = event[0]
            if kind == "a":
                state.answer(event[1], event[2])
            elif kind == "d":
                state.deduced(event[1], event[2])
            elif kind == "p":
                state.publish(event[1], event[2])
            elif kind == "w":
                state.withhold(event[1])
            else:  # pragma: no cover - coordinator never sends others
                raise ProtocolError(f"unknown replay event kind {kind!r}")
        key = self._next_bundle
        self._next_bundle += 1
        self._bundles[key] = state
        self._frontiers[key] = []
        for gpos in positions:
            self._bundle_of[gpos] = state
        return len(entries)

    def answer(self, gpos: int, code: int) -> list:
        applied, conflict = self._bundle_of[gpos].answer(gpos, code)
        packed = (
            None
            if conflict is None
            else [_CODE_OF[conflict.label], _CODE_OF[conflict.implied]]
        )
        return [applied, packed]

    def deduced(self, gpos: int, code: int) -> None:
        self._bundle_of[gpos].deduced(gpos, code)

    def _grouped(self, positions: Sequence[int]) -> List[Tuple[_WorkerState, List[int]]]:
        groups: Dict[int, Tuple[_WorkerState, List[int]]] = {}
        for gpos in positions:
            state = self._bundle_of[gpos]
            groups.setdefault(id(state), (state, []))[1].append(gpos)
        return list(groups.values())

    def publish(self, positions: Sequence[int], withhold: bool) -> None:
        for state, group in self._grouped(positions):
            state.publish(group, withhold)

    def withhold(self, positions: Sequence[int]) -> None:
        for state, group in self._grouped(positions):
            state.withhold(group)

    def sweep(self) -> List[List[int]]:
        runs = [state.sweep() for state in self._bundles.values()]
        runs = [run for run in runs if run]
        if not runs:
            return []
        if len(runs) == 1:
            return [list(item) for item in runs[0]]
        return [list(item) for item in heapq.merge(*runs)]

    def frontier(self) -> Union[str, List[int]]:
        changed = False
        for key, state in self._bundles.items():
            reply = state.frontier()
            if reply != _UNCHANGED:
                self._frontiers[key] = reply
                changed = True
        if not changed:
            return _UNCHANGED
        runs = [run for run in self._frontiers.values() if run]
        if not runs:
            return []
        if len(runs) == 1:
            return list(runs[0])
        return list(heapq.merge(*runs))

    def deduce(self, left: Hashable, right: Hashable) -> Optional[int]:
        pair = Pair(left, right)
        for state in self._bundles.values():
            code = state.deduce(pair)
            if code is not None:
                return code
        return None

    def contains(self, obj: Hashable) -> bool:
        return any(state.contains(obj) for state in self._bundles.values())

    def stats(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for state in self._bundles.values():
            for key, value in state.stats().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def clusters(self) -> List[List[Hashable]]:
        out: List[List[Hashable]] = []
        for state in self._bundles.values():
            out.extend(sorted(cluster, key=repr) for cluster in state.clusters())
        return out

    def check(self) -> None:
        for state in self._bundles.values():
            state.check()


class ShardWorkerHost:
    """A TCP server hosting shard worker sessions (one per connection).

    Args:
        host / port: bind address; port 0 picks a free port (readable from
            :attr:`port` once serving, and reported via ``ready_callback``).
        fault_hook: test-only callable ``(worker_id, command_name)`` invoked
            before each command is handled — raising models a handler error
            (shipped to the coordinator), ``os._exit`` models a crash, and
            ``time.sleep`` past the coordinator's heartbeat timeout models a
            hang (the sleeping handler starves this session's heartbeat).
            Must be picklable when the host is spawned as a child process.
        max_frame_bytes: oversized-frame rejection limit.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        fault_hook: Optional[Callable[[Optional[int], str], None]] = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self.host = host
        self.port = port
        self._fault_hook = fault_hook
        self._max_frame_bytes = max_frame_bytes
        self._server: Optional[asyncio.AbstractServer] = None

    async def serve(
        self, *, ready_callback: Optional[Callable[[int], None]] = None
    ) -> None:
        """Bind, report the bound port, and serve sessions until cancelled."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if ready_callback is not None:
            ready_callback(self.port)
        async with self._server:
            await self._server.serve_forever()

    async def _heartbeat(self, writer: asyncio.StreamWriter, interval: float) -> None:
        """Idle keepalive.  Never drained: a backpressured connection must
        not wedge this task, and a blocked event loop (busy handler) simply
        stops scheduling it — which the coordinator reads as a hang."""
        try:
            while True:
                await asyncio.sleep(interval)
                transport = writer.transport
                if transport is None or transport.is_closing():
                    return
                if transport.get_write_buffer_size() < 1 << 16:
                    writer.write(_HEARTBEAT_FRAME)
        except (asyncio.CancelledError, ConnectionError):  # pragma: no cover
            return

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session = _WorkerSession()
        heartbeat_task: Optional[asyncio.Task] = None
        try:
            writer.write(encode_frame([_HELLO, PROTOCOL_VERSION, os.getpid()]))
            await writer.drain()
            while True:
                try:
                    frame = await _read_frame(reader, self._max_frame_bytes)
                except (
                    asyncio.IncompleteReadError,
                    ConnectionError,
                    ProtocolError,
                    json.JSONDecodeError,
                ):
                    return  # coordinator gone or stream corrupt: drop session
                name = frame[0]
                if name == "hb":
                    continue
                seq = frame[1]
                if name == "init":
                    session.worker_id = frame[2]
                    if heartbeat_task is None:
                        heartbeat_task = asyncio.create_task(
                            self._heartbeat(writer, float(frame[3]))
                        )
                    writer.write(encode_frame(["ok", seq, None]))
                    await writer.drain()
                    continue
                if name == "stop":
                    writer.write(encode_frame(["ok", seq, None]))
                    await writer.drain()
                    return
                try:
                    if self._fault_hook is not None:
                        self._fault_hook(session.worker_id, name)
                    handler = getattr(session, name, None)
                    if handler is None or name.startswith("_"):
                        raise ProtocolError(f"unknown command {name!r}")
                    payload = handler(*frame[2:])
                except Exception as exc:  # shipped to the coordinator
                    reply = ["exc", seq, type(exc).__name__, str(exc)]
                else:
                    reply = ["ok", seq, payload]
                try:
                    writer.write(encode_frame(reply, self._max_frame_bytes))
                    await writer.drain()
                except ConnectionError:
                    return
        finally:
            if heartbeat_task is not None:
                heartbeat_task.cancel()
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass


def _local_worker_host_main(conn, fault_hook, max_frame_bytes: int) -> None:
    """Child-process entry point for ``spawn_local_workers``: serve on a
    fresh loopback port and report it through the pipe once bound."""

    def report(port: int) -> None:
        conn.send(port)
        conn.close()

    host = ShardWorkerHost(
        "127.0.0.1", 0, fault_hook=fault_hook, max_frame_bytes=max_frame_bytes
    )
    try:
        asyncio.run(host.serve(ready_callback=report))
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass


# ----------------------------------------------------------------------
# coordinator (blocking sockets; usable from inside a running event loop)
# ----------------------------------------------------------------------
class _WorkerDied(Exception):
    """Internal control flow: a worker was detected dead mid-operation."""

    def __init__(self, link: "_WorkerLink", reason: str) -> None:
        super().__init__(reason)
        self.link = link
        self.reason = reason


@dataclass
class _WorkerLink:
    worker_id: int
    address: Tuple[str, int]
    sock: Optional[socket.socket]
    decoder: FrameDecoder
    pid: Optional[int] = None
    process: Optional["multiprocessing.process.BaseProcess"] = None
    seq: int = 0
    last_heard: float = 0.0
    alive: bool = True
    n_pairs: int = 0
    roots: Set[Hashable] = field(default_factory=set)


def _shutdown_links(links: List[_WorkerLink]) -> None:
    """Best-effort shutdown shared by close() and the GC finalizer.  Sends
    ``stop`` without waiting for acknowledgements — shutdown never hangs on
    a dead or wedged worker — then reaps any local child processes."""
    for link in links:
        if link.sock is None:
            continue
        try:
            link.sock.settimeout(0.5)
            link.seq += 1
            link.sock.sendall(encode_frame(["stop", link.seq]))
        except OSError:
            pass
    for link in links:
        if link.sock is not None:
            try:
                link.sock.close()
            except OSError:  # pragma: no cover - already closed
                pass
            link.sock = None
    for link in links:
        process = link.process
        if process is None:
            continue
        process.terminate()
        process.join(timeout=2.0)
        if process.is_alive():  # pragma: no cover - stuck worker
            process.kill()
            process.join(timeout=1.0)


class ShardCoordinator:
    """The ``ProcessShardExecutor`` engine surface over socket-attached
    workers, with re-assignment on worker loss.

    The labeling order is partitioned by static candidate-graph component and
    whole components are assigned to workers greedily (largest first onto the
    least-loaded worker — deterministic), exactly as the in-process pool.
    Each worker receives its components once as a snapshot bundle; hot-path
    messages carry only order positions and label codes.

    Unlike the pipe executor, a worker death does not poison the campaign:
    the coordinator re-ships the dead worker's components (static entries +
    the committed per-component event log) to the survivors and replays the
    in-flight command.  See the module docstring for the exact contract.

    Args:
        order: the labeling order (object ids must be JSON scalars).
        positions: optional pair -> order position map (reuses the engine's).
        policy: conflict policy for the workers' deduction graphs.
        workers: ``"host:port"`` addresses of running
            :class:`ShardWorkerHost` processes to connect to.
        spawn_local_workers: additionally spawn this many loopback worker
            hosts as child processes (the tests/examples convenience).  When
            neither knob is given, spawns ``min(cpus, 8)`` local workers.
        heartbeat_interval: keepalive cadence workers are instructed to use.
        heartbeat_timeout: heartbeat silence after which a worker is declared
            dead while a command is in flight.  Bounds single-handler compute
            time — see :data:`DEFAULT_HEARTBEAT_TIMEOUT`.
        response_timeout: hard per-command reply deadline (a worker that
            heartbeats but never replies is declared dead too).
        connect_timeout: TCP connect + handshake deadline per worker.
        fault_hook: test-only callable ``(worker_id, command_name)`` invoked
            before each command frame is sent — the coordinator-side
            transport injection point (close the socket, SIGKILL the worker,
            ...).  Worker-side injection is ``ShardWorkerHost(fault_hook=)``,
            forwarded to spawned locals via ``worker_fault_hook``.
        worker_fault_hook: forwarded to spawned local worker hosts (must be
            picklable under the spawn start method).
        mp_start_method: start method for spawned local workers.
        max_frame_bytes: oversized-frame rejection limit.
    """

    def __init__(
        self,
        order: Sequence[Union[Pair, CandidatePair]],
        *,
        positions: Optional[Dict[Pair, int]] = None,
        policy: ConflictPolicy = ConflictPolicy.STRICT,
        workers: Optional[Sequence[str]] = None,
        spawn_local_workers: Optional[int] = None,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        response_timeout: float = 600.0,
        connect_timeout: float = 10.0,
        fault_hook: Optional[Callable[[int, str], None]] = None,
        worker_fault_hook: Optional[Callable[[Optional[int], str], None]] = None,
        mp_start_method: Optional[str] = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    ) -> None:
        self._pairs = _as_pairs(order)
        for pair in self._pairs:
            for obj in (pair.left, pair.right):
                if not isinstance(obj, _SCALAR_TYPES):
                    raise TypeError(
                        "the distributed backend ships object ids as JSON "
                        f"and requires scalar ids (str/int/float/bool/None), "
                        f"got {type(obj).__name__}: {obj!r}"
                    )
        if positions is None:
            positions = {pair: i for i, pair in enumerate(self._pairs)}
        self._position = positions
        self._policy = policy
        self._heartbeat_interval = heartbeat_interval
        self._heartbeat_timeout = heartbeat_timeout
        self._response_timeout = response_timeout
        self._connect_timeout = connect_timeout
        self._fault_hook = fault_hook
        self._max_frame_bytes = max_frame_bytes
        self._failure: Optional[str] = None
        self._closed = False
        #: Chronological FIRST_WINS conflicts, coordinator-side.
        self.conflicts: List[Conflict] = []
        #: One record per worker-loss recovery (for tests and diagnostics).
        self.reassignments: List[Dict[str, Any]] = []

        components = UnionFind()
        for pair in self._pairs:
            components.union(pair.left, pair.right)
        self._components = components
        grouped: Dict[Hashable, List[Tuple[int, Pair]]] = {}
        for gpos, pair in enumerate(self._pairs):
            grouped.setdefault(components.find(pair.left), []).append((gpos, pair))
        self._entries_of_root = grouped
        self.n_components = len(grouped)
        self._log_of_root: Dict[Hashable, List[list]] = {
            root: [] for root in grouped
        }

        addresses = [_parse_address(address) for address in (workers or [])]
        n_spawn = spawn_local_workers or 0
        if n_spawn < 0:
            raise ValueError(f"spawn_local_workers must be >= 0, got {n_spawn}")
        if not addresses and not n_spawn:
            n_spawn = min(available_cpus(), _MAX_DEFAULT_WORKERS)
        n_workers = len(addresses) + n_spawn
        n_workers = min(n_workers, self.n_components)
        self.n_workers = n_workers
        addresses = addresses[:n_workers]
        n_spawn = n_workers - len(addresses)

        # Greedy balanced assignment, identical to the pipe executor.
        assigned_roots: List[List[Hashable]] = [[] for _ in range(n_workers)]
        self._worker_of_root: Dict[Hashable, int] = {}
        if n_workers:
            ranked = sorted(
                grouped.items(), key=lambda item: (-len(item[1]), item[1][0][0])
            )
            load: List[Tuple[int, int]] = [(0, wid) for wid in range(n_workers)]
            heapq.heapify(load)
            for root, entries in ranked:
                n_pairs, wid = heapq.heappop(load)
                assigned_roots[wid].append(root)
                self._worker_of_root[root] = wid
                heapq.heappush(load, (n_pairs + len(entries), wid))

        self._links: Dict[int, _WorkerLink] = {}
        self._worker_frontiers: Dict[int, List[int]] = {}
        spawned: List[Tuple["multiprocessing.process.BaseProcess", Any]] = []
        try:
            if n_spawn:
                if mp_start_method is None:
                    methods = multiprocessing.get_all_start_methods()
                    mp_start_method = "fork" if "fork" in methods else "spawn"
                ctx = multiprocessing.get_context(mp_start_method)
                for index in range(n_spawn):
                    parent_conn, child_conn = ctx.Pipe()
                    process = ctx.Process(
                        target=_local_worker_host_main,
                        args=(child_conn, worker_fault_hook, max_frame_bytes),
                        name=f"repro-shard-host-{index}",
                        daemon=True,
                    )
                    process.start()
                    child_conn.close()
                    spawned.append((process, parent_conn))
                for process, parent_conn in spawned:
                    if not parent_conn.poll(self._connect_timeout):
                        raise ShardWorkerError(
                            f"local worker host pid {process.pid} did not "
                            f"report a port within {self._connect_timeout:.0f}s"
                        )
                    addresses.append(("127.0.0.1", parent_conn.recv()))
                    parent_conn.close()

            for wid, address in enumerate(addresses):
                process = spawned[wid - (n_workers - n_spawn)][0] if (
                    wid >= n_workers - n_spawn
                ) else None
                link = self._connect(wid, address, process)
                self._links[wid] = link
                self._worker_frontiers[wid] = []

            # Initial snapshot shipment; a worker lost here already goes
            # through the normal re-assignment path.
            failures: List[_WorkerDied] = []
            for wid, roots in enumerate(assigned_roots):
                link = self._links[wid]
                try:
                    self._load_roots(link, roots)
                except _WorkerDied as died:
                    failures.append(died)
                    continue
                for root in roots:
                    link.roots.add(root)
                    link.n_pairs += len(grouped[root])
            for died in failures:
                for root in assigned_roots[died.link.worker_id]:
                    # never loaded anywhere: make them the dead link's to move
                    died.link.roots.add(root)
                self._recover(died.link, died.reason)
        except BaseException:
            _shutdown_links(list(self._links.values()))
            for process, parent_conn in spawned:
                if all(link.process is not process for link in self._links.values()):
                    process.terminate()
                    process.join(timeout=2.0)
            raise
        self._finalizer = weakref.finalize(
            self, _shutdown_links, list(self._links.values())
        )

    # ------------------------------------------------------------------
    # transport plumbing
    # ------------------------------------------------------------------
    def _connect(
        self,
        worker_id: int,
        address: Tuple[str, int],
        process: Optional["multiprocessing.process.BaseProcess"],
    ) -> _WorkerLink:
        try:
            sock = socket.create_connection(address, timeout=self._connect_timeout)
        except OSError as exc:
            raise ShardWorkerError(
                f"could not connect to shard worker {worker_id} at "
                f"{address[0]}:{address[1]}: {exc}"
            ) from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(_POLL_INTERVAL)
        link = _WorkerLink(
            worker_id=worker_id,
            address=address,
            sock=sock,
            decoder=FrameDecoder(self._max_frame_bytes),
            process=process,
            last_heard=time.monotonic(),
        )
        try:
            hello = self._recv_frame(link, _HELLO, deadline_override=self._connect_timeout)
            if hello[0] != _HELLO or hello[1] != PROTOCOL_VERSION:
                raise ProtocolError(
                    f"worker {worker_id} spoke protocol {hello[:2]!r}, "
                    f"expected ['hello', {PROTOCOL_VERSION}]"
                )
            link.pid = hello[2]
            kind, payload = self._recv_payload(
                link, "init", self._send_command(link, "init", [worker_id, self._heartbeat_interval])
            )
            if kind != "ok":
                raise payload
        except (_WorkerDied, ProtocolError) as exc:
            sock.close()
            raise ShardWorkerError(
                f"handshake with shard worker {worker_id} at "
                f"{address[0]}:{address[1]} failed: {exc}"
            ) from exc
        return link

    def _ensure_usable(self) -> None:
        if self._closed:
            raise ShardWorkerError("ShardCoordinator is closed")
        if self._failure is not None:
            raise ShardWorkerError(self._failure)

    def _fail(self, message: str) -> ShardWorkerError:
        self._failure = message
        return ShardWorkerError(message)

    def _send_command(self, link: _WorkerLink, name: str, args: Sequence) -> int:
        """Frame and send one command; returns its sequence number."""
        if self._fault_hook is not None:
            self._fault_hook(link.worker_id, name)
        link.seq += 1
        frame = encode_frame([name, link.seq, *args], self._max_frame_bytes)
        if link.sock is None:
            raise _WorkerDied(link, self._death_message(link, name, "connection closed"))
        try:
            link.sock.settimeout(self._response_timeout)
            link.sock.sendall(frame)
        except OSError as exc:
            raise _WorkerDied(
                link, self._death_message(link, name, f"send failed: {exc}")
            ) from None
        finally:
            if link.sock is not None:
                try:
                    link.sock.settimeout(_POLL_INTERVAL)
                except OSError:  # pragma: no cover - closed concurrently
                    pass
        return link.seq

    def _death_message(self, link: _WorkerLink, command: str, cause: str) -> str:
        return (
            f"shard worker {link.worker_id} at "
            f"{link.address[0]}:{link.address[1]} (pid {link.pid}, "
            f"{len(link.roots)} components / {link.n_pairs} pairs) was lost "
            f"while handling {command!r}: {cause}"
        )

    def _recv_frame(
        self,
        link: _WorkerLink,
        command_name: str,
        *,
        deadline_override: Optional[float] = None,
    ) -> Any:
        """One frame, liveness-checked while waiting: EOF, reset, heartbeat
        silence, and the reply deadline all surface as :class:`_WorkerDied`
        (never a hang)."""
        deadline = time.monotonic() + (
            self._response_timeout if deadline_override is None else deadline_override
        )
        while True:
            try:
                frame = link.decoder.next_frame()
            except (ProtocolError, json.JSONDecodeError) as exc:
                raise _WorkerDied(
                    link, self._death_message(link, command_name, f"bad frame: {exc}")
                ) from None
            if frame is not None:
                link.last_heard = time.monotonic()
                return frame
            if link.sock is None:
                raise _WorkerDied(
                    link,
                    self._death_message(link, command_name, "connection closed"),
                )
            try:
                chunk = link.sock.recv(1 << 20)
            except socket.timeout:
                now = time.monotonic()
                if now - link.last_heard > self._heartbeat_timeout:
                    raise _WorkerDied(
                        link,
                        self._death_message(
                            link,
                            command_name,
                            f"no heartbeat for {self._heartbeat_timeout:.1f}s",
                        ),
                    ) from None
                if now > deadline:
                    raise _WorkerDied(
                        link,
                        self._death_message(
                            link, command_name, "reply deadline exceeded"
                        ),
                    ) from None
                continue
            except OSError as exc:
                raise _WorkerDied(
                    link,
                    self._death_message(link, command_name, f"recv failed: {exc}"),
                ) from None
            if not chunk:
                raise _WorkerDied(
                    link,
                    self._death_message(link, command_name, "connection dropped"),
                ) from None
            link.last_heard = time.monotonic()
            link.decoder.feed(chunk)

    def _recv_payload(
        self, link: _WorkerLink, command_name: str, seq: int
    ) -> Tuple[str, Any]:
        """The reply to command ``seq``: ``("ok", payload)`` or ``("exc",
        exception_instance)`` — heartbeats are consumed along the way."""
        while True:
            frame = self._recv_frame(link, command_name)
            if frame[0] == "hb":
                continue
            kind, reply_seq = frame[0], frame[1]
            if reply_seq != seq or kind not in ("ok", "exc"):
                raise _WorkerDied(
                    link,
                    self._death_message(
                        link,
                        command_name,
                        f"protocol desync (got {kind!r} seq {reply_seq}, "
                        f"expected seq {seq})",
                    ),
                )
            if kind == "ok":
                return "ok", frame[2]
            exc_type = _EXC_TYPES.get(frame[2])
            if exc_type is None:
                return "exc", RuntimeError(f"{frame[2]}: {frame[3]}")
            return "exc", exc_type(frame[3])

    def _request(self, link: _WorkerLink, name: str, args: Sequence = ()) -> Any:
        seq = self._send_command(link, name, args)
        kind, payload = self._recv_payload(link, name, seq)
        if kind == "exc":
            raise payload
        return payload

    # ------------------------------------------------------------------
    # death, recovery, re-assignment
    # ------------------------------------------------------------------
    def _note_death(self, link: _WorkerLink, reason: str) -> None:
        if not link.alive:
            return
        link.alive = False
        if link.sock is not None:
            try:
                link.sock.close()
            except OSError:  # pragma: no cover
                pass
            link.sock = None
        if link.process is not None:
            # A local worker declared dead must actually die (it may merely
            # be wedged): kill it so it cannot write stale frames later.
            link.process.kill()
            link.process.join(timeout=2.0)
        self._worker_frontiers.pop(link.worker_id, None)

    def _encode_bundle(self, roots: Sequence[Hashable]) -> Tuple[dict, List[list]]:
        from .engine import _pack_ints  # lazy: engine imports this module

        entries: List[Tuple[int, Pair]] = []
        events: List[list] = []
        for root in roots:
            entries.extend(self._entries_of_root[root])
            events.extend(self._log_of_root[root])
        entries.sort()  # _WorkerState expects ascending order positions
        bundle = {
            "pos": _pack_ints([gpos for gpos, _ in entries]),
            "left": [pair.left for _, pair in entries],
            "right": [pair.right for _, pair in entries],
        }
        return bundle, events

    def _load_roots(self, link: _WorkerLink, roots: Sequence[Hashable]) -> None:
        if not roots:
            return
        bundle, events = self._encode_bundle(roots)
        self._request(link, "load", [bundle, self._policy.value, events])

    def _recover(self, dead: _WorkerLink, reason: str) -> Set[int]:
        """Re-ship a dead worker's components to the survivors.

        Returns the worker ids that received new bundles (their cached
        broadcast replies are stale).  Raises the poisoning
        :class:`ShardWorkerError` when no workers survive.
        """
        self._note_death(dead, reason)
        homeless = list(dead.roots)
        dead.roots = set()
        touched: Set[int] = set()
        moved_components = len(homeless)
        moved_pairs = sum(len(self._entries_of_root[root]) for root in homeless)
        while homeless:
            survivors = [link for link in self._links.values() if link.alive]
            if not survivors:
                raise self._fail(
                    f"no shard workers survive; last loss: {reason}"
                )
            # Largest components first onto the least-loaded survivor — the
            # same deterministic greedy rule as the initial assignment.
            homeless.sort(
                key=lambda root: (
                    -len(self._entries_of_root[root]),
                    self._entries_of_root[root][0][0],
                )
            )
            plan: Dict[int, List[Hashable]] = {}
            load = {link.worker_id: link.n_pairs for link in survivors}
            for root in homeless:
                wid = min(load, key=lambda w: (load[w], w))
                plan.setdefault(wid, []).append(root)
                load[wid] += len(self._entries_of_root[root])
            homeless = []
            for wid, roots in plan.items():
                link = self._links[wid]
                try:
                    self._load_roots(link, roots)
                except _WorkerDied as died:
                    self._note_death(died.link, died.reason)
                    homeless.extend(roots)
                    homeless.extend(died.link.roots)
                    died.link.roots = set()
                    touched.discard(wid)
                    continue
                for root in roots:
                    link.roots.add(root)
                    link.n_pairs += len(self._entries_of_root[root])
                    self._worker_of_root[root] = wid
                touched.add(wid)
        self.reassignments.append(
            {
                "worker_id": dead.worker_id,
                "reason": reason,
                "moved_components": moved_components,
                "moved_pairs": moved_pairs,
                "targets": sorted(touched),
            }
        )
        return touched

    def _routed_request(self, root: Hashable, name: str, args: Sequence) -> Any:
        """Send a single-owner command, recovering and re-routing on loss."""
        self._ensure_usable()
        for _ in range(len(self._links) + 2):
            link = self._links[self._worker_of_root[root]]
            try:
                return self._request(link, name, args)
            except _WorkerDied as died:
                self._recover(died.link, died.reason)
        raise self._fail(
            f"worker re-assignment did not converge while retrying {name!r}"
        )

    def _broadcast(
        self, name: str, args: Sequence = (), accumulate: bool = False
    ) -> Dict[int, Any]:
        """Send ``name`` to every live worker and gather one reply each.

        Workers lost mid-broadcast are recovered and the command is re-sent
        to every worker that received re-shipped components (and, for
        non-``accumulate`` commands, polled fresh).  With ``accumulate``
        (the sweep), a re-polled worker's earlier reply is *kept* and the
        re-poll only adds what its new bundles resolve — its own components
        already applied the first reply internally — while a reply from a
        worker that later died is *dropped*: those resolutions were never
        committed, and its components' new owner re-derives them.
        """
        self._ensure_usable()
        collected: Dict[int, Any] = {}
        done: Set[int] = set()
        pending_exc: Optional[BaseException] = None
        for _ in range(len(self._links) + 2):
            targets = [
                link
                for link in self._links.values()
                if link.alive and link.worker_id not in done
            ]
            if not targets:
                if pending_exc is not None:
                    raise pending_exc
                return collected
            sent: List[Tuple[_WorkerLink, int]] = []
            deaths: List[_WorkerDied] = []
            for link in targets:
                try:
                    sent.append((link, self._send_command(link, name, args)))
                except _WorkerDied as died:
                    deaths.append(died)
            # Consume every outstanding reply before raising anything, so a
            # shipped handler error cannot desync sibling request streams.
            for link, seq in sent:
                try:
                    kind, payload = self._recv_payload(link, name, seq)
                except _WorkerDied as died:
                    deaths.append(died)
                    continue
                if kind == "exc":
                    pending_exc = payload
                    done.add(link.worker_id)
                    continue
                if accumulate:
                    collected.setdefault(link.worker_id, []).append(payload)
                else:
                    collected[link.worker_id] = payload
                done.add(link.worker_id)
            for died in deaths:
                collected.pop(died.link.worker_id, None)
                done.discard(died.link.worker_id)
                touched = self._recover(died.link, died.reason)
                done -= touched
                if not accumulate:
                    for wid in touched:
                        collected.pop(wid, None)
        raise self._fail(
            f"worker re-assignment did not converge while broadcasting {name!r}"
        )

    def _root_of(self, pair: Pair) -> Hashable:
        gpos = self._position.get(pair)
        if gpos is None:
            raise ValueError(
                f"{pair!r} is not in the labeling order: the distributed "
                "backend routes events by order position and cannot place "
                "foreign pairs"
            )
        return self._components.find(pair.left)

    # ------------------------------------------------------------------
    # the engine-facing surface (duck-typed to ProcessShardExecutor)
    # ------------------------------------------------------------------
    def record_answer(self, pair: Pair, label: Label) -> bool:
        """Apply a crowd answer on the owning worker; commits to the
        authoritative log only after the worker acknowledged it."""
        root = self._root_of(pair)
        gpos = self._position[pair]
        code = _CODE_OF[label]
        applied, conflict = self._routed_request(root, "answer", [gpos, code])
        self._log_of_root[root].append(["a", gpos, code])
        if conflict is not None:
            self.conflicts.append(
                Conflict(pair, _LABEL_OF[conflict[0]], _LABEL_OF[conflict[1]])
            )
        return applied

    def record_deduced(self, pair: Pair, label: Label) -> None:
        """A deduction decided in the parent (sequential visit-time path)."""
        root = self._root_of(pair)
        gpos = self._position[pair]
        code = _CODE_OF[label]
        self._routed_request(root, "deduced", [gpos, code])
        self._log_of_root[root].append(["d", gpos, code])

    def _routed_positions(
        self, pairs: Sequence[Pair]
    ) -> Dict[Hashable, List[int]]:
        by_root: Dict[Hashable, List[int]] = {}
        for pair in pairs:
            by_root.setdefault(self._root_of(pair), []).append(
                self._position[pair]
            )
        return by_root

    def _fan_out_positions(
        self, name: str, pairs: Sequence[Pair], extra: Sequence, event: str
    ) -> None:
        self._ensure_usable()
        remaining = self._routed_positions(pairs)
        for _ in range(len(self._links) + 2):
            if not remaining:
                return
            by_wid: Dict[int, List[Hashable]] = {}
            for root in remaining:
                by_wid.setdefault(self._worker_of_root[root], []).append(root)
            for wid, roots in by_wid.items():
                link = self._links[wid]
                positions = [g for root in roots for g in remaining[root]]
                try:
                    self._request(link, name, [positions, *extra])
                except _WorkerDied as died:
                    self._recover(died.link, died.reason)
                    break  # routing changed: regroup what's left
                for root in roots:
                    self._log_of_root[root].append(
                        [event, remaining.pop(root), *extra]
                    )
        if remaining:
            raise self._fail(
                f"worker re-assignment did not converge while retrying {name!r}"
            )

    def publish(self, pairs: Sequence[Pair], *, withhold: bool) -> None:
        """Mark ``pairs`` published (and optionally withheld from the sweep)
        on their owning workers."""
        self._fan_out_positions("publish", pairs, [withhold], "p")

    def withhold(self, pairs: Sequence[Pair]) -> None:
        """Take already-published pairs out of the workers' deduction sweeps."""
        self._fan_out_positions("withhold", pairs, [], "w")

    def sweep(self) -> List[Tuple[Pair, Label]]:
        """Run the incremental deduction sweep on every worker; returns newly
        resolved (pair, label) in global order position.  Resolutions commit
        to the event log here — their workers already applied them."""
        collected = self._broadcast("sweep", accumulate=True)
        runs = [run for replies in collected.values() for run in replies if run]
        if not runs:
            return []
        merged = heapq.merge(*runs) if len(runs) > 1 else iter(runs[0])
        out: List[Tuple[Pair, Label]] = []
        for gpos, code in merged:
            pair = self._pairs[gpos]
            self._log_of_root[self._components.find(pair.left)].append(
                ["d", gpos, code]
            )
            out.append((pair, _LABEL_OF[code]))
        return out

    def frontier(self) -> List[Pair]:
        """The current must-crowdsource frontier, in order position.  Workers
        reply with fresh position lists or an "unchanged" marker, and the
        coordinator merges its per-worker caches — re-assigned components
        always arrive dirty, so a recovered worker's next reply is fresh."""
        collected = self._broadcast("frontier")
        for wid, payload in collected.items():
            if payload != _UNCHANGED:
                self._worker_frontiers[wid] = payload
        runs = [run for run in self._worker_frontiers.values() if run]
        if not runs:
            return []
        if len(runs) == 1:
            return [self._pairs[gpos] for gpos in runs[0]]
        return [self._pairs[gpos] for gpos in heapq.merge(*runs)]

    def deduce(self, pair: Pair) -> Optional[Label]:
        """Algorithm-1 deduction, routed to the owning worker (cross-worker
        pairs are ``None`` without any messaging, as in-process sharding)."""
        left, right = pair.left, pair.right
        if left not in self._components or right not in self._components:
            return None
        root = self._components.find(left)
        if root != self._components.find(right):
            return None
        code = self._routed_request(root, "deduce", [left, right])
        return None if code is None else _LABEL_OF[code]

    def contains_object(self, obj: Hashable) -> bool:
        """True iff some applied answer mentioned ``obj``."""
        if obj not in self._components:
            return False
        root = self._components.find(obj)
        return bool(self._routed_request(root, "contains", [obj]))

    def stats(self) -> Dict[str, int]:
        """Aggregated graph statistics across all workers."""
        totals = {
            "n_shards": 0,
            "n_objects": 0,
            "n_clusters": 0,
            "n_matching_edges": 0,
            "n_non_matching_edges": 0,
            "n_components": 0,
        }
        for reply in self._broadcast("stats").values():
            for key, value in reply.items():
                totals[key] += value
        return totals

    def clusters(self) -> List[Set[Hashable]]:
        """All clusters across all workers."""
        out: List[Set[Hashable]] = []
        for reply in self._broadcast("clusters").values():
            out.extend(set(cluster) for cluster in reply)
        return out

    def check_invariants(self) -> None:
        """Run every worker's graph/index invariant checks (for tests)."""
        self._broadcast("check")

    def worker_pids(self) -> List[int]:
        """Pids of the live workers, in worker-id order (for tests, chaos
        injection, and diagnostics).  Remote workers report their pid at the
        hello handshake."""
        return [
            link.pid
            for _, link in sorted(self._links.items())
            if link.alive and link.pid is not None
        ]

    def live_worker_ids(self) -> List[int]:
        """Worker ids still serving components, in id order."""
        return sorted(wid for wid, link in self._links.items() if link.alive)

    def drop_connection(self, worker_id: int) -> None:
        """Sever the TCP connection to ``worker_id`` without telling it —
        the sanctioned fault-injection surface for "network died
        mid-command" chaos tests.  The next interaction detects the loss
        and triggers re-assignment."""
        link = self._links[worker_id]
        if link.sock is not None:
            link.sock.close()
            link.sock = None

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop workers and reap local child processes.  Idempotent, and
        never hangs: ``stop`` is fire-and-forget and child reaping escalates
        terminate -> kill on a bounded clock."""
        if self._closed:
            return
        self._closed = True
        self._finalizer()  # runs _shutdown_links exactly once

    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self._closed:
            state = "closed"
        else:
            state = f"{len(self.live_worker_ids())}/{self.n_workers} workers live"
        return (
            f"ShardCoordinator({len(self._pairs)} pairs, "
            f"{self.n_components} components, {state})"
        )


# ----------------------------------------------------------------------
# CLI: python -m repro.engine.distributed --worker host:port
# ----------------------------------------------------------------------
def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine.distributed",
        description=(
            "Run a shard worker host: binds host:port and serves shard "
            "sessions for ShardCoordinator connections (one independent "
            "session per connection)."
        ),
    )
    parser.add_argument(
        "--worker",
        metavar="HOST:PORT",
        required=True,
        help="bind address; port 0 picks a free port (printed once bound)",
    )
    args = parser.parse_args(argv)
    host, port = _parse_address(args.worker)
    worker = ShardWorkerHost(host, port)

    def announce(bound_port: int) -> None:
        print(f"shard worker listening on {host}:{bound_port}", flush=True)

    try:
        asyncio.run(worker.serve(ready_callback=announce))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
