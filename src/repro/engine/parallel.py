"""Process-parallel shard execution: the sharded backend across worker processes.

The sharded backend (:mod:`repro.engine.sharding`) proved that both halves of
the per-answer hot path — the deduction sweep and the Algorithm-3 frontier
recompute — decompose exactly by connected component of the candidate-pair
graph.  Components share no objects, so they also share no *work*: after PR 2
nothing but the GIL kept a 10M-pair workload from using every core.  This
module removes that limit.

:class:`ProcessShardExecutor` partitions the labeling order by static
candidate-graph component (the same decomposition :class:`ShardedFrontier`
relies on), assigns whole components to a pool of worker processes, and fans
per-shard sweeps and frontier recomputes out across them:

* **spawn-safe shard snapshots** — each worker receives its slice of the
  order once, at startup, and builds its own per-component state
  (:class:`~repro.engine.sharding.ShardedClusterGraph` +
  :class:`~repro.core.sweep.PendingPairIndex` + one
  :class:`~repro.engine.frontier.FrontierCursor` per component) from that
  snapshot.  Workers run under any multiprocessing start method; ``fork`` is
  the default where available (zero-copy snapshots), and spawn-safety is
  pinned by a test.
* **shared-nothing messaging** — no graph structure ever crosses a process
  boundary after startup.  Hot-path messages carry only order positions and
  small integers (an answer is ``("answer", position, label_code)``); replies
  are position lists the parent merges by :func:`heapq.merge`, exactly as the
  in-process :class:`ShardedFrontier` merges per-component selections.
* **lazy ``absorb`` as the only merge synchronisation** — an answer can only
  bridge two answer-graph shards *within* one static component (answers are
  order pairs, and order pairs never cross static components), so every
  cross-shard merge happens inside exactly one worker through the existing
  small-into-large ``absorb`` splice.  Workers never coordinate with each
  other.

:class:`ParallelShardedClusterGraph` wraps the executor in the ClusterGraph
contract so :class:`~repro.engine.engine.LabelingEngine` can register the
whole thing as ``backend="parallel"`` — with auto-fallback to in-process
sharding below a pair threshold, because process orchestration only pays for
itself at scale.

Crash safety: every receive is liveness-checked.  A worker that dies
mid-command surfaces as :class:`ShardWorkerError` naming the worker, its exit
code, and the command in flight — never a hang — and the executor refuses
further work (its shard state is gone; the campaign must be rebuilt, the
same contract as an expired-and-unrecoverable HIT batch).  The ``fault_hook``
constructor knob lets tests inject worker deaths deterministically.
"""

from __future__ import annotations

import gc
import heapq
import multiprocessing
import os
import time
import weakref
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..core.cluster_graph import Conflict, ConflictPolicy
from ..core.pairs import CandidatePair, Label, Pair
from ..core.sweep import PendingPairIndex
from ..core.union_find import UnionFind
from .frontier import FrontierCursor
from .sharding import ShardedClusterGraph

#: Below this many pairs ``backend="parallel"`` falls back to the in-process
#: sharded backend: per-message pipe latency (~0.1 ms) dwarfs per-component
#: work on small orders, and the in-process backend is already O(component).
DEFAULT_PARALLEL_THRESHOLD = 250_000

#: Ceiling for the default worker count; past this, per-worker component
#: slices get too thin for the merge step to keep up.
_MAX_DEFAULT_WORKERS = 8

# Labels cross the pipe as small ints (shared-nothing messaging: no enum
# pickling on the hot path).
_LABEL_OF = (Label.NON_MATCHING, Label.MATCHING)
_CODE_OF = {Label.NON_MATCHING: 0, Label.MATCHING: 1}

#: Sentinel reply meaning "my frontier is unchanged since your last call".
_UNCHANGED = "same"


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _as_pairs(order: Sequence[Union[Pair, CandidatePair]]) -> List[Pair]:
    return [item.pair if isinstance(item, CandidatePair) else item for item in order]


class ShardWorkerError(RuntimeError):
    """A shard worker process died (or the executor was poisoned by a prior
    worker death).  The worker's shard state is lost, so the executor refuses
    further commands; rebuild the engine (or rerun with
    ``backend="sharded"``) to recover."""


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
class _WorkerState:
    """One worker's shard state: its components of the order, mirrored from
    the in-process backend.

    Per component this holds exactly what ``LabelingEngine`` +
    ``ShardedFrontier`` hold in-process — a :class:`FrontierCursor` with
    global order positions — and one worker-wide
    :class:`ShardedClusterGraph` + :class:`PendingPairIndex` for answers and
    the incremental deduction sweep.  Handlers replicate the engine's event
    bookkeeping step for step, which is what the differential tests pin.
    """

    def __init__(self, entries: List[Tuple[int, Pair]], policy: ConflictPolicy) -> None:
        self._pair_of: Dict[int, Pair] = dict(entries)
        self._gpos_of: Dict[Pair, int] = {pair: gpos for gpos, pair in entries}
        components = UnionFind()
        for _, pair in entries:
            components.union(pair.left, pair.right)
        grouped: Dict[Hashable, Tuple[List[int], List[Pair]]] = {}
        for gpos, pair in entries:  # entries arrive in ascending position order
            positions, members = grouped.setdefault(
                components.find(pair.left), ([], [])
            )
            positions.append(gpos)
            members.append(pair)
        self._components = components
        self._cursors: Dict[Hashable, FrontierCursor] = {
            root: FrontierCursor(members, positions)
            for root, (positions, members) in grouped.items()
        }
        self._graph = ShardedClusterGraph(policy=policy)
        self._index = PendingPairIndex(self._graph, (pair for _, pair in entries))
        self._labeled: Dict[Pair, Label] = {}
        self._published: Set[Pair] = set()
        self._selected: Dict[Hashable, List[Tuple[int, Pair]]] = {}
        self._dirty: Set[Hashable] = set(self._cursors)
        self._frontier_fresh = False

    def _mark_dirty(self, pair: Pair) -> None:
        if pair.left not in self._components:
            return
        root = self._components.find(pair.left)
        if root in self._cursors:
            self._dirty.add(root)
            self._frontier_fresh = False

    # -- event handlers (each mirrors one LabelingEngine event) --------
    def answer(self, gpos: int, code: int) -> Tuple[bool, Optional[Conflict]]:
        pair = self._pair_of[gpos]
        label = _LABEL_OF[code]
        self._published.discard(pair)
        self._labeled[pair] = label
        self._mark_dirty(pair)
        n_conflicts = len(self._graph.conflicts)
        applied = self._graph.add(pair, label)
        conflict = (
            self._graph.conflicts[-1]
            if len(self._graph.conflicts) > n_conflicts
            else None
        )
        self._index.remove(pair)
        self._index.note_objects_seen(pair.left, pair.right)
        return applied, conflict

    def deduced(self, gpos: int, code: int) -> None:
        """A deduction decided in the parent (sequential visit-time path)."""
        pair = self._pair_of[gpos]
        if pair in self._labeled:
            return
        self._labeled[pair] = _LABEL_OF[code]
        self._published.discard(pair)
        self._mark_dirty(pair)
        self._index.remove(pair)

    def publish(self, positions: Sequence[int], withhold: bool) -> None:
        for gpos in positions:
            pair = self._pair_of[gpos]
            self._published.add(pair)
            self._mark_dirty(pair)
        if withhold:
            for gpos in positions:
                self._index.remove(self._pair_of[gpos])

    def withhold(self, positions: Sequence[int]) -> None:
        for gpos in positions:
            self._index.remove(self._pair_of[gpos])

    def sweep(self) -> List[Tuple[int, int]]:
        resolved = self._index.sweep()
        out: List[Tuple[int, int]] = []
        for pair, label in resolved:
            self._labeled[pair] = label
            self._published.discard(pair)
            self._mark_dirty(pair)
            out.append((self._gpos_of[pair], _CODE_OF[label]))
        out.sort()
        return out

    def frontier(self) -> Union[str, List[int]]:
        if self._frontier_fresh:
            return _UNCHANGED
        for root in self._dirty:
            self._selected[root] = self._cursors[root].select(
                self._labeled, self._published
            )
        self._dirty.clear()
        runs = [run for run in self._selected.values() if run]
        if not runs:
            merged: List[int] = []
        elif len(runs) == 1:
            merged = [gpos for gpos, _ in runs[0]]
        else:
            merged = [gpos for gpos, _ in heapq.merge(*runs)]
        self._frontier_fresh = True
        return merged

    def deduce(self, pair: Pair) -> Optional[int]:
        label = self._graph.deduce(pair)
        return None if label is None else _CODE_OF[label]

    def contains(self, obj: Hashable) -> bool:
        return obj in self._graph

    def stats(self) -> Dict[str, int]:
        graph = self._graph
        return {
            "n_shards": graph.n_shards,
            "n_objects": graph.n_objects,
            "n_clusters": graph.n_clusters,
            "n_matching_edges": graph.n_matching_edges,
            "n_non_matching_edges": graph.n_non_matching_edges,
            "n_components": len(self._cursors),
        }

    def clusters(self) -> List[Set[Hashable]]:
        return self._graph.clusters()

    def check(self) -> None:
        self._graph.check_invariants()
        self._index.check_invariants()


def _shard_worker_main(
    worker_id: int,
    conn,
    entries: List[Tuple[int, Pair]],
    policy_value: str,
    fault_hook: Optional[Callable[[int, str], None]],
) -> None:
    """Worker process entry point: build the shard snapshot, then serve
    commands until ``stop`` or EOF.  Handler exceptions are shipped back and
    re-raised in the parent; the loop itself only exits on request."""
    state = _WorkerState(entries, ConflictPolicy(policy_value))
    # The snapshot (and, under fork, the entire inherited parent heap) is
    # permanent for this worker's lifetime: move it out of the collector's
    # reach so gen-2 passes during the serve loop never scan it — and, under
    # fork, never unshare its copy-on-write pages by touching gc headers.
    # (No gc.collect() first: a full pass over a large inherited heap costs
    # more than the bounded garbage it would reclaim.)
    gc.freeze()
    handlers = {
        "answer": state.answer,
        "deduced": state.deduced,
        "publish": state.publish,
        "withhold": state.withhold,
        "sweep": state.sweep,
        "frontier": state.frontier,
        "deduce": state.deduce,
        "contains": state.contains,
        "stats": state.stats,
        "clusters": state.clusters,
        "check": state.check,
    }
    while True:
        try:
            command = conn.recv()
        except (EOFError, OSError):  # parent went away
            return
        name = command[0]
        if name == "stop":
            conn.send(("ok", None))
            conn.close()
            return
        try:
            # Inside the try: a fault hook that *raises* models a handler
            # error (shipped to the parent); one that calls os._exit models
            # a worker death.
            if fault_hook is not None:
                fault_hook(worker_id, name)
            reply = handlers[name](*command[1:])
        except BaseException as exc:  # noqa: BLE001 - shipped to the parent
            conn.send(("exc", exc))
        else:
            conn.send(("ok", reply))


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
@dataclass
class _WorkerHandle:
    worker_id: int
    process: "multiprocessing.process.BaseProcess"
    conn: object
    n_components: int
    n_pairs: int


def _terminate_workers(handles: List[_WorkerHandle]) -> None:
    """Best-effort shutdown shared by close() and the GC finalizer."""
    for handle in handles:
        try:
            if handle.process.is_alive():
                handle.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
    for handle in handles:
        handle.process.join(timeout=2.0)
        if handle.process.is_alive():  # pragma: no cover - stuck worker
            handle.process.terminate()
            handle.process.join(timeout=1.0)
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


class ProcessShardExecutor:
    """Fans per-shard sweeps and frontier recomputes across worker processes.

    The labeling order is partitioned by static candidate-graph component;
    whole components are assigned to workers greedily (largest first onto the
    least-loaded worker — deterministic), so every answer, publish, sweep,
    and frontier event for a component is handled by exactly one process.
    ``sweep()`` and ``frontier()`` broadcast and the workers recompute their
    dirty components concurrently; the parent only merges position lists.

    Args:
        order: the labeling order (pairs or candidate pairs; duplicates must
            already be collapsed, as ``LabelingEngine`` does).
        positions: optional pair -> order position map (reuses the engine's);
            built from ``order`` when omitted.
        policy: conflict policy for the workers' deduction graphs.
        n_workers: worker process count; defaults to the available CPUs
            (affinity-aware) capped at 8, and is never more than the number
            of components.
        start_method: multiprocessing start method (``"fork"``, ``"spawn"``,
            ``"forkserver"``); defaults to ``fork`` where available (zero-copy
            shard snapshots), else ``spawn``.
        fault_hook: test-only callable ``(worker_id, command_name)`` invoked
            in the worker before each command is handled — the injection
            point for crash-safety tests.  Must be picklable under spawn.
        response_timeout: seconds to wait for a single worker reply before
            declaring it hung (liveness is checked continuously either way,
            so a *dead* worker surfaces in well under a second).
    """

    def __init__(
        self,
        order: Sequence[Union[Pair, CandidatePair]],
        *,
        positions: Optional[Dict[Pair, int]] = None,
        policy: ConflictPolicy = ConflictPolicy.STRICT,
        n_workers: Optional[int] = None,
        start_method: Optional[str] = None,
        fault_hook: Optional[Callable[[int, str], None]] = None,
        response_timeout: float = 600.0,
    ) -> None:
        self._pairs = _as_pairs(order)
        if positions is None:
            positions = {pair: i for i, pair in enumerate(self._pairs)}
        self._position = positions
        self._response_timeout = response_timeout
        self._failure: Optional[str] = None
        self._closed = False
        #: Chronological FIRST_WINS conflicts, parent-side (workers report
        #: each rejected insert with its reply, so global order is the
        #: answer-application order, exactly as on the in-process backends).
        self.conflicts: List[Conflict] = []

        components = UnionFind()
        for pair in self._pairs:
            components.union(pair.left, pair.right)
        self._components = components
        grouped: Dict[Hashable, List[Tuple[int, Pair]]] = {}
        for gpos, pair in enumerate(self._pairs):
            grouped.setdefault(components.find(pair.left), []).append((gpos, pair))
        self.n_components = len(grouped)

        if n_workers is None:
            n_workers = min(available_cpus(), _MAX_DEFAULT_WORKERS)
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        n_workers = min(n_workers, self.n_components) if grouped else 0
        self.n_workers = n_workers

        # Greedy balanced assignment: biggest components first, each onto the
        # least-loaded worker.  Sort keys are pair counts and first order
        # positions, so the assignment is deterministic for a given order.
        assignments: List[List[Tuple[int, Pair]]] = [[] for _ in range(n_workers)]
        self._worker_of_root: Dict[Hashable, int] = {}
        if n_workers:
            ranked = sorted(
                grouped.items(), key=lambda item: (-len(item[1]), item[1][0][0])
            )
            load: List[Tuple[int, int]] = [(0, wid) for wid in range(n_workers)]
            heapq.heapify(load)
            for root, entries in ranked:
                n_pairs, wid = heapq.heappop(load)
                assignments[wid].extend(entries)
                self._worker_of_root[root] = wid
                heapq.heappush(load, (n_pairs + len(entries), wid))
            for entries in assignments:
                entries.sort()  # ascending order position within each worker

        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        ctx = multiprocessing.get_context(start_method)
        self.start_method = start_method
        self._handles: List[_WorkerHandle] = []
        self._worker_frontiers: Dict[int, List[int]] = {}
        for wid in range(n_workers):
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_shard_worker_main,
                args=(wid, child_conn, assignments[wid], policy.value, fault_hook),
                name=f"repro-shard-worker-{wid}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._handles.append(
                _WorkerHandle(
                    worker_id=wid,
                    process=process,
                    conn=parent_conn,
                    n_components=sum(
                        1 for w in self._worker_of_root.values() if w == wid
                    ),
                    n_pairs=len(assignments[wid]),
                )
            )
            self._worker_frontiers[wid] = []
        # GC/exit backstop: daemon workers die with the interpreter anyway,
        # but the finalizer reclaims them (and their pipes) promptly when an
        # executor is dropped without close() — e.g. a failing test.
        self._finalizer = weakref.finalize(self, _terminate_workers, self._handles)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _ensure_usable(self) -> None:
        if self._closed:
            raise ShardWorkerError("ProcessShardExecutor is closed")
        if self._failure is not None:
            raise ShardWorkerError(self._failure)

    def _fail(self, message: str) -> ShardWorkerError:
        self._failure = message
        return ShardWorkerError(message)

    def _dead_worker_message(self, handle: _WorkerHandle, command: str) -> str:
        handle.process.join(timeout=0.5)  # reap, so exitcode is reportable
        return (
            f"shard worker {handle.worker_id} (pid {handle.process.pid}, "
            f"{handle.n_components} components / {handle.n_pairs} pairs) died "
            f"with exit code {handle.process.exitcode} while handling "
            f"{command!r}; its shard state is lost — rebuild the engine or "
            "fall back to backend='sharded'"
        )

    def _send(self, handle: _WorkerHandle, command: Tuple) -> None:
        try:
            handle.conn.send(command)
        except (BrokenPipeError, OSError):
            raise self._fail(self._dead_worker_message(handle, command[0])) from None

    def _recv_reply(self, handle: _WorkerHandle, command_name: str) -> Tuple:
        """One (kind, payload) reply, liveness-checked while waiting."""
        deadline = time.monotonic() + self._response_timeout
        while not handle.conn.poll(0.05):
            if not handle.process.is_alive():
                raise self._fail(self._dead_worker_message(handle, command_name))
            if time.monotonic() > deadline:
                raise self._fail(
                    f"shard worker {handle.worker_id} (pid {handle.process.pid}) "
                    f"did not answer {command_name!r} within "
                    f"{self._response_timeout:.0f}s"
                )
        try:
            return handle.conn.recv()
        except (EOFError, OSError):
            raise self._fail(self._dead_worker_message(handle, command_name)) from None

    def _request(self, handle: _WorkerHandle, command: Tuple):
        self._ensure_usable()
        self._send(handle, command)
        kind, payload = self._recv_reply(handle, command[0])
        if kind == "exc":
            raise payload
        return payload

    def _broadcast(self, command: Tuple) -> List:
        """Send ``command`` to every worker, then gather replies in worker
        order — the workers handle it concurrently.

        Every reply is consumed before a shipped worker exception re-raises,
        so a handler error cannot leave sibling replies queued and desync
        the request/reply protocol on their pipes.
        """
        self._ensure_usable()
        for handle in self._handles:
            self._send(handle, command)
        replies = [
            self._recv_reply(handle, command[0]) for handle in self._handles
        ]
        for kind, payload in replies:
            if kind == "exc":
                raise payload
        return [payload for _, payload in replies]

    def _handle_for_pair(self, pair: Pair) -> _WorkerHandle:
        gpos = self._position.get(pair)
        if gpos is None:
            raise ValueError(
                f"{pair!r} is not in the labeling order: the parallel backend "
                "routes events by order position and cannot place foreign pairs"
            )
        return self._handles[self._worker_of_root[self._components.find(pair.left)]]

    def _positions_by_worker(self, pairs: Sequence[Pair]) -> Dict[int, List[int]]:
        routed: Dict[int, List[int]] = {}
        for pair in pairs:
            gpos = self._position.get(pair)
            if gpos is None:
                raise ValueError(
                    f"{pair!r} is not in the labeling order: the parallel "
                    "backend routes events by order position"
                )
            wid = self._worker_of_root[self._components.find(pair.left)]
            routed.setdefault(wid, []).append(gpos)
        return routed

    # ------------------------------------------------------------------
    # the engine-facing surface
    # ------------------------------------------------------------------
    def record_answer(self, pair: Pair, label: Label) -> bool:
        """Apply a crowd answer on the owning worker; returns ``applied``
        exactly as ``ClusterGraph.add`` (conflicts are recorded on
        :attr:`conflicts`; STRICT inconsistencies re-raise here)."""
        handle = self._handle_for_pair(pair)
        gpos = self._position[pair]
        applied, conflict = self._request(handle, ("answer", gpos, _CODE_OF[label]))
        if conflict is not None:
            self.conflicts.append(conflict)
        return applied

    def record_deduced(self, pair: Pair, label: Label) -> None:
        """Tell the owning worker about a deduction decided in the parent
        (the sequential strategy deduces at visit time)."""
        handle = self._handle_for_pair(pair)
        self._request(handle, ("deduced", self._position[pair], _CODE_OF[label]))

    def publish(self, pairs: Sequence[Pair], *, withhold: bool) -> None:
        """Mark ``pairs`` published (and optionally withheld from the sweep)
        on their owning workers."""
        for wid, positions in self._positions_by_worker(pairs).items():
            self._request(self._handles[wid], ("publish", positions, withhold))

    def withhold(self, pairs: Sequence[Pair]) -> None:
        """Take already-published pairs out of the workers' deduction sweeps
        (the HIT adapter flushes buffered pairs through this)."""
        for wid, positions in self._positions_by_worker(pairs).items():
            self._request(self._handles[wid], ("withhold", positions))

    def sweep(self) -> List[Tuple[Pair, Label]]:
        """Run the incremental deduction sweep on every worker concurrently;
        returns newly resolved (pair, label) in global order position."""
        replies = self._broadcast(("sweep",))
        merged = heapq.merge(*replies) if len(replies) > 1 else iter(replies[0] if replies else ())
        return [(self._pairs[gpos], _LABEL_OF[code]) for gpos, code in merged]

    def frontier(self) -> List[Pair]:
        """The current must-crowdsource frontier, in order position.

        Each worker recomputes only its dirty components (concurrently) and
        replies with a position list — or an "unchanged" marker, in which
        case the parent reuses its cached copy.
        """
        replies = self._broadcast(("frontier",))
        for handle, payload in zip(self._handles, replies):
            if payload != _UNCHANGED:
                self._worker_frontiers[handle.worker_id] = payload
        runs = [run for run in self._worker_frontiers.values() if run]
        if not runs:
            return []
        if len(runs) == 1:
            return [self._pairs[gpos] for gpos in runs[0]]
        return [self._pairs[gpos] for gpos in heapq.merge(*runs)]

    def deduce(self, pair: Pair) -> Optional[Label]:
        """Algorithm-1 deduction, routed to the owning worker.

        Objects in different workers live in different static components, and
        no labeled path can cross a static component (answers are order
        pairs), so cross-worker queries are ``None`` without any messaging —
        the same short-circuit the in-process sharded graph uses.
        """
        left, right = pair.left, pair.right
        if left not in self._components or right not in self._components:
            return None
        root_left = self._components.find(left)
        if root_left != self._components.find(right):
            return None
        handle = self._handles[self._worker_of_root[root_left]]
        code = self._request(handle, ("deduce", pair))
        return None if code is None else _LABEL_OF[code]

    def contains_object(self, obj: Hashable) -> bool:
        """True iff some applied answer mentioned ``obj``."""
        if obj not in self._components:
            return False
        handle = self._handles[self._worker_of_root[self._components.find(obj)]]
        return self._request(handle, ("contains", obj))

    def stats(self) -> Dict[str, int]:
        """Aggregated graph statistics across all workers."""
        totals = {
            "n_shards": 0,
            "n_objects": 0,
            "n_clusters": 0,
            "n_matching_edges": 0,
            "n_non_matching_edges": 0,
            "n_components": 0,
        }
        for reply in self._broadcast(("stats",)):
            for key, value in reply.items():
                totals[key] += value
        return totals

    def clusters(self) -> List[Set[Hashable]]:
        """All clusters across all workers."""
        out: List[Set[Hashable]] = []
        for reply in self._broadcast(("clusters",)):
            out.extend(reply)
        return out

    def check_invariants(self) -> None:
        """Run every worker's graph/index invariant checks (for tests)."""
        self._broadcast(("check",))

    def worker_pids(self) -> List[int]:
        """Live worker process ids (for tests and diagnostics)."""
        return [handle.process.pid for handle in self._handles]

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop and reap the worker processes.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._finalizer()  # runs _terminate_workers exactly once

    def __enter__(self) -> "ProcessShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else f"{self.n_workers} workers"
        return (
            f"ProcessShardExecutor({len(self._pairs)} pairs, "
            f"{self.n_components} components, {state})"
        )


class ParallelShardedClusterGraph:
    """The ClusterGraph contract over a :class:`ProcessShardExecutor`.

    This is what ``LabelingEngine`` installs as ``engine.graph`` for
    ``backend="parallel"``: insertions and deductions route to the worker
    owning the pair's component, inspection aggregates across workers.  The
    ``listener`` seam is intentionally absent (always ``None``) — incremental
    sweep state lives *inside* each worker's own
    :class:`~repro.core.sweep.PendingPairIndex`, never in the parent.

    Not supported (meaningless across processes): ``copy()``, and answers
    for pairs outside the labeling order.
    """

    #: No parent-side listener: per-worker PendingPairIndex instances react
    #: to graph events inside their own process.
    listener = None

    def __init__(self, executor: ProcessShardExecutor, policy: ConflictPolicy) -> None:
        self._executor = executor
        self._policy = policy

    @property
    def executor(self) -> ProcessShardExecutor:
        return self._executor

    @property
    def policy(self) -> ConflictPolicy:
        return self._policy

    @property
    def conflicts(self) -> List[Conflict]:
        return self._executor.conflicts

    # -- insertion ------------------------------------------------------
    def add(self, pair: Pair, label: Label) -> bool:
        return self._executor.record_answer(pair, label)

    def add_matching(self, a: Hashable, b: Hashable) -> bool:
        return self.add(Pair(a, b), Label.MATCHING)

    def add_non_matching(self, a: Hashable, b: Hashable) -> bool:
        return self.add(Pair(a, b), Label.NON_MATCHING)

    # -- deduction ------------------------------------------------------
    def deduce(self, pair: Pair) -> Optional[Label]:
        return self._executor.deduce(pair)

    def deducible(self, pair: Pair) -> bool:
        return self.deduce(pair) is not None

    def same_cluster(self, a: Hashable, b: Hashable) -> bool:
        if a == b:
            return self._executor.contains_object(a)
        return self.deduce(Pair(a, b)) is Label.MATCHING

    def __contains__(self, obj: Hashable) -> bool:
        return self._executor.contains_object(obj)

    # -- inspection -----------------------------------------------------
    @property
    def n_workers(self) -> int:
        return self._executor.n_workers

    @property
    def n_shards(self) -> int:
        return self._executor.stats()["n_shards"]

    @property
    def n_objects(self) -> int:
        return self._executor.stats()["n_objects"]

    @property
    def n_clusters(self) -> int:
        return self._executor.stats()["n_clusters"]

    @property
    def n_matching_edges(self) -> int:
        return self._executor.stats()["n_matching_edges"]

    @property
    def n_non_matching_edges(self) -> int:
        return self._executor.stats()["n_non_matching_edges"]

    def clusters(self) -> List[Set[Hashable]]:
        return self._executor.clusters()

    def check_invariants(self) -> None:
        self._executor.check_invariants()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ParallelShardedClusterGraph({self._executor!r})"
