"""repro.engine — the event-driven labeling engine and dispatch strategies.

One :class:`LabelingEngine` replaces the four hand-rolled labeling loops of
the seed repo (sequential, round-parallel, instant, and the HIT-granularity
campaign loop).  The engine owns the deduction graph, the incremental
pending-pair frontier (:class:`repro.core.sweep.PendingPairIndex`), and the
shared must-crowdsource selection; a pluggable :class:`DispatchStrategy`
decides when to publish which frontier pairs.

Since the async-first refactor the primary driver is the event loop, not
the simulator: :class:`CrowdRuntime` drives the engine from asyncio over
the :class:`~repro.crowd.clients.PlatformClient` seam (simulated, polling,
or webhook-push crowds), applying out-of-order completions, re-issuing
expired HITs, and enforcing budget/latency policies at submission time.
The synchronous strategies and the campaign runners are thin facades that
run the simulated client to completion.

Public surface:

* engine:     :class:`LabelingEngine` (+ ``DEFAULT_SHARD_THRESHOLD``)
* frontier:   :class:`OptimisticGraph`, :func:`must_crowdsource_frontier`,
              :class:`FrontierCursor` (decided-prefix incremental selection)
* sharding:   :class:`ShardedClusterGraph`, :class:`ShardedFrontier`
              (per-component backend for 10M+ pair workloads)
* vectorized: :class:`VectorizedClusterGraph`, :class:`VectorizedEngineCore`,
              :func:`vectorized_available` — array-native sweep/deduce/
              frontier kernels over numpy (``backend="vectorized"``; the
              optional ``perf`` extra)
* parallel:   :class:`ProcessShardExecutor`,
              :class:`ParallelShardedClusterGraph`, :class:`ShardWorkerError`
              (+ ``DEFAULT_PARALLEL_THRESHOLD``) — the sharded decomposition
              fanned out across worker processes (``backend="parallel"``)
* distributed: :class:`ShardCoordinator`, :class:`ShardWorkerHost`
              (+ :func:`encode_frame`, :class:`FrameDecoder`,
              :class:`ProtocolError`, ``PROTOCOL_VERSION``) — the same
              command protocol over TCP sockets with heartbeat-based
              worker-loss re-assignment (``backend="distributed"``;
              runbook: ``python -m repro.engine.distributed --worker
              host:port``)
* runtime:    :class:`CrowdRuntime`, :class:`RuntimeMode`,
              :class:`RuntimeReport`, :class:`AsyncDispatch`
* strategies: :class:`SequentialDispatch`, :class:`RoundParallelDispatch`,
              :class:`InstantDispatch` (+ :class:`AnswerPolicy`,
              :class:`InstantRunResult`, :class:`AvailabilityPoint`)
* ordering:   :class:`ExpectedValueDispatch`,
              :class:`ExpectedDeductionScorer`,
              :func:`expected_value_choice` — adaptive next-question
              selection by expected transitive deductions (also available
              on the runtime via ``ordering="expected-value"``)
* adapter:    :class:`HITDispatchAdapter` (HIT-granularity campaigns)

The legacy labeler classes in :mod:`repro.core` remain available as thin
compatibility facades over these strategies.
"""

from .async_dispatch import (
    AsyncDispatch,
    CrowdRuntime,
    PauseGate,
    RuntimeMode,
    RuntimeReport,
)
from .dispatch import (
    AnswerPolicy,
    AvailabilityPoint,
    DispatchStrategy,
    InstantDispatch,
    InstantRunResult,
    RoundParallelDispatch,
    SequentialDispatch,
)
from .distributed import (
    PROTOCOL_VERSION,
    FrameDecoder,
    ProtocolError,
    ShardCoordinator,
    ShardWorkerHost,
    encode_frame,
)
from .engine import DEFAULT_SHARD_THRESHOLD, EngineBackend, LabelingEngine
from .expected import (
    ExpectedDeductionScorer,
    ExpectedValueDispatch,
    expected_value_choice,
)
from .frontier import FrontierCursor, OptimisticGraph, must_crowdsource_frontier
from .hit_adapter import HITDispatchAdapter
from .parallel import (
    DEFAULT_PARALLEL_THRESHOLD,
    ParallelShardedClusterGraph,
    ProcessShardExecutor,
    ShardWorkerError,
)
from .sharding import ShardedClusterGraph, ShardedFrontier
from .vectorized import (
    VectorizedClusterGraph,
    VectorizedEngineCore,
    vectorized_available,
)

__all__ = [
    "AnswerPolicy",
    "AsyncDispatch",
    "AvailabilityPoint",
    "CrowdRuntime",
    "DEFAULT_PARALLEL_THRESHOLD",
    "DEFAULT_SHARD_THRESHOLD",
    "DispatchStrategy",
    "EngineBackend",
    "ExpectedDeductionScorer",
    "ExpectedValueDispatch",
    "FrameDecoder",
    "FrontierCursor",
    "HITDispatchAdapter",
    "InstantDispatch",
    "InstantRunResult",
    "LabelingEngine",
    "OptimisticGraph",
    "PROTOCOL_VERSION",
    "ParallelShardedClusterGraph",
    "PauseGate",
    "ProcessShardExecutor",
    "ProtocolError",
    "RoundParallelDispatch",
    "RuntimeMode",
    "RuntimeReport",
    "SequentialDispatch",
    "ShardCoordinator",
    "ShardWorkerError",
    "ShardWorkerHost",
    "ShardedClusterGraph",
    "ShardedFrontier",
    "VectorizedClusterGraph",
    "VectorizedEngineCore",
    "encode_frame",
    "expected_value_choice",
    "must_crowdsource_frontier",
    "vectorized_available",
]
