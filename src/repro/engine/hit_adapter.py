"""HIT-granularity adapter: buffers engine frontier pairs into full HITs.

Campaigns publish work in HITs of the platform's batch size rather than
pair by pair.  Pre-refactor the campaign runner carried its own copy of the
frontier computation and deduction sweep; this adapter replaces that fourth
reimplementation with a thin buffering layer over the shared
:class:`~repro.engine.engine.LabelingEngine`.  Since the async-first
refactor it is instantiated by the HIT-granularity modes of
:class:`~repro.engine.async_dispatch.CrowdRuntime`, which flushes its
published chunks through the :class:`~repro.crowd.clients.PlatformClient`
seam:

* frontier pairs are buffered until a *full* HIT can be published — partial
  HITs are flushed only when the platform would otherwise sit idle — so
  iterative publication does not inflate the HIT count the paper's batching
  strategy saves;
* buffered pairs stay inside the engine's deduction sweep (they are not on
  the platform yet, so a deduction can still *rescue* them from being paid
  for); pairs actually handed to the platform are withheld from the sweep,
  because the crowd will answer them regardless.

The adapter is platform-agnostic: it publishes through a callable, so tests
can drive it without a simulated platform.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from ..core.pairs import Label, Pair
from .engine import LabelingEngine

PublishChunk = Callable[[List[Pair]], None]


class HITDispatchAdapter:
    """Buffers engine frontier pairs into full HITs (paper Section 6.4).

    Args:
        engine: the shared labeling engine.
        publish_chunk: callable invoked with each chunk of pairs that must
            go to the platform now (at most ``batch_size`` pairs per call).
        batch_size: pairs per HIT (the platform's batching granularity).
    """

    def __init__(
        self,
        engine: LabelingEngine,
        publish_chunk: PublishChunk,
        batch_size: int,
    ) -> None:
        self._engine = engine
        self._publish_chunk = publish_chunk
        self._batch_size = batch_size
        self._buffer: List[Pair] = []

    @property
    def buffered(self) -> List[Pair]:
        """Selected pairs awaiting a full HIT (a copy)."""
        return list(self._buffer)

    def restore_buffer(self, pairs: Sequence[Pair]) -> None:
        """Seed the buffer from a runtime snapshot (crash recovery).

        The pairs must already be published-not-withheld in the engine,
        which is exactly how :meth:`~repro.engine.engine.LabelingEngine
        .restore_state` leaves them.
        """
        self._buffer = list(pairs)

    def select_new(self) -> None:
        """Pull the current must-crowdsource frontier into the buffer.

        Buffered pairs are excluded from future frontiers but remain inside
        the deduction sweep until :meth:`flush` hands them to the platform.
        """
        batch = self._engine.frontier()
        if batch:
            self._engine.publish(batch, withhold=False)
            self._buffer.extend(batch)
        self.flush(force=False)

    def flush(self, force: bool) -> None:
        """Publish full HITs from the buffer; ``force`` flushes a partial
        HIT too (used when the platform would otherwise sit idle)."""
        while len(self._buffer) >= self._batch_size:
            chunk = self._buffer[: self._batch_size]
            self._buffer = self._buffer[self._batch_size :]
            self._engine.withhold(chunk)
            self._publish_chunk(chunk)
        if force and self._buffer:
            chunk = self._buffer
            self._buffer = []
            self._engine.withhold(chunk)
            self._publish_chunk(chunk)

    def record_completion(
        self, labels: Sequence[Tuple[Pair, Label]], round_index: int
    ) -> List[Pair]:
        """Fold a HIT completion's answers into the engine.

        Returns:
            Pairs whose answer contradicted the deduction graph (possible
            only with noisy workers under FIRST_WINS).
        """
        conflicts: List[Pair] = []
        for pair, label in labels:
            if not self._engine.record_answer(pair, label, round_index):
                conflicts.append(pair)
        return conflicts

    def sweep(self, round_index: int) -> List[Tuple[Pair, Label]]:
        """Deduce everything the answers imply; rescued buffered pairs are
        dropped from the buffer (they no longer need crowdsourcing)."""
        resolved = self._engine.sweep(round_index)
        if resolved and self._buffer:
            rescued = {pair for pair, _ in resolved}
            self._buffer = [pair for pair in self._buffer if pair not in rescued]
        return resolved
