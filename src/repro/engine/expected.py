"""Adaptive expected-deduction ordering (arXiv:1409.7472).

The paper orders pairs by descending match likelihood because the truly
expected-optimal *static* order is NP-hard.  Its follow-up (*The Expected
Optimal Labeling Order Problem*) reframes the question adaptively: given the
labels collected so far, which pair should be asked *next* to maximise the
expected number of transitive deductions?  This module supplies that
production strategy:

* :class:`ExpectedDeductionScorer` — scores each unresolved pair by its
  exact one-step expected deduction yield.  Asking a pair that spans
  clusters ``A`` and ``B`` resolves *every* other unresolved ``A``–``B``
  cross pair no matter the answer (both labels collapse them); a *matching*
  answer additionally merges ``A`` and ``B``, deducing every unresolved
  cross pair toward any third cluster that already holds a non-matching
  relation to either side.  Both counts fall straight out of the cluster
  graph, so the per-answer deduction yield is exact; only the match
  probability is estimated.
* Posterior match probabilities — per connected component of the unresolved
  pair graph, the scorer enumerates consistent assignments over the
  component's *cluster-level* variables (evidence merges are already folded
  into the quotient; existing non-matching edges act as hard constraints)
  and reads off exact marginals.  Components larger than the enumeration
  limit fall back to the raw machine likelihood — the documented
  approximation;
  :func:`repro.core.expected_cost.posterior_match_probability` is the
  spec-grade oracle this is validated against on small instances.
* :class:`ExpectedValueDispatch` — the synchronous dispatch strategy: an
  adaptive sequential loop that publishes the best-scoring pair, records
  the answer, sweeps deductions, and repeats.  The asynchronous runtime
  reaches the same scorer through ``ordering="expected-value"`` on
  :class:`~repro.engine.async_dispatch.CrowdRuntime` /
  :class:`~repro.engine.async_dispatch.AsyncDispatch`.
"""

from __future__ import annotations

import itertools
from collections import Counter
from typing import Dict, FrozenSet, Hashable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from ..core.cluster_graph import ClusterGraph, ConflictPolicy
from ..core.expected_cost import MAX_BRUTE_FORCE_PAIRS, adaptive_optimal_choice
from ..core.oracle import LabelOracle
from ..core.pairs import CandidatePair, Label, Pair
from ..core.result import LabelingResult
from ..core.union_find import UnionFind
from .engine import LabelingEngine

#: Components with more distinct cluster-level variables than this fall back
#: to the raw likelihood instead of exact posterior enumeration (2^k combos).
DEFAULT_ENUMERATION_LIMIT = 10


class ExpectedDeductionScorer:
    """Scores unresolved pairs by expected one-step transitive deductions.

    Feed every resolved label through :meth:`observe` (or :meth:`sync`);
    :meth:`choose` then returns the unresolved candidate maximising

        ``P(match | evidence) * ded_match + P(non-match | evidence) * ded_nm``

    where the deduction counts are exact consequences of the current cluster
    structure.  Ties break toward the higher machine likelihood, then the
    earlier candidate (so with no structure yet — every score 0 — the choice
    degenerates to the paper's likelihood-descending heuristic).

    The internal graph runs under FIRST_WINS so noisy, contradictory answers
    degrade scoring instead of raising.
    """

    def __init__(self, enumeration_limit: int = DEFAULT_ENUMERATION_LIMIT) -> None:
        if enumeration_limit < 1:
            raise ValueError(f"enumeration_limit must be >= 1, got {enumeration_limit}")
        self._limit = enumeration_limit
        self._graph = ClusterGraph(policy=ConflictPolicy.FIRST_WINS)
        self._seen: Set[Pair] = set()

    def observe(self, pair: Pair, label: Label) -> None:
        """Fold one resolved label (answered or deduced) into the evidence."""
        if pair in self._seen:
            return
        self._seen.add(pair)
        self._graph.add(pair, label)

    def sync(self, labeled: Mapping[Pair, Label]) -> None:
        """Fold every label of ``labeled`` into the evidence (idempotent)."""
        for pair, label in labeled.items():
            self.observe(pair, label)

    def deducible(self, pair: Pair) -> bool:
        """True iff the evidence already implies ``pair``'s label."""
        return self._graph.deducible(pair)

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def _root(self, obj: Hashable) -> Hashable:
        graph = self._graph
        return graph.cluster_of(obj) if obj in graph else obj

    def choose(
        self, unresolved: Sequence[CandidatePair]
    ) -> Optional[CandidatePair]:
        """The next pair an expected-optimal policy should crowdsource.

        Candidates whose label the evidence already implies are skipped
        (they cost nothing — let the sweep resolve them); returns None when
        every candidate is deducible.  When the instance's evidence-
        conditioned quotient is small enough to enumerate, the choice is the
        *exact* expected-optimal one (full adaptive DP via
        :func:`repro.core.expected_cost.adaptive_optimal_choice`); otherwise
        the greedy one-step expected-deduction score decides.
        """
        exact = self._exact_choice(unresolved)
        if exact is not None:
            return exact
        scored = self.scores(unresolved)
        best: Optional[CandidatePair] = None
        best_rank: Tuple[float, float] = (-1.0, -1.0)
        for candidate, score in scored:
            rank = (score, candidate.likelihood)
            if rank > best_rank:
                best, best_rank = candidate, rank
        return best

    def _exact_choice(
        self, unresolved: Sequence[CandidatePair]
    ) -> Optional[CandidatePair]:
        """Exact expected-optimal next question, if enumeration is feasible.

        Reduces the evidence-conditioned instance to its cluster-level
        quotient: each distinct cluster pair becomes one variable (parallel
        pairs share it — transitivity forces them equal — with the joint
        match probability), and each existing non-matching edge between
        involved clusters joins as a pre-labeled candidate.  The adaptive DP
        over that quotient prices every possible next question; its pick is
        mapped back to the highest-likelihood real pair of the winning
        variable.  Returns None (fall back to greedy) when the quotient is
        too large to enumerate or every candidate is deducible.
        """
        graph = self._graph
        variables: Dict[FrozenSet, List] = {}
        for candidate in unresolved:
            if graph.deducible(candidate.pair):
                continue
            root_a = self._root(candidate.pair.left)
            root_b = self._root(candidate.pair.right)
            cell = variables.setdefault(frozenset((root_a, root_b)), [1.0, 1.0, None])
            cell[0] *= candidate.likelihood
            cell[1] *= 1.0 - candidate.likelihood
            if cell[2] is None or candidate.likelihood > cell[2].likelihood:
                cell[2] = candidate
        if not variables:
            return None
        involved: Set[Hashable] = set()
        for key in variables:
            involved.update(key)
        constraints = set()
        for root_a, root_b in graph.non_matching_cluster_edges():
            if root_a in involved and root_b in involved:
                constraints.add(frozenset((root_a, root_b)))
        constraints -= set(variables)  # a constrained variable is deducible
        # The adaptive DP enumerates assignments over the *whole* quotient
        # (variables and constraint pairs alike) inside every posterior it
        # prices, so the brute-force cap must bound their sum: constraints
        # are as expensive to carry as open variables.
        if len(variables) + len(constraints) > MAX_BRUTE_FORCE_PAIRS:
            return None
        quotient: List[CandidatePair] = []
        evidence: Dict[Pair, Label] = {}
        for key, (w_match, w_non, _) in sorted(
            variables.items(),
            key=lambda item: (-(item[1][0] / (item[1][0] + item[1][1])
                              if item[1][0] + item[1][1] > 0 else 0.0),
                              repr(sorted(map(repr, item[0])))),
        ):
            total = w_match + w_non
            p_match = w_match / total if total > 0 else 0.0
            root_a, root_b = tuple(key)
            quotient.append(CandidatePair(Pair(root_a, root_b), p_match))
        for key in sorted(constraints, key=lambda k: repr(sorted(map(repr, k)))):
            root_a, root_b = tuple(key)
            pair = Pair(root_a, root_b)
            quotient.append(CandidatePair(pair, 0.0))
            evidence[pair] = Label.NON_MATCHING
        try:
            chosen = adaptive_optimal_choice(quotient, evidence)
        except ValueError:
            # No consistent assignment (noisy evidence) — greedy handles it.
            return None
        if chosen is None:
            return None
        cell = variables.get(frozenset((chosen.pair.left, chosen.pair.right)))
        return cell[2] if cell is not None else None

    def scores(
        self, unresolved: Sequence[CandidatePair]
    ) -> List[Tuple[CandidatePair, float]]:
        """(candidate, expected deductions) for each non-deducible candidate."""
        graph = self._graph
        candidates: List[CandidatePair] = []
        roots: List[Tuple[Hashable, Hashable]] = []
        for candidate in unresolved:
            if graph.deducible(candidate.pair):
                continue
            candidates.append(candidate)
            roots.append(
                (self._root(candidate.pair.left), self._root(candidate.pair.right))
            )
        if not candidates:
            return []
        cross: Counter = Counter(frozenset(pair_roots) for pair_roots in roots)
        nm: Dict[Hashable, Set[Hashable]] = {}
        for root_a, root_b in graph.non_matching_cluster_edges():
            nm.setdefault(root_a, set()).add(root_b)
            nm.setdefault(root_b, set()).add(root_a)
        posteriors = self._posteriors(candidates, roots, nm)
        results: List[Tuple[CandidatePair, float]] = []
        for candidate, (root_a, root_b), p_match in zip(candidates, roots, posteriors):
            key = frozenset((root_a, root_b))
            # Every other unresolved A-B cross pair resolves either way.
            both_ways = cross[key] - 1
            # A merge additionally deduces cross pairs toward third clusters
            # holding a known non-matching relation to the *other* side.
            merge_bonus = sum(
                cross.get(frozenset((root_b, third)), 0)
                for third in nm.get(root_a, ())
                if third != root_b
            ) + sum(
                cross.get(frozenset((root_a, third)), 0)
                for third in nm.get(root_b, ())
                if third != root_a
            )
            score = p_match * (both_ways + merge_bonus) + (1.0 - p_match) * both_ways
            results.append((candidate, score))
        return results

    # ------------------------------------------------------------------
    # posterior match probabilities
    # ------------------------------------------------------------------
    def _posteriors(
        self,
        candidates: Sequence[CandidatePair],
        roots: Sequence[Tuple[Hashable, Hashable]],
        nm: Mapping[Hashable, Set[Hashable]],
    ) -> List[float]:
        """P(match | evidence) per candidate.

        Exact per-component enumeration over cluster-level variables
        (parallel pairs between the same two clusters share one variable —
        transitivity forces them equal — with joint weights), falling back
        to the raw likelihood for components beyond the enumeration limit.
        """
        # Distinct cluster pairs become variables; parallel candidates
        # multiply into the variable's joint match / non-match weights.
        weights: Dict[FrozenSet, List[float]] = {}
        for candidate, pair_roots in zip(candidates, roots):
            cell = weights.setdefault(frozenset(pair_roots), [1.0, 1.0])
            cell[0] *= candidate.likelihood
            cell[1] *= 1.0 - candidate.likelihood
        # Components over cluster roots: variables correlate their two
        # endpoints; an evidence non-matching edge correlates its endpoints
        # too (it constrains merges on both sides).
        involved: Set[Hashable] = set()
        for key in weights:
            involved.update(key)
        uf = UnionFind()
        for key in weights:
            root_a, root_b = tuple(key)
            uf.union(root_a, root_b)
        for root_a in involved:
            for root_b in nm.get(root_a, ()):
                if root_b in involved:
                    uf.union(root_a, root_b)
        components: Dict[Hashable, List[FrozenSet]] = {}
        for key in weights:
            components.setdefault(uf.find(next(iter(key))), []).append(key)
        marginals: Dict[FrozenSet, float] = {}
        for variables in components.values():
            if len(variables) > self._limit:
                continue  # fall back to raw likelihoods below
            component_roots: Set[Hashable] = set()
            for key in variables:
                component_roots.update(key)
            constraints = {
                frozenset((root_a, root_b))
                for root_a in component_roots
                for root_b in nm.get(root_a, ())
                if root_b in component_roots
            }
            marginals.update(
                _enumerate_component(variables, weights, constraints)
            )
        return [
            marginals.get(frozenset(pair_roots), candidate.likelihood)
            for candidate, pair_roots in zip(candidates, roots)
        ]


def _enumerate_component(
    variables: List[FrozenSet],
    weights: Mapping[FrozenSet, List[float]],
    constraints: Set[FrozenSet],
) -> Dict[FrozenSet, float]:
    """Exact match marginals for one component's cluster-level variables.

    Enumerates all 2^k label combinations, keeping those where (a) no
    variable labeled non-matching has its endpoints merged by the matching
    variables, and (b) no evidence non-matching edge has its endpoints
    merged.  Weights multiply per variable; marginals renormalise over the
    consistent mass.  Returns {} when no combination carries positive weight
    (callers then fall back to raw likelihoods).
    """
    match_mass = {key: 0.0 for key in variables}
    total = 0.0
    for combo in itertools.product((Label.MATCHING, Label.NON_MATCHING), repeat=len(variables)):
        weight = 1.0
        for key, label in zip(variables, combo):
            cell = weights[key]
            weight *= cell[0] if label is Label.MATCHING else cell[1]
        if weight == 0.0:
            continue
        uf = UnionFind()
        for key, label in zip(variables, combo):
            if label is Label.MATCHING:
                root_a, root_b = tuple(key)
                uf.union(root_a, root_b)
        consistent = True
        for key, label in zip(variables, combo):
            if label is Label.NON_MATCHING:
                root_a, root_b = tuple(key)
                if uf.connected(root_a, root_b):
                    consistent = False
                    break
        if consistent:
            for key in constraints:
                root_a, root_b = tuple(key)
                if uf.connected(root_a, root_b):
                    consistent = False
                    break
        if not consistent:
            continue
        total += weight
        for key, label in zip(variables, combo):
            if label is Label.MATCHING:
                match_mass[key] += weight
    if total <= 0.0:
        return {}
    return {key: mass / total for key, mass in match_mass.items()}


def expected_value_choice(
    unresolved: Sequence[CandidatePair],
    evidence: Mapping[Pair, Label],
    enumeration_limit: int = DEFAULT_ENUMERATION_LIMIT,
) -> Optional[CandidatePair]:
    """One-shot functional form of the scorer's decision rule.

    Builds the evidence graph from scratch per call — convenient for
    property tests and for
    :func:`repro.core.expected_cost.adaptive_expected_cost`, which needs a
    pure ``choose(unresolved, evidence)`` policy function.
    """
    scorer = ExpectedDeductionScorer(enumeration_limit=enumeration_limit)
    scorer.sync(evidence)
    return scorer.choose(unresolved)


class ExpectedValueDispatch:
    """Adaptive dispatch: ask whichever pair maximises expected deductions.

    The paper's production strategies follow a *static* likelihood-descending
    order; this strategy re-decides after every answer using the posterior
    evidence, spending strictly fewer expected questions on reference
    workloads (gated in ``benchmarks/bench_core_micro.py``).  It is the
    sequential-granularity strategy — one pair in flight at a time — so its
    crowdsourced count is directly comparable to
    :class:`~repro.engine.dispatch.SequentialDispatch`.

    Args:
        policy / backend / shard_threshold / parallel_threshold / n_workers:
            engine knobs, as every other dispatch strategy (spec values act
            as defaults, explicit arguments override).
        enumeration_limit: component size cap for exact posterior
            enumeration; larger components use raw likelihoods.
        spec: optional :class:`~repro.spec.CampaignSpec` supplying defaults.
    """

    def __init__(
        self,
        policy: Optional[ConflictPolicy] = None,
        backend: Optional[str] = None,
        shard_threshold: Optional[int] = None,
        parallel_threshold: Optional[int] = None,
        n_workers: Optional[int] = None,
        enumeration_limit: int = DEFAULT_ENUMERATION_LIMIT,
        *,
        spec=None,
    ) -> None:
        from .dispatch import _engine_config  # local import to avoid a cycle

        self._enumeration_limit = enumeration_limit
        self._engine_kwargs = _engine_config(
            spec,
            policy=policy,
            backend=backend,
            shard_threshold=shard_threshold,
            parallel_threshold=parallel_threshold,
            n_workers=n_workers,
        )

    def run(
        self,
        order: Sequence[Union[Pair, CandidatePair]],
        oracle: LabelOracle,
    ) -> LabelingResult:
        """Label every pair of ``order``; the order's *sequence* is only the
        final tie-breaker — the adaptive scorer decides what to ask."""
        engine = LabelingEngine(order, **self._engine_kwargs)
        try:
            return self._run(engine, oracle)
        finally:
            engine.close()

    def _run(self, engine: LabelingEngine, oracle: LabelOracle) -> LabelingResult:
        scorer = ExpectedDeductionScorer(enumeration_limit=self._enumeration_limit)
        likelihoods = engine.likelihoods
        round_index = 0
        while not engine.is_done:
            unresolved = [
                CandidatePair(pair, likelihoods[pair])
                for pair in engine.pairs
                if pair not in engine.labeled
            ]
            chosen = scorer.choose(unresolved)
            if chosen is None:
                # Everything left is deducible; the sweep must finish the job.
                if not engine.sweep(round_index):
                    raise RuntimeError(
                        "adaptive loop stalled: unresolved pairs remain but "
                        "none is crowdsourceable or deducible"
                    )
                continue
            pair = chosen.pair
            engine.publish([pair])
            engine.result.rounds.append([pair])
            answer = oracle.label(pair)
            engine.record_answer(pair, answer, round_index)
            scorer.observe(pair, answer)
            for deduced_pair, deduced_label in engine.sweep(round_index):
                scorer.observe(deduced_pair, deduced_label)
            round_index += 1
        return engine.result
