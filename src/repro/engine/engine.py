"""The LabelingEngine: one event-driven core shared by every labeler.

The paper's framework is a single loop — deduce what transitivity implies,
crowdsource only the rest — yet the seed repo implemented that loop four
times (sequential, round-parallel, instant, and once more at HIT granularity
in the campaign runner).  :class:`LabelingEngine` owns the shared state and
event handling exactly once:

* the :class:`~repro.core.cluster_graph.ClusterGraph` of received answers;
* the pending-pair frontier, kept *incrementally* by
  :class:`~repro.core.sweep.PendingPairIndex` — after an answer, only pairs
  whose endpoint clusters changed are re-checked, instead of the O(pending)
  full rescan the pre-refactor labelers performed;
* the must-crowdsource selection
  (:func:`~repro.engine.frontier.must_crowdsource_frontier`), shared by all
  batch-publishing strategies;
* the :class:`~repro.core.result.LabelingResult` bookkeeping, with its
  invariant that every pair is recorded exactly once.

Dispatch policy — *when* to publish *which* must-crowdsource pairs — is
pluggable (see :mod:`repro.engine.dispatch` for the synchronous strategies
and :mod:`repro.engine.async_dispatch` for the asyncio runtime that drives
them all); the engine itself never calls an oracle or a platform, and never
waits — which is exactly what lets the async runtime apply crowd answers in
whatever order they arrive.  Events flow in through three entry points:

* :meth:`publish` — pairs handed to the crowd (excluded from future
  frontiers; withheld pairs also leave the deduction sweep, because the
  platform will answer them regardless);
* :meth:`record_answer` — a crowd answer arrived;
* :meth:`sweep` — resolve everything the answers so far imply.
"""

from __future__ import annotations

import base64
import enum
import hashlib
import sys
from array import array
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..core.cluster_graph import ClusterGraph, ConflictPolicy
from ..core.pairs import CandidatePair, Label, Pair, Provenance
from ..core.result import LabelingResult, PairOutcome
from ..core.sweep import PendingPairIndex
from .frontier import FrontierCursor
from .parallel import (
    DEFAULT_PARALLEL_THRESHOLD,
    ParallelShardedClusterGraph,
    ProcessShardExecutor,
)
from .sharding import ShardedClusterGraph, ShardedFrontier
from .vectorized import (
    VectorizedClusterGraph,
    VectorizedEngineCore,
    vectorized_available,
)

#: Above this many pairs the ``auto`` backend stops using the monolithic
#: graph: it picks the vectorized backend when numpy is importable (see
#: :mod:`repro.engine.vectorized`), else the pure-Python sharded one.
DEFAULT_SHARD_THRESHOLD = 100_000

_BACKENDS = (
    "auto",
    "monolithic",
    "sharded",
    "vectorized",
    "parallel",
    "distributed",
)

#: Version stamp of the :meth:`LabelingEngine.snapshot_state` encoding.
ENGINE_SNAPSHOT_VERSION = 1

#: Label wire codes shared with the PR-4 shard protocol (and the vectorized
#: ``label_code`` mask): 1 = matching, 2 = non-matching.
_SNAP_CODE_OF = {Label.MATCHING: 1, Label.NON_MATCHING: 2}
_SNAP_LABEL_OF = {1: Label.MATCHING, 2: Label.NON_MATCHING}
_SNAP_CROWDSOURCED, _SNAP_DEDUCED = 0, 1


def _pack_ints(values: Iterable[int], typecode: str = "q") -> str:
    """Base64-pack an int sequence (little-endian) for a JSON snapshot.

    One packed string parses as a single JSON token, so a 100k-event
    snapshot costs a memcpy to decode instead of a 400k-element nested
    JSON array — the difference between a recovery dominated by
    ``json.loads`` and one dominated by actual state rebuilding.
    """
    data = values if isinstance(values, array) else array(typecode, values)
    if sys.byteorder != "little":
        data = array(data.typecode, data)
        data.byteswap()
    return base64.b64encode(data.tobytes()).decode("ascii")


def _unpack_ints(payload: str, typecode: str = "q") -> array:
    data = array(typecode)
    data.frombytes(base64.b64decode(payload))
    if sys.byteorder != "little":
        data.byteswap()
    return data


class _DuplicateOrder(Exception):
    """Internal: the bulk order-indexing path found a duplicate pair."""


class EngineBackend(str, enum.Enum):
    """The engine backends, as an enum for the curated public surface.

    Members compare (and serialize) equal to their plain-string spellings,
    so ``LabelingEngine(order, backend=EngineBackend.SHARDED)`` and
    ``backend="sharded"`` are interchangeable everywhere a backend is
    accepted — including :class:`repro.spec.CampaignSpec`.
    """

    AUTO = "auto"
    MONOLITHIC = "monolithic"
    SHARDED = "sharded"
    VECTORIZED = "vectorized"
    PARALLEL = "parallel"
    DISTRIBUTED = "distributed"


class LabelingEngine:
    """Shared state machine for transitivity-aware labeling.

    Args:
        order: the labeling order (pairs or candidate pairs; candidate
            likelihoods are retained for likelihood-aware dispatch).
        policy: conflict policy for a freshly created graph (ignored when
            ``graph`` is given).
        graph: optional pre-populated deduction graph to continue from; any
            object with the ``ClusterGraph`` ``add``/``deduce`` contract is
            accepted (e.g. :class:`repro.ext.one_to_one.OneToOneClusterGraph`).
            An explicit graph pins the engine to the monolithic path.
        use_index: keep the pending-pair frontier incrementally via
            :class:`PendingPairIndex`.  Disabled automatically for foreign
            graph types without the listener slot; the full-scan fallback
            produces identical results (property-tested) and exists for
            cross-validation.
        backend: ``"monolithic"`` (one :class:`ClusterGraph` + one
            :class:`FrontierCursor`), ``"sharded"`` (per-component
            :class:`ShardedClusterGraph` + :class:`ShardedFrontier`),
            ``"vectorized"`` (array-native kernels over a flat integer
            encoding, see :mod:`repro.engine.vectorized`; requires numpy —
            the ``perf`` extra — and silently falls back to ``"sharded"``
            without it), ``"parallel"`` (the sharded decomposition fanned
            out across a :class:`~repro.engine.parallel.ProcessShardExecutor`
            worker pool; falls back to in-process sharding below
            ``parallel_threshold`` pairs, where pipe latency would dominate),
            ``"distributed"`` (the same decomposition across socket-attached
            :class:`~repro.engine.distributed.ShardWorkerHost` processes —
            local or remote — with re-assignment on worker loss; never
            auto-selected and never silently downgraded: requesting remote
            workers is an explicit topology decision),
            or ``"auto"`` — monolithic below ``shard_threshold`` pairs,
            vectorized at or above it when numpy is importable, sharded
            otherwise (process parallelism is never auto-selected).  All
            backends are property-tested identical in observable behaviour;
            sharding, vectorization, and process parallelism are purely
            scaling features.
        shard_threshold: the ``auto`` cut-over point.
        parallel_threshold: below this many pairs ``backend="parallel"``
            silently uses the in-process sharded backend instead (pass 0 to
            force worker processes, as the differential tests do).
        n_workers: worker process count for the parallel backend (defaults
            to the available CPUs, capped at 8); on the distributed backend
            it is the ``spawn_local_workers`` default when neither
            ``workers`` nor ``spawn_local_workers`` is given.
        mp_start_method: multiprocessing start method for the parallel
            backend and for spawned local distributed workers (default:
            ``fork`` where available, else ``spawn``).
        workers: distributed backend only — ``"host:port"`` addresses of
            running :class:`~repro.engine.distributed.ShardWorkerHost`
            processes the coordinator should connect to.
        spawn_local_workers: distributed backend only — spawn this many
            loopback worker-host child processes (the tests/examples
            convenience; combinable with ``workers``).
    """

    def __init__(
        self,
        order: Sequence[Union[Pair, CandidatePair]],
        *,
        policy: ConflictPolicy = ConflictPolicy.STRICT,
        graph: Optional[ClusterGraph] = None,
        use_index: bool = True,
        backend: str = "auto",
        shard_threshold: int = DEFAULT_SHARD_THRESHOLD,
        parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD,
        n_workers: Optional[int] = None,
        mp_start_method: Optional[str] = None,
        workers: Optional[Sequence[str]] = None,
        spawn_local_workers: Optional[int] = None,
    ) -> None:
        if isinstance(backend, EngineBackend):
            backend = backend.value
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        # Duplicate pairs in the order collapse to their first occurrence:
        # a pair has one label, and LabelingResult records each pair once.
        # Bulk path first: an all-CandidatePair order with no duplicates
        # (every spec-built order, including journal recovery) builds the
        # three indexes with C-speed zips; a bare Pair in the order raises
        # AttributeError and a duplicate shows up as a short position
        # dict, both falling back to the general one-at-a-time loop.
        try:
            pairs = [item.pair for item in order]
            position = dict(zip(pairs, range(len(pairs))))
            if len(position) != len(pairs):
                raise _DuplicateOrder
            likelihoods = dict(
                zip(pairs, (item.likelihood for item in order))
            )
        except (AttributeError, _DuplicateOrder):
            # Duplicate pairs in the order collapse to their first
            # occurrence: a pair has one label, and LabelingResult
            # records each pair once.
            pairs, position, likelihoods = [], {}, {}
            for item in order:
                if isinstance(item, CandidatePair):
                    pair, likelihood = item.pair, item.likelihood
                else:
                    pair, likelihood = item, 0.5
                if pair not in likelihoods:
                    position[pair] = len(likelihoods)
                    pairs.append(pair)
                    likelihoods[pair] = likelihood
        self.pairs: List[Pair] = pairs
        self.likelihoods: Dict[Pair, float] = likelihoods
        self._position: Dict[Pair, int] = position
        self._executor: Optional[ProcessShardExecutor] = None
        self._vectorized: Optional[VectorizedEngineCore] = None
        if graph is not None:
            # A caller-provided graph (pre-populated or foreign) pins the
            # monolithic path: its contents cannot be redistributed.
            # Explicitly requesting sharding alongside one is a contradiction
            # the caller must resolve, not a silent downgrade.
            if backend in ("sharded", "vectorized", "parallel", "distributed"):
                raise ValueError(
                    f"backend={backend!r} cannot be combined with an explicit "
                    "graph: a pre-populated graph cannot be redistributed "
                    "into shards or re-encoded as arrays (drop the graph "
                    "argument or use backend='auto'/'monolithic')"
                )
            self.backend = "monolithic"
            self.graph = graph
        else:
            if backend == "auto":
                if len(self.pairs) < shard_threshold:
                    backend = "monolithic"
                else:
                    backend = "vectorized" if vectorized_available() else "sharded"
            elif backend == "vectorized" and not vectorized_available():
                # numpy is an optional dependency (the ``perf`` extra): the
                # documented graceful fallback to the pure-Python backend.
                backend = "sharded"
            elif backend == "parallel" and len(self.pairs) < parallel_threshold:
                # Process orchestration only pays for itself at scale: the
                # documented auto-fallback to in-process sharding.
                backend = "sharded"
            self.backend = backend
            if backend == "vectorized":
                self._vectorized = VectorizedEngineCore(
                    self.pairs, policy=policy, positions=self._position
                )
                self.graph = VectorizedClusterGraph(self._vectorized)
            elif backend == "parallel":
                self._executor = ProcessShardExecutor(
                    self.pairs,
                    positions=self._position,
                    policy=policy,
                    n_workers=n_workers,
                    start_method=mp_start_method,
                )
                self.graph = ParallelShardedClusterGraph(self._executor, policy)
            elif backend == "distributed":
                # Imported lazily: the coordinator reuses this module's
                # snapshot packing, so a top-level import would be circular.
                from .distributed import ShardCoordinator

                if workers is None and spawn_local_workers is None:
                    # No explicit topology: n_workers doubles as the local
                    # worker count, mirroring the parallel backend's knob.
                    spawn_local_workers = n_workers
                self._executor = ShardCoordinator(
                    self.pairs,
                    positions=self._position,
                    policy=policy,
                    workers=workers,
                    spawn_local_workers=spawn_local_workers,
                    mp_start_method=mp_start_method,
                )
                self.graph = ParallelShardedClusterGraph(self._executor, policy)
            elif backend == "sharded":
                self.graph = ShardedClusterGraph(policy=policy)
            else:
                self.graph = ClusterGraph(policy=policy)
        self.result = LabelingResult(order=list(self.pairs))
        self.labeled: Dict[Pair, Label] = {}
        #: Pairs handed to the crowd and not yet answered; excluded from the
        #: frontier so they are never published twice.
        self.published: Set[Pair] = set()
        #: Published pairs that are also out of the deduction sweep's reach
        #: (already on the platform: the crowd will answer them regardless).
        self._withheld: Set[Pair] = set()
        self._index: Optional[PendingPairIndex] = None
        if (
            use_index
            and isinstance(self.graph, (ClusterGraph, ShardedClusterGraph))
            and self.graph.listener is None
        ):
            self._index = PendingPairIndex(self.graph, self.pairs)
        # Order-preserving pending list for the full-scan fallback sweep.
        self._unlabeled: List[Pair] = list(self.pairs)
        # Frontier machinery: per-component cached frontiers when sharded,
        # a single decided-prefix cursor otherwise.  Both reproduce
        # must_crowdsource_frontier exactly (property-tested).  Built lazily
        # on the first frontier() call — strategies that deduce at visit
        # time (SequentialDispatch) never pay for it.  On the parallel
        # backend the frontier lives inside the workers instead.
        self._sharded_frontier: Optional[ShardedFrontier] = None
        self._frontier_cursor: Optional[FrontierCursor] = None
        # True while sweep() is folding executor-resolved deductions back in:
        # the workers already recorded those, so record_deduced must not
        # echo them across the pipe again.
        self._applying_executor_sweep = False

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def n_labeled(self) -> int:
        return len(self.labeled)

    @property
    def is_done(self) -> bool:
        """True when every pair in the order has a final label."""
        return len(self.labeled) >= len(self.pairs)

    def deduce(self, pair: Pair) -> Optional[Label]:
        """What the received answers imply about ``pair`` (Algorithm 1)."""
        return self.graph.deduce(pair)

    def state_fingerprint(self) -> dict:
        """A canonical, backend-independent digest of the engine state.

        Built for differential testing — two engines that processed the same
        answers (in any backend, in any arrival order that the conflict
        policy resolves identically) produce *equal* fingerprints, and the
        journal replay tests require the resumed engine's fingerprint to be
        byte-identical (after ``json.dumps(..., sort_keys=True)``) to the
        uninterrupted run's.

        The digest is computed purely from state held in this process
        (``labeled``/``published`` and the order), never from graph queries:
        it stays readable after :meth:`close`, including on the parallel
        backend whose graph lives in (possibly terminated) workers.  The
        frontier is derived by re-running the shared Algorithm-3 selection
        over the labeled map, so it is exact without touching the backend.
        """
        labels = sorted(
            (repr(pair), label.value) for pair, label in self.labeled.items()
        )
        # The matching-partition: connected components of the answered
        # MATCHING pairs, via a throwaway union-find over object reprs.
        parent: Dict[str, str] = {}

        def find(x: str) -> str:
            parent.setdefault(x, x)
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for pair, label in self.labeled.items():
            if label is Label.MATCHING:
                ra, rb = find(repr(pair.left)), find(repr(pair.right))
                if ra != rb:
                    parent[rb] = ra
        clusters: Dict[str, List[str]] = {}
        for member in parent:
            clusters.setdefault(find(member), []).append(member)
        partition = sorted(sorted(members) for members in clusters.values())
        if self.is_done:
            frontier: List[Pair] = []
        else:
            # Recompute Algorithm 3 from the labeled map alone (the shared
            # reference selection) so closed/parallel backends need not be
            # queried.  Unanswered published pairs keep their assumed-
            # matching role but are not selected, exactly as frontier().
            from .frontier import must_crowdsource_frontier

            frontier = must_crowdsource_frontier(
                self.pairs, self.labeled, exclude=self.published
            )
        return {
            "labels": labels,
            "partition": partition,
            "frontier": [repr(pair) for pair in frontier],
            "published": sorted(repr(pair) for pair in self.published),
            "n_labeled": self.n_labeled,
            "n_crowdsourced": self.result.n_crowdsourced,
            "n_deduced": self.result.n_deduced,
        }

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------
    def order_digest(self) -> str:
        """SHA-256 over the labeling order, binding snapshots to it."""
        digest = getattr(self, "_order_digest", None)
        if digest is None:
            hasher = hashlib.sha256()
            # One join + one update instead of 2 per pair; the trailing
            # separator keeps the digest identical to the per-pair form.
            hasher.update("\x1f".join(map(repr, self.pairs)).encode("utf-8"))
            if self.pairs:
                hasher.update(b"\x1f")
            digest = self._order_digest = hasher.hexdigest()
        return digest

    def snapshot_state(self) -> dict:
        """A compact, JSON-serializable encoding of the engine state.

        The snapshot captures everything :meth:`restore_state` needs to
        rebuild an equivalent engine over the *same* labeling order (bound
        by :meth:`order_digest`): every recorded outcome in global
        resolution order, the publication rounds, and the published/
        withheld sets — all as order positions, so the payload stays small
        and backend-independent.  On the vectorized backend a ``native``
        sub-payload additionally serializes the flat array state directly
        (see :meth:`~repro.engine.vectorized.VectorizedEngineCore
        .snapshot_arrays`), letting restore skip per-record graph replay.

        Restoring the snapshot into a fresh engine of any backend yields a
        byte-identical :meth:`state_fingerprint` — the property the journal
        compaction pipeline (:mod:`repro.service`) is built on.
        """
        outcomes = sorted(
            self.result.outcomes.values(), key=lambda o: o.position
        )
        position = self._position
        # int32 columns: positions/rounds are bounded by the order length,
        # and 4-byte lanes halve the base64 footprint of the JSON line.
        ev_pos, ev_round = array("i"), array("i")
        ev_label, ev_prov = array("b"), array("b")
        for o in outcomes:
            ev_pos.append(position[o.pair])
            ev_label.append(_SNAP_CODE_OF[o.label])
            ev_prov.append(_SNAP_CROWDSOURCED if o.crowdsourced else _SNAP_DEDUCED)
            ev_round.append(o.round_index)
        round_flat, round_sizes = array("i"), array("i")
        for batch in self.result.rounds:
            round_sizes.append(len(batch))
            for pair in batch:
                round_flat.append(position[pair])
        policy = getattr(self.graph, "policy", None)
        snapshot = {
            "version": ENGINE_SNAPSHOT_VERSION,
            "backend": self.backend,
            "policy": policy.value if policy is not None else None,
            "n_pairs": len(self.pairs),
            "order_digest": self.order_digest(),
            # Event/position lists ship as packed base64 columns (see
            # _pack_ints): JSON-safe, ~4x smaller, and decodable in one
            # memcpy per column instead of one token per element.
            "events": {
                "pos": _pack_ints(ev_pos),
                "label": _pack_ints(ev_label, "b"),
                "prov": _pack_ints(ev_prov, "b"),
                "round": _pack_ints(ev_round),
            },
            "rounds": {
                "flat": _pack_ints(round_flat),
                "sizes": _pack_ints(round_sizes),
            },
            "published": _pack_ints(
                sorted(position[pair] for pair in self.published), "i"
            ),
            "withheld": _pack_ints(
                sorted(position[pair] for pair in self._withheld), "i"
            ),
        }
        if self._vectorized is not None:
            snapshot["native"] = self._vectorized.snapshot_arrays()
        return snapshot

    def restore_state(self, snapshot: dict) -> None:
        """Load a :meth:`snapshot_state` payload into this (fresh) engine.

        The engine must have been built over the same labeling order (any
        backend; the snapshot is portable).  Restore replays the recorded
        outcomes through the normal event entry points in their original
        global order — which rebuilds the deduction graph, the pending-pair
        index, and FIRST_WINS conflict bookkeeping exactly, because the
        graph is a pure function of the crowdsourced-answer sequence — then
        re-applies the published/withheld sets.  The vectorized backend
        short-circuits graph replay by loading the ``native`` array payload
        and only rebuilding the per-pair result records.

        Raises:
            ValueError: on a version/order mismatch, or if this engine has
                already recorded state.
        """
        if snapshot.get("version") != ENGINE_SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported engine snapshot version {snapshot.get('version')!r}"
            )
        if self.result.outcomes or self.published or self._withheld:
            raise ValueError("restore_state requires a freshly built engine")
        if snapshot["n_pairs"] != len(self.pairs) or (
            snapshot["order_digest"] != self.order_digest()
        ):
            raise ValueError(
                "snapshot was taken over a different labeling order"
            )
        policy = getattr(self.graph, "policy", None)
        if policy is not None and snapshot.get("policy") not in (None, policy.value):
            raise ValueError(
                f"snapshot policy {snapshot['policy']!r} does not match "
                f"engine policy {policy.value!r}"
            )
        pairs = self.pairs
        packed = snapshot["events"]
        published = _unpack_ints(snapshot["published"], "i")
        withheld = _unpack_ints(snapshot["withheld"], "i")
        native = snapshot.get("native")
        native_ok = (
            native is not None
            and self._vectorized is not None
            and self._vectorized.restore_arrays(native)
        )
        if native_ok:
            # The graph, label masks, and exclusions are already in the
            # arrays; only the per-pair engine bookkeeping is rebuilt here,
            # bypassing the per-record event path entirely.  The label map
            # (which ``is_done`` and live dispatch read immediately) is one
            # bulk dict update; the per-pair PairOutcome records and the
            # round batches are *deferred* — a recovered campaign needs
            # them only when something reports on the result, so their
            # reconstruction runs on first access instead of inside the
            # recovery window.
            event_pairs = [pairs[pos] for pos in _unpack_ints(packed["pos"], "i")]
            label_of = _SNAP_LABEL_OF
            labels = [label_of[c] for c in _unpack_ints(packed["label"], "b")]
            self.labeled.update(zip(event_pairs, labels))
            prov_col = packed["prov"]
            round_col = packed["round"]
            rounds_payload = snapshot["rounds"]

            def rebuild(result) -> None:
                outcomes = {}
                provenances = (Provenance.CROWDSOURCED, Provenance.DEDUCED)
                new = object.__new__
                n = 0
                # PairOutcome is a frozen dataclass, whose generated
                # __init__ pays one guarded object.__setattr__ per field —
                # filling the instance dict directly restores 100k+
                # outcomes in a fraction of that.  Field values come
                # straight from a snapshot this process wrote, so no
                # validation is being skipped.
                for pair, label, prov, round_index in zip(
                    event_pairs,
                    labels,
                    _unpack_ints(prov_col, "b"),
                    _unpack_ints(round_col, "i"),
                ):
                    outcome = new(PairOutcome)
                    fields = outcome.__dict__
                    fields["pair"] = pair
                    fields["label"] = label
                    fields["provenance"] = provenances[prov]
                    fields["round_index"] = round_index
                    fields["position"] = n
                    outcomes[pair] = outcome
                    n += 1
                result.__dict__["outcomes"] = outcomes
                round_flat = iter(_unpack_ints(rounds_payload["flat"], "i"))
                result.__dict__["rounds"] = [
                    [pairs[next(round_flat)] for _ in range(size)]
                    for size in _unpack_ints(rounds_payload["sizes"], "i")
                ]

            self.result.defer_restore(rebuild)
            self.published.update(pairs[pos] for pos in published)
            self._withheld.update(pairs[pos] for pos in withheld)
            return
        else:
            events = zip(
                _unpack_ints(packed["pos"], "i"),
                _unpack_ints(packed["label"], "b"),
                _unpack_ints(packed["prov"], "b"),
                _unpack_ints(packed["round"], "i"),
            )
            for pos, code, prov, round_index in events:
                pair = pairs[pos]
                label = _SNAP_LABEL_OF[code]
                if prov == _SNAP_CROWDSOURCED:
                    self.record_answer(pair, label, round_index)
                else:
                    self.record_deduced(pair, label, round_index)
            self.publish([pairs[pos] for pos in published], withhold=False)
            self.withhold([pairs[pos] for pos in withheld])
        round_flat = iter(_unpack_ints(snapshot["rounds"]["flat"], "i"))
        self.result.rounds = [
            [pairs[next(round_flat)] for _ in range(size)]
            for size in _unpack_ints(snapshot["rounds"]["sizes"], "i")
        ]

    @property
    def executor(self):
        """The parallel backend's :class:`ProcessShardExecutor`, or None."""
        return self._executor

    def close(self) -> None:
        """Release backend resources (the parallel backend's worker
        processes).  Idempotent; a no-op on in-process backends.  After
        closing, graph queries on the parallel backend raise
        :class:`~repro.engine.parallel.ShardWorkerError` — the labeling
        result and label map remain readable (they live in this process).
        """
        if self._executor is not None:
            self._executor.close()

    def __enter__(self) -> "LabelingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # frontier
    # ------------------------------------------------------------------
    def frontier(self) -> List[Pair]:
        """The current must-crowdsource pairs, in order (Algorithm 3).

        Already-published pairs keep their assumed-matching role but are not
        selected again.  The selection is incremental: the monolithic backend
        skips the decided prefix of the order (:class:`FrontierCursor`), the
        sharded backend additionally recomputes only components touched since
        the last call (:class:`ShardedFrontier`).
        """
        if self._executor is not None:
            # The workers recompute their dirty components concurrently and
            # already know every labeled/published change (events were routed
            # to them as they happened).
            return self._executor.frontier()
        if self._vectorized is not None:
            return self._vectorized.frontier(self.labeled, self.published)
        if self.backend == "sharded":
            if self._sharded_frontier is None:
                # Safe to build late: a fresh ShardedFrontier starts with
                # every component dirty, so it reads the current labeled/
                # published state in full on its first selection.
                self._sharded_frontier = ShardedFrontier(self.pairs)
            return self._sharded_frontier.frontier(self.labeled, self.published)
        if self._frontier_cursor is None:
            self._frontier_cursor = FrontierCursor(self.pairs)
        return self._frontier_cursor.frontier(self.labeled, self.published)

    def _mark_frontier_dirty(self, pair: Pair) -> None:
        """A pair's labeled/published status changed — invalidate its
        component's cached frontier (sharded/vectorized backends only; a
        no-op until the sharded frontier machinery exists, which starts
        all-dirty anyway)."""
        if self._sharded_frontier is not None:
            self._sharded_frontier.mark_dirty(pair)
        if self._vectorized is not None:
            self._vectorized.mark_frontier_dirty(pair)

    def publish(self, batch: Iterable[Pair], *, withhold: bool = True) -> None:
        """Mark ``batch`` as handed to the crowd.

        Args:
            batch: pairs being published.
            withhold: remove the pairs from the deduction sweep too (they are
                on the platform and will be answered regardless).  Pass False
                for pairs merely *buffered* toward a full HIT — those can
                still be rescued by deduction before they reach the platform.
        """
        batch = list(batch)  # tolerate single-pass iterables
        for pair in batch:
            self.published.add(pair)
            self._mark_frontier_dirty(pair)
        if self._vectorized is not None:
            self._vectorized.note_published(batch)
        if self._executor is not None:
            # One routed message covers both the publish and the optional
            # withhold on the owning workers.
            self._executor.publish(batch, withhold=withhold)
            if withhold:
                self._withheld.update(batch)
            return
        if withhold:
            self.withhold(batch)

    def withhold(self, batch: Iterable[Pair]) -> None:
        """Take ``batch`` out of the deduction sweep (now on the platform)."""
        batch = list(batch)
        for pair in batch:
            self._withheld.add(pair)
            if self._index is not None:
                self._index.remove(pair)
        if self._vectorized is not None:
            self._vectorized.note_withheld(batch)
        if self._executor is not None:
            self._executor.withhold(batch)

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def record_deduced(self, pair: Pair, label: Label, round_index: int) -> None:
        """Record a label obtained for free via transitive relations."""
        self.labeled[pair] = label
        self.result.record(pair, label, Provenance.DEDUCED, round_index)
        self.published.discard(pair)
        if self._vectorized is not None:
            self._vectorized.note_labeled(pair, label)
        self._mark_frontier_dirty(pair)
        if self._index is not None:
            self._index.remove(pair)
        if self._executor is not None and not self._applying_executor_sweep:
            # A deduction decided in this process (visit-time path): the
            # owning worker must learn it too.  Sweep-resolved deductions
            # skip this — the worker recorded them before replying.
            self._executor.record_deduced(pair, label)

    def record_answer(self, pair: Pair, label: Label, round_index: int) -> bool:
        """Record a crowd answer and fold it into the deduction graph.

        The answer always becomes the pair's final label; under FIRST_WINS a
        contradictory edge is dropped from the graph (and False returned) but
        the label still stands — crowd answers win for published pairs.

        Returns:
            True if the edge was applied, False if it was rejected as a
            conflict under the FIRST_WINS policy.

        Raises:
            InconsistentLabelError: under STRICT, when the answer contradicts
                what the graph already implies.
        """
        self.published.discard(pair)
        self._withheld.discard(pair)
        self.labeled[pair] = label
        if self._vectorized is not None:
            self._vectorized.note_labeled(pair, label)
        self._mark_frontier_dirty(pair)
        applied = self.graph.add(pair, label)
        self.result.record(pair, label, Provenance.CROWDSOURCED, round_index)
        if self._index is not None:
            self._index.remove(pair)
            self._index.note_objects_seen(pair.left, pair.right)
        return applied

    def record_answers(
        self,
        answers: Iterable[Tuple[Pair, Label]],
        round_index: int,
    ) -> List[Tuple[Pair, Label]]:
        """Record a contiguous run of crowd answers, then sweep once.

        Semantically identical to calling :meth:`record_answer` per answer
        followed by one :meth:`sweep` — that is exactly what it does — but
        it is the intended entry point for batched completions: the
        per-answer work is O(α) on every backend, and the single trailing
        sweep re-checks each component dirtied by the run *once*, instead
        of once per answer.  On the vectorized backend that re-check is one
        bulk array pass per dirty component (see
        :meth:`~repro.engine.vectorized.VectorizedEngineCore.sweep`).

        Returns:
            the deductions the run implied, as :meth:`sweep`.
        """
        for pair, label in answers:
            self.record_answer(pair, label, round_index)
        return self.sweep(round_index)

    def sweep(self, round_index: int) -> List[Tuple[Pair, Label]]:
        """Resolve every pending pair the answers so far imply.

        With the index this is incremental: only pairs whose endpoint
        clusters changed since the last sweep are re-checked.  Without it,
        the full pending list is rescanned (the pre-refactor behaviour, kept
        for cross-validation).  Withheld pairs are never resolved — they are
        on the platform and will be crowd-answered.

        Returns:
            (pair, deduced label) per newly resolved pair, in order position.
        """
        if self._executor is not None:
            resolved = self._executor.sweep()
            self._applying_executor_sweep = True
            try:
                for pair, label in resolved:
                    self.record_deduced(pair, label, round_index)
            finally:
                self._applying_executor_sweep = False
            return resolved
        if self._vectorized is not None:
            # One bulk pass per component dirtied since the last sweep;
            # record_deduced folds each resolution into the result and the
            # core's label state (note_labeled).
            resolved = self._vectorized.sweep()
            for pair, label in resolved:
                self.record_deduced(pair, label, round_index)
            return resolved
        if self._index is not None:
            resolved = sorted(
                self._index.sweep(), key=lambda entry: self._position[entry[0]]
            )
        else:
            resolved = []
            still: List[Pair] = []
            for pair in self._unlabeled:
                if pair in self.labeled:
                    continue
                if pair in self._withheld:
                    still.append(pair)
                    continue
                deduced = self.graph.deduce(pair)
                if deduced is not None:
                    resolved.append((pair, deduced))
                else:
                    still.append(pair)
            self._unlabeled = still
        for pair, label in resolved:
            self.record_deduced(pair, label, round_index)
        return resolved
