"""The LabelingEngine: one event-driven core shared by every labeler.

The paper's framework is a single loop — deduce what transitivity implies,
crowdsource only the rest — yet the seed repo implemented that loop four
times (sequential, round-parallel, instant, and once more at HIT granularity
in the campaign runner).  :class:`LabelingEngine` owns the shared state and
event handling exactly once:

* the :class:`~repro.core.cluster_graph.ClusterGraph` of received answers;
* the pending-pair frontier, kept *incrementally* by
  :class:`~repro.core.sweep.PendingPairIndex` — after an answer, only pairs
  whose endpoint clusters changed are re-checked, instead of the O(pending)
  full rescan the pre-refactor labelers performed;
* the must-crowdsource selection
  (:func:`~repro.engine.frontier.must_crowdsource_frontier`), shared by all
  batch-publishing strategies;
* the :class:`~repro.core.result.LabelingResult` bookkeeping, with its
  invariant that every pair is recorded exactly once.

Dispatch policy — *when* to publish *which* must-crowdsource pairs — is
pluggable (see :mod:`repro.engine.dispatch` for the synchronous strategies
and :mod:`repro.engine.async_dispatch` for the asyncio runtime that drives
them all); the engine itself never calls an oracle or a platform, and never
waits — which is exactly what lets the async runtime apply crowd answers in
whatever order they arrive.  Events flow in through three entry points:

* :meth:`publish` — pairs handed to the crowd (excluded from future
  frontiers; withheld pairs also leave the deduction sweep, because the
  platform will answer them regardless);
* :meth:`record_answer` — a crowd answer arrived;
* :meth:`sweep` — resolve everything the answers so far imply.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..core.cluster_graph import ClusterGraph, ConflictPolicy
from ..core.pairs import CandidatePair, Label, Pair, Provenance
from ..core.result import LabelingResult
from ..core.sweep import PendingPairIndex
from .frontier import FrontierCursor
from .parallel import (
    DEFAULT_PARALLEL_THRESHOLD,
    ParallelShardedClusterGraph,
    ProcessShardExecutor,
)
from .sharding import ShardedClusterGraph, ShardedFrontier
from .vectorized import (
    VectorizedClusterGraph,
    VectorizedEngineCore,
    vectorized_available,
)

#: Above this many pairs the ``auto`` backend stops using the monolithic
#: graph: it picks the vectorized backend when numpy is importable (see
#: :mod:`repro.engine.vectorized`), else the pure-Python sharded one.
DEFAULT_SHARD_THRESHOLD = 100_000

_BACKENDS = ("auto", "monolithic", "sharded", "vectorized", "parallel")


class EngineBackend(str, enum.Enum):
    """The engine backends, as an enum for the curated public surface.

    Members compare (and serialize) equal to their plain-string spellings,
    so ``LabelingEngine(order, backend=EngineBackend.SHARDED)`` and
    ``backend="sharded"`` are interchangeable everywhere a backend is
    accepted — including :class:`repro.spec.CampaignSpec`.
    """

    AUTO = "auto"
    MONOLITHIC = "monolithic"
    SHARDED = "sharded"
    VECTORIZED = "vectorized"
    PARALLEL = "parallel"


class LabelingEngine:
    """Shared state machine for transitivity-aware labeling.

    Args:
        order: the labeling order (pairs or candidate pairs; candidate
            likelihoods are retained for likelihood-aware dispatch).
        policy: conflict policy for a freshly created graph (ignored when
            ``graph`` is given).
        graph: optional pre-populated deduction graph to continue from; any
            object with the ``ClusterGraph`` ``add``/``deduce`` contract is
            accepted (e.g. :class:`repro.ext.one_to_one.OneToOneClusterGraph`).
            An explicit graph pins the engine to the monolithic path.
        use_index: keep the pending-pair frontier incrementally via
            :class:`PendingPairIndex`.  Disabled automatically for foreign
            graph types without the listener slot; the full-scan fallback
            produces identical results (property-tested) and exists for
            cross-validation.
        backend: ``"monolithic"`` (one :class:`ClusterGraph` + one
            :class:`FrontierCursor`), ``"sharded"`` (per-component
            :class:`ShardedClusterGraph` + :class:`ShardedFrontier`),
            ``"vectorized"`` (array-native kernels over a flat integer
            encoding, see :mod:`repro.engine.vectorized`; requires numpy —
            the ``perf`` extra — and silently falls back to ``"sharded"``
            without it), ``"parallel"`` (the sharded decomposition fanned
            out across a :class:`~repro.engine.parallel.ProcessShardExecutor`
            worker pool; falls back to in-process sharding below
            ``parallel_threshold`` pairs, where pipe latency would dominate),
            or ``"auto"`` — monolithic below ``shard_threshold`` pairs,
            vectorized at or above it when numpy is importable, sharded
            otherwise (process parallelism is never auto-selected).  All
            backends are property-tested identical in observable behaviour;
            sharding, vectorization, and process parallelism are purely
            scaling features.
        shard_threshold: the ``auto`` cut-over point.
        parallel_threshold: below this many pairs ``backend="parallel"``
            silently uses the in-process sharded backend instead (pass 0 to
            force worker processes, as the differential tests do).
        n_workers: worker process count for the parallel backend (defaults
            to the available CPUs, capped at 8).
        mp_start_method: multiprocessing start method for the parallel
            backend (default: ``fork`` where available, else ``spawn``).
    """

    def __init__(
        self,
        order: Sequence[Union[Pair, CandidatePair]],
        *,
        policy: ConflictPolicy = ConflictPolicy.STRICT,
        graph: Optional[ClusterGraph] = None,
        use_index: bool = True,
        backend: str = "auto",
        shard_threshold: int = DEFAULT_SHARD_THRESHOLD,
        parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD,
        n_workers: Optional[int] = None,
        mp_start_method: Optional[str] = None,
    ) -> None:
        if isinstance(backend, EngineBackend):
            backend = backend.value
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        # Duplicate pairs in the order collapse to their first occurrence:
        # a pair has one label, and LabelingResult records each pair once.
        self.pairs: List[Pair] = []
        self.likelihoods: Dict[Pair, float] = {}
        for item in order:
            if isinstance(item, CandidatePair):
                pair, likelihood = item.pair, item.likelihood
            else:
                pair, likelihood = item, 0.5
            if pair not in self.likelihoods:
                self.pairs.append(pair)
                self.likelihoods[pair] = likelihood
        self._position = {pair: i for i, pair in enumerate(self.pairs)}
        self._executor: Optional[ProcessShardExecutor] = None
        self._vectorized: Optional[VectorizedEngineCore] = None
        if graph is not None:
            # A caller-provided graph (pre-populated or foreign) pins the
            # monolithic path: its contents cannot be redistributed.
            # Explicitly requesting sharding alongside one is a contradiction
            # the caller must resolve, not a silent downgrade.
            if backend in ("sharded", "vectorized", "parallel"):
                raise ValueError(
                    f"backend={backend!r} cannot be combined with an explicit "
                    "graph: a pre-populated graph cannot be redistributed "
                    "into shards or re-encoded as arrays (drop the graph "
                    "argument or use backend='auto'/'monolithic')"
                )
            self.backend = "monolithic"
            self.graph = graph
        else:
            if backend == "auto":
                if len(self.pairs) < shard_threshold:
                    backend = "monolithic"
                else:
                    backend = "vectorized" if vectorized_available() else "sharded"
            elif backend == "vectorized" and not vectorized_available():
                # numpy is an optional dependency (the ``perf`` extra): the
                # documented graceful fallback to the pure-Python backend.
                backend = "sharded"
            elif backend == "parallel" and len(self.pairs) < parallel_threshold:
                # Process orchestration only pays for itself at scale: the
                # documented auto-fallback to in-process sharding.
                backend = "sharded"
            self.backend = backend
            if backend == "vectorized":
                self._vectorized = VectorizedEngineCore(self.pairs, policy=policy)
                self.graph = VectorizedClusterGraph(self._vectorized)
            elif backend == "parallel":
                self._executor = ProcessShardExecutor(
                    self.pairs,
                    positions=self._position,
                    policy=policy,
                    n_workers=n_workers,
                    start_method=mp_start_method,
                )
                self.graph = ParallelShardedClusterGraph(self._executor, policy)
            elif backend == "sharded":
                self.graph = ShardedClusterGraph(policy=policy)
            else:
                self.graph = ClusterGraph(policy=policy)
        self.result = LabelingResult(order=list(self.pairs))
        self.labeled: Dict[Pair, Label] = {}
        #: Pairs handed to the crowd and not yet answered; excluded from the
        #: frontier so they are never published twice.
        self.published: Set[Pair] = set()
        #: Published pairs that are also out of the deduction sweep's reach
        #: (already on the platform: the crowd will answer them regardless).
        self._withheld: Set[Pair] = set()
        self._index: Optional[PendingPairIndex] = None
        if (
            use_index
            and isinstance(self.graph, (ClusterGraph, ShardedClusterGraph))
            and self.graph.listener is None
        ):
            self._index = PendingPairIndex(self.graph, self.pairs)
        # Order-preserving pending list for the full-scan fallback sweep.
        self._unlabeled: List[Pair] = list(self.pairs)
        # Frontier machinery: per-component cached frontiers when sharded,
        # a single decided-prefix cursor otherwise.  Both reproduce
        # must_crowdsource_frontier exactly (property-tested).  Built lazily
        # on the first frontier() call — strategies that deduce at visit
        # time (SequentialDispatch) never pay for it.  On the parallel
        # backend the frontier lives inside the workers instead.
        self._sharded_frontier: Optional[ShardedFrontier] = None
        self._frontier_cursor: Optional[FrontierCursor] = None
        # True while sweep() is folding executor-resolved deductions back in:
        # the workers already recorded those, so record_deduced must not
        # echo them across the pipe again.
        self._applying_executor_sweep = False

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def n_labeled(self) -> int:
        return len(self.labeled)

    @property
    def is_done(self) -> bool:
        """True when every pair in the order has a final label."""
        return len(self.labeled) >= len(self.pairs)

    def deduce(self, pair: Pair) -> Optional[Label]:
        """What the received answers imply about ``pair`` (Algorithm 1)."""
        return self.graph.deduce(pair)

    def state_fingerprint(self) -> dict:
        """A canonical, backend-independent digest of the engine state.

        Built for differential testing — two engines that processed the same
        answers (in any backend, in any arrival order that the conflict
        policy resolves identically) produce *equal* fingerprints, and the
        journal replay tests require the resumed engine's fingerprint to be
        byte-identical (after ``json.dumps(..., sort_keys=True)``) to the
        uninterrupted run's.

        The digest is computed purely from state held in this process
        (``labeled``/``published`` and the order), never from graph queries:
        it stays readable after :meth:`close`, including on the parallel
        backend whose graph lives in (possibly terminated) workers.  The
        frontier is derived by re-running the shared Algorithm-3 selection
        over the labeled map, so it is exact without touching the backend.
        """
        labels = sorted(
            (repr(pair), label.value) for pair, label in self.labeled.items()
        )
        # The matching-partition: connected components of the answered
        # MATCHING pairs, via a throwaway union-find over object reprs.
        parent: Dict[str, str] = {}

        def find(x: str) -> str:
            parent.setdefault(x, x)
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for pair, label in self.labeled.items():
            if label is Label.MATCHING:
                ra, rb = find(repr(pair.left)), find(repr(pair.right))
                if ra != rb:
                    parent[rb] = ra
        clusters: Dict[str, List[str]] = {}
        for member in parent:
            clusters.setdefault(find(member), []).append(member)
        partition = sorted(sorted(members) for members in clusters.values())
        if self.is_done:
            frontier: List[Pair] = []
        else:
            # Recompute Algorithm 3 from the labeled map alone (the shared
            # reference selection) so closed/parallel backends need not be
            # queried.  Unanswered published pairs keep their assumed-
            # matching role but are not selected, exactly as frontier().
            from .frontier import must_crowdsource_frontier

            frontier = must_crowdsource_frontier(
                self.pairs, self.labeled, exclude=self.published
            )
        return {
            "labels": labels,
            "partition": partition,
            "frontier": [repr(pair) for pair in frontier],
            "published": sorted(repr(pair) for pair in self.published),
            "n_labeled": self.n_labeled,
            "n_crowdsourced": self.result.n_crowdsourced,
            "n_deduced": self.result.n_deduced,
        }

    @property
    def executor(self):
        """The parallel backend's :class:`ProcessShardExecutor`, or None."""
        return self._executor

    def close(self) -> None:
        """Release backend resources (the parallel backend's worker
        processes).  Idempotent; a no-op on in-process backends.  After
        closing, graph queries on the parallel backend raise
        :class:`~repro.engine.parallel.ShardWorkerError` — the labeling
        result and label map remain readable (they live in this process).
        """
        if self._executor is not None:
            self._executor.close()

    def __enter__(self) -> "LabelingEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # frontier
    # ------------------------------------------------------------------
    def frontier(self) -> List[Pair]:
        """The current must-crowdsource pairs, in order (Algorithm 3).

        Already-published pairs keep their assumed-matching role but are not
        selected again.  The selection is incremental: the monolithic backend
        skips the decided prefix of the order (:class:`FrontierCursor`), the
        sharded backend additionally recomputes only components touched since
        the last call (:class:`ShardedFrontier`).
        """
        if self._executor is not None:
            # The workers recompute their dirty components concurrently and
            # already know every labeled/published change (events were routed
            # to them as they happened).
            return self._executor.frontier()
        if self._vectorized is not None:
            return self._vectorized.frontier(self.labeled, self.published)
        if self.backend == "sharded":
            if self._sharded_frontier is None:
                # Safe to build late: a fresh ShardedFrontier starts with
                # every component dirty, so it reads the current labeled/
                # published state in full on its first selection.
                self._sharded_frontier = ShardedFrontier(self.pairs)
            return self._sharded_frontier.frontier(self.labeled, self.published)
        if self._frontier_cursor is None:
            self._frontier_cursor = FrontierCursor(self.pairs)
        return self._frontier_cursor.frontier(self.labeled, self.published)

    def _mark_frontier_dirty(self, pair: Pair) -> None:
        """A pair's labeled/published status changed — invalidate its
        component's cached frontier (sharded/vectorized backends only; a
        no-op until the sharded frontier machinery exists, which starts
        all-dirty anyway)."""
        if self._sharded_frontier is not None:
            self._sharded_frontier.mark_dirty(pair)
        if self._vectorized is not None:
            self._vectorized.mark_frontier_dirty(pair)

    def publish(self, batch: Iterable[Pair], *, withhold: bool = True) -> None:
        """Mark ``batch`` as handed to the crowd.

        Args:
            batch: pairs being published.
            withhold: remove the pairs from the deduction sweep too (they are
                on the platform and will be answered regardless).  Pass False
                for pairs merely *buffered* toward a full HIT — those can
                still be rescued by deduction before they reach the platform.
        """
        batch = list(batch)  # tolerate single-pass iterables
        for pair in batch:
            self.published.add(pair)
            self._mark_frontier_dirty(pair)
        if self._vectorized is not None:
            self._vectorized.note_published(batch)
        if self._executor is not None:
            # One routed message covers both the publish and the optional
            # withhold on the owning workers.
            self._executor.publish(batch, withhold=withhold)
            if withhold:
                self._withheld.update(batch)
            return
        if withhold:
            self.withhold(batch)

    def withhold(self, batch: Iterable[Pair]) -> None:
        """Take ``batch`` out of the deduction sweep (now on the platform)."""
        batch = list(batch)
        for pair in batch:
            self._withheld.add(pair)
            if self._index is not None:
                self._index.remove(pair)
        if self._vectorized is not None:
            self._vectorized.note_withheld(batch)
        if self._executor is not None:
            self._executor.withhold(batch)

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def record_deduced(self, pair: Pair, label: Label, round_index: int) -> None:
        """Record a label obtained for free via transitive relations."""
        self.labeled[pair] = label
        self.result.record(pair, label, Provenance.DEDUCED, round_index)
        self.published.discard(pair)
        if self._vectorized is not None:
            self._vectorized.note_labeled(pair, label)
        self._mark_frontier_dirty(pair)
        if self._index is not None:
            self._index.remove(pair)
        if self._executor is not None and not self._applying_executor_sweep:
            # A deduction decided in this process (visit-time path): the
            # owning worker must learn it too.  Sweep-resolved deductions
            # skip this — the worker recorded them before replying.
            self._executor.record_deduced(pair, label)

    def record_answer(self, pair: Pair, label: Label, round_index: int) -> bool:
        """Record a crowd answer and fold it into the deduction graph.

        The answer always becomes the pair's final label; under FIRST_WINS a
        contradictory edge is dropped from the graph (and False returned) but
        the label still stands — crowd answers win for published pairs.

        Returns:
            True if the edge was applied, False if it was rejected as a
            conflict under the FIRST_WINS policy.

        Raises:
            InconsistentLabelError: under STRICT, when the answer contradicts
                what the graph already implies.
        """
        self.published.discard(pair)
        self._withheld.discard(pair)
        self.labeled[pair] = label
        if self._vectorized is not None:
            self._vectorized.note_labeled(pair, label)
        self._mark_frontier_dirty(pair)
        applied = self.graph.add(pair, label)
        self.result.record(pair, label, Provenance.CROWDSOURCED, round_index)
        if self._index is not None:
            self._index.remove(pair)
            self._index.note_objects_seen(pair.left, pair.right)
        return applied

    def record_answers(
        self,
        answers: Iterable[Tuple[Pair, Label]],
        round_index: int,
    ) -> List[Tuple[Pair, Label]]:
        """Record a contiguous run of crowd answers, then sweep once.

        Semantically identical to calling :meth:`record_answer` per answer
        followed by one :meth:`sweep` — that is exactly what it does — but
        it is the intended entry point for batched completions: the
        per-answer work is O(α) on every backend, and the single trailing
        sweep re-checks each component dirtied by the run *once*, instead
        of once per answer.  On the vectorized backend that re-check is one
        bulk array pass per dirty component (see
        :meth:`~repro.engine.vectorized.VectorizedEngineCore.sweep`).

        Returns:
            the deductions the run implied, as :meth:`sweep`.
        """
        for pair, label in answers:
            self.record_answer(pair, label, round_index)
        return self.sweep(round_index)

    def sweep(self, round_index: int) -> List[Tuple[Pair, Label]]:
        """Resolve every pending pair the answers so far imply.

        With the index this is incremental: only pairs whose endpoint
        clusters changed since the last sweep are re-checked.  Without it,
        the full pending list is rescanned (the pre-refactor behaviour, kept
        for cross-validation).  Withheld pairs are never resolved — they are
        on the platform and will be crowd-answered.

        Returns:
            (pair, deduced label) per newly resolved pair, in order position.
        """
        if self._executor is not None:
            resolved = self._executor.sweep()
            self._applying_executor_sweep = True
            try:
                for pair, label in resolved:
                    self.record_deduced(pair, label, round_index)
            finally:
                self._applying_executor_sweep = False
            return resolved
        if self._vectorized is not None:
            # One bulk pass per component dirtied since the last sweep;
            # record_deduced folds each resolution into the result and the
            # core's label state (note_labeled).
            resolved = self._vectorized.sweep()
            for pair, label in resolved:
                self.record_deduced(pair, label, round_index)
            return resolved
        if self._index is not None:
            resolved = sorted(
                self._index.sweep(), key=lambda entry: self._position[entry[0]]
            )
        else:
            resolved = []
            still: List[Pair] = []
            for pair in self._unlabeled:
                if pair in self.labeled:
                    continue
                if pair in self._withheld:
                    still.append(pair)
                    continue
                deduced = self.graph.deduce(pair)
                if deduced is not None:
                    resolved.append((pair, deduced))
                else:
                    still.append(pair)
            self._unlabeled = still
        for pair, label in resolved:
            self.record_deduced(pair, label, round_index)
        return resolved
