"""The async-first crowd runtime: one event loop for every labeler.

Historically the discrete-event simulator was the primary abstraction —
each labeling loop *stepped* it and the idea of "a crowd answer arrived"
was buried inside four different while-loops.  This module inverts that:
:class:`CrowdRuntime` drives a :class:`~repro.engine.engine.LabelingEngine`
from an asyncio loop over the :class:`~repro.crowd.clients.PlatformClient`
seam, and the simulator is just one client among several
(:class:`~repro.crowd.clients.SimulatedPlatformClient`,
:class:`~repro.crowd.clients.PollingPlatformClient`,
:class:`~repro.crowd.clients.CallbackPlatformClient`).

The runtime owns everything a live campaign needs that a simulator got for
free:

* in-flight HIT bookkeeping and *out-of-order* completion application
  through the engine's ``record_answer``/``sweep`` seam (both the
  monolithic and the sharded backend — the runtime never looks inside);
* re-issue of expired HITs (unanswered pairs go back out as fresh HITs);
* budget (:class:`~repro.crowd.budget.BudgetPolicy`) and latency
  (:class:`~repro.crowd.latency.TimeoutPolicy`) limits enforced at
  submission time as *runtime policies*, not simulator features.

Dispatch semantics are a :class:`RuntimeMode`: the paper's sequential and
round-based labelers, the HIT-granularity campaign modes (instant decision
or re-publish-on-drain), the publish-everything baseline, and the serial
HIT replay.  The synchronous strategies (`SequentialDispatch`,
`RoundParallelDispatch`) and the campaign runners in
:mod:`repro.crowd.campaign` are thin facades that run this runtime over
the simulated client to completion — there is exactly one code path for
applying crowd answers.  :class:`AsyncDispatch` exposes the same semantics
as an awaitable strategy for callers that already live in an event loop.
"""

from __future__ import annotations

import asyncio
import enum
from array import array
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from ..core.cluster_graph import ConflictPolicy
from ..core.oracle import LabelOracle
from ..core.pairs import CandidatePair, Label, Pair
from ..core.result import LabelingResult
from ..crowd.budget import BudgetPolicy
from ..crowd.clients import (
    HITExpiry,
    PlatformClient,
    SimulatedPlatformClient,
)
from ..crowd.hit import HIT, n_hits_needed
from ..crowd.latency import TimeoutPolicy
from ..crowd.platform import HITCompletion
from ..crowd.review import ReviewDecision, ReviewPolicy
from .engine import (
    DEFAULT_SHARD_THRESHOLD,
    LabelingEngine,
    _pack_ints,
    _unpack_ints,
)
from .hit_adapter import HITDispatchAdapter
from .parallel import DEFAULT_PARALLEL_THRESHOLD

#: Sentinel distinguishing "argument not given" from an explicit ``None``
#: (with a spec, an explicit ``None`` *overrides* the spec's policy).
_UNSET = object()

#: Labeling orders the runtime knows how to drive: ``"static"`` walks the
#: order/frontier as given (the paper's behaviour), ``"expected-value"``
#: re-picks the next question adaptively by expected transitive deductions
#: (SEQUENTIAL mode only — there is exactly one question in flight to pick).
ORDERINGS = ("static", "expected-value")

#: Aggregations whose winning side holds less than this share of the vote
#: weight are counted as low-margin in the report (matches the default
#: :class:`~repro.crowd.review.EscalateOnLowConfidence` threshold).
LOW_CONFIDENCE = 0.75


def _pack_hit_batches(hit_batches, position) -> dict:
    """Encode the HIT publication history as flat+sizes packed columns."""
    flat, sizes = array("i"), array("i")
    for batch in hit_batches:
        sizes.append(len(batch))
        for pair in batch:
            flat.append(position[pair])
    return {"flat": _pack_ints(flat), "sizes": _pack_ints(sizes)}


class RuntimeMode(enum.Enum):
    """When the runtime publishes which pairs (the dispatch semantics).

    SEQUENTIAL:  one pair in flight at a time, deduction at visit time —
                 the paper's Section 3.2 labeler.
    ROUNDS:      the full must-crowdsource frontier per round; the next
                 round is decided only once every answer of the current
                 one has arrived (Section 5.1, Algorithms 2-3).
    HIT_INSTANT: HIT granularity with instant decision — re-select after
                 every completion, buffering toward full HITs
                 (Section 6.4, Parallel(ID)).
    HIT_ROUNDS:  HIT granularity, re-selecting only when the platform
                 drains (round-based Parallel).
    FLOOD:       publish every pair up front, no deduction — the
                 non-transitive baseline.
    SERIAL:      publish pre-batched HITs strictly one at a time (Table 1's
                 Non-Parallel opponent); requires ``preplanned``.
    """

    SEQUENTIAL = "sequential"
    ROUNDS = "rounds"
    HIT_INSTANT = "instant"
    HIT_ROUNDS = "hit-rounds"
    FLOOD = "flood"
    SERIAL = "serial"


@dataclass
class RuntimeReport:
    """Everything the runtime observed that the engine result does not hold.

    Attributes:
        publish_events: (client time, HITs published) per submission burst.
        hit_batches: pair composition of every published HIT, in
            publication order (re-issues included).
        conflicts: pairs whose crowd answer contradicted the deduction
            graph (possible only with noisy answers under FIRST_WINS).
        completion_hours: client time when the last *needed* label became
            known.
        n_completions: HIT completions applied.
        n_expired_hits: expiry events received.
        n_reissued_hits: fresh HITs published to replace expired ones.
        assignments_committed: assignments submitted (the budget metric).
        n_assignments_approved: assignments approved by the review policy.
        n_assignments_rejected: assignments rejected by the review policy.
        n_tie_broken: pairs whose aggregation was decided by the tie-break
            fallback, not a worker consensus (a coin flip wearing a label).
        n_low_margin: non-tied aggregations whose winning share fell below
            :data:`LOW_CONFIDENCE`.
        n_escalations: aggregated labels the review policy refused and the
            runtime re-issued for fresh assignments instead of applying.
        vote_margins: last observed vote margin per pair (winning weight
            minus losing weight), for completions carrying vote summaries.
        leftovers: completions that arrived after the campaign was already
            decided (outstanding work settled by ``drain``); still shown
            to the review policy — the work was done and must be paid.
    """

    publish_events: List[Tuple[float, int]] = field(default_factory=list)
    hit_batches: List[List[Pair]] = field(default_factory=list)
    conflicts: List[Pair] = field(default_factory=list)
    completion_hours: float = 0.0
    n_completions: int = 0
    n_expired_hits: int = 0
    n_reissued_hits: int = 0
    assignments_committed: int = 0
    n_assignments_approved: int = 0
    n_assignments_rejected: int = 0
    n_tie_broken: int = 0
    n_low_margin: int = 0
    n_escalations: int = 0
    vote_margins: Dict[Pair, float] = field(default_factory=dict)
    leftovers: List[HITCompletion] = field(default_factory=list)

    def defer_restore(self, thunk) -> None:
        """Register ``thunk(self)`` to rebuild the per-HIT history lazily.

        Runs at most once, on the first read of ``publish_events`` or
        ``hit_batches`` (both rebuilt together); set by
        :meth:`CrowdRuntime.restore_state` so snapshot recovery skips
        materialising one list entry per historical HIT.
        """
        self.__dict__["_restore_thunk"] = thunk


def _lazy_report_field(name: str) -> property:
    """Instance storage under ``name`` that first materialises a pending
    :meth:`RuntimeReport.defer_restore` thunk on read (cf. the identical
    mechanism on :class:`~repro.core.result.LabelingResult`)."""

    def fget(self):
        d = self.__dict__
        thunk = d.get("_restore_thunk")
        if thunk is not None:
            d["_restore_thunk"] = None
            thunk(self)
        return d[name]

    def fset(self, value) -> None:
        self.__dict__[name] = value

    return property(fget, fset)


RuntimeReport.publish_events = _lazy_report_field("publish_events")
RuntimeReport.hit_batches = _lazy_report_field("hit_batches")


class PauseGate:
    """A pause/resume switch shared between a runtime and its operator.

    The campaign service hands one gate to each hosted
    :class:`CrowdRuntime`.  While paused, the runtime issues **no new
    HITs** — completion-triggered publishes are deferred, and the
    idle-republish path is skipped — but it keeps consuming events, so
    in-flight completions are still applied, reviewed, and journaled.
    Deferred publishes fire on :meth:`resume`.

    The gate is asyncio-native (no locks: all transitions happen on the
    loop thread) and reusable across pause/resume cycles.
    """

    def __init__(self) -> None:
        self._resumed = asyncio.Event()
        self._resumed.set()

    @property
    def paused(self) -> bool:
        return not self._resumed.is_set()

    def pause(self) -> None:
        self._resumed.clear()

    def resume(self) -> None:
        self._resumed.set()

    def poke(self) -> None:
        """Wake a parked waiter for one pass without resuming.

        The campaign service uses this to route a paused-but-idle runtime
        through one safe-point check (e.g. an on-demand journal
        compaction); the gate stays paused, so the pass issues nothing.
        """
        if self.paused:
            self._resumed.set()
            self._resumed.clear()

    async def wait_resumed(self) -> None:
        """Block until :meth:`resume` (returns immediately when running)."""
        await self._resumed.wait()


class CrowdRuntime:
    """Asyncio event loop driving a :class:`LabelingEngine` over a client.

    Args:
        engine: the labeling engine (any backend; the runtime only uses
            the ``frontier``/``publish``/``record_answer``/``sweep`` seam).
        client: the platform client to submit to and await events from.
        spec: optional :class:`~repro.spec.CampaignSpec` supplying the
            dispatch mode and runtime policies in one object; any of the
            explicit keyword arguments below overrides the spec's value
            (an explicit ``None`` clears a spec-carried policy).
        mode: dispatch semantics (:class:`RuntimeMode` or its value).
        budget: optional spending cap checked before every submission.
        timeout: optional per-HIT expiry deadline + re-issue cap; without
            it the runtime requests no deadline and re-issues expired HITs
            without limit (clients that inject expiry cap themselves).
        review: optional :class:`~repro.crowd.review.ReviewPolicy` —
            every applied completion's verdicts are forwarded to the
            client's ``review_hit`` (live backends approve/reject the
            underlying assignments; clients without a review surface skip
            it silently).  Live campaigns should always set one: unreviewed
            work leaves workers waiting on the platform's auto-approval.
            A policy may also *escalate* pairs (see
            :class:`~repro.crowd.review.EscalateOnLowConfidence`): their
            aggregated labels are withheld and the pairs re-issued for
            fresh assignments, at most ``max_escalations`` times per pair.
        max_rounds: ROUNDS-mode safety cap (the algorithm provably
            terminates; the cap exists to fail fast on bugs).
        ordering: labeling-order strategy, one of :data:`ORDERINGS`.
            ``"expected-value"`` (SEQUENTIAL mode only) picks each next
            question adaptively by expected transitive deductions via
            :class:`~repro.engine.expected.ExpectedDeductionScorer`
            instead of walking the static order.
        aggregation: optional
            :class:`~repro.crowd.aggregation.WeightedAggregation` — when
            set, completions carrying raw assignments are re-aggregated
            with quality-aware weighted majority before their labels are
            applied (completions without assignments pass through).
        max_escalations: per-pair bound on review-policy escalations; once
            exhausted the dubious label is accepted rather than re-asked.
        preplanned: SERIAL-mode HIT contents, one inner sequence per HIT.
        gate: optional :class:`PauseGate` for operator pause/resume; while
            paused the runtime defers all new HIT issuance but still
            applies in-flight completions.

    The runtime is single-shot: build, ``await run()`` (or ``run_sync()``
    from synchronous code), read the report.
    """

    def __init__(
        self,
        engine: LabelingEngine,
        client: PlatformClient,
        *,
        spec=None,
        mode: Union[RuntimeMode, str, None] = None,
        budget=_UNSET,
        timeout=_UNSET,
        review=_UNSET,
        max_rounds=_UNSET,
        ordering: Optional[str] = None,
        aggregation=_UNSET,
        max_escalations: int = 1,
        preplanned: Optional[Sequence[Sequence[Pair]]] = None,
        gate: Optional[PauseGate] = None,
    ) -> None:
        if mode is None:
            mode = spec.mode if spec is not None else RuntimeMode.HIT_INSTANT
        if budget is _UNSET:
            budget = spec.budget if spec is not None else None
        if timeout is _UNSET:
            timeout = spec.timeout if spec is not None else None
        if review is _UNSET:
            review = spec.review if spec is not None else None
        if max_rounds is _UNSET:
            max_rounds = spec.max_rounds if spec is not None else None
        if ordering is None:
            ordering = spec.ordering if spec is not None else "static"
        if aggregation is _UNSET:
            aggregation = spec.make_aggregation() if spec is not None else None
        self._engine = engine
        self._client = client
        self._mode = RuntimeMode(mode)
        if ordering not in ORDERINGS:
            raise ValueError(
                f"unknown ordering {ordering!r}; expected one of {ORDERINGS}"
            )
        if ordering == "expected-value" and self._mode is not RuntimeMode.SEQUENTIAL:
            raise ValueError(
                "expected-value ordering requires SEQUENTIAL mode (it picks "
                "one next question at a time), got mode "
                f"{self._mode.value!r}"
            )
        if max_escalations < 0:
            raise ValueError(
                f"max_escalations must be non-negative, got {max_escalations}"
            )
        self._budget = budget
        self._timeout = timeout
        self._review = review
        self._max_rounds = max_rounds
        self._ordering = ordering
        self._aggregation = aggregation
        self._max_escalations = max_escalations
        self._gate = gate
        self._kick_pending = False
        if (preplanned is not None) != (self._mode is RuntimeMode.SERIAL):
            raise ValueError("preplanned batches are for SERIAL mode exactly")
        self._preplanned = [list(chunk) for chunk in preplanned or ()]
        self.report = RuntimeReport()
        self._ran = False
        # How many times each in-flight HIT's lineage has been re-issued
        # (for TimeoutPolicy.max_reissues); entries are dropped when the
        # HIT settles, whichever way.
        self._reissue_counts: Dict[int, int] = {}
        # Mode state.
        self._round_index = 0
        self._cursor = 0  # SEQUENTIAL: next unvisited order position
        self._round_batch: List[Pair] = []
        self._round_outstanding: Set[Pair] = set()
        # Expected-value ordering: an ExpectedDeductionScorer built lazily
        # on the first advance (its evidence state is a pure function of
        # engine.labeled, so restores need no extra payload — sync()
        # rebuilds it).  Imported late: repro.engine.expected reaches
        # repro.core.expected_cost, which imports this module's package.
        self._scorer = None
        # Escalation state: times each pair's label was refused so far, and
        # the refused pairs awaiting re-issue.
        self._escalation_counts: Dict[Pair, int] = {}
        self._pending_escalations: List[Pair] = []
        self._adapter: Optional[HITDispatchAdapter] = None
        if self._mode in (RuntimeMode.HIT_INSTANT, RuntimeMode.HIT_ROUNDS):
            self._adapter = HITDispatchAdapter(
                engine, self._buffer_chunk, client.batch_size
            )
        self._pending_chunks: List[List[Pair]] = []
        # Snapshot/restore seam (journal compaction): set by restore_state
        # so run() enters the event loop mid-campaign instead of _start().
        self._restored = False
        #: Invoked at the top of every event-loop iteration — the one point
        #: where engine + mode state exactly reflect the records journaled
        #: so far (no chunk is half-flushed, no completion half-applied).
        #: The campaign service hooks its compaction policy here.
        self.on_safe_point: Optional[Callable[[], None]] = None

    @property
    def engine(self) -> LabelingEngine:
        return self._engine

    @property
    def client(self) -> PlatformClient:
        return self._client

    # ------------------------------------------------------------------
    # snapshot / restore (journal compaction)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """JSON-serializable dispatch state, captured at a safe point.

        Everything mode-dependent the event loop would otherwise rebuild
        by replaying the journal: the sequential cursor, the open round,
        the HIT adapter's partial buffer, re-issue chains, the deferred-
        kick flag, and the full report.  Pairs are encoded as order
        positions (the engine snapshot binds the order).

        Only meaningful at a safe point (see :attr:`on_safe_point`);
        SERIAL mode is not snapshottable (its preplanned batches are not
        spec-expressible, so the service never hosts it).
        """
        if self._mode is RuntimeMode.SERIAL:
            raise ValueError("SERIAL-mode runtimes cannot be snapshotted")
        if self._pending_chunks:
            raise ValueError("cannot snapshot with unflushed publish chunks")
        position = self._engine._position
        report = self.report
        return {
            "version": 2,
            "mode": self._mode.value,
            "ordering": self._ordering,
            "round_index": self._round_index,
            "cursor": self._cursor,
            "round_batch": [position[p] for p in self._round_batch],
            "round_outstanding": sorted(
                position[p] for p in self._round_outstanding
            ),
            "adapter_buffer": (
                [position[p] for p in self._adapter.buffered]
                if self._adapter is not None
                else []
            ),
            "kick_pending": self._kick_pending,
            "reissue_counts": sorted(self._reissue_counts.items()),
            "escalation_counts": sorted(
                [position[p], count]
                for p, count in self._escalation_counts.items()
            ),
            "pending_escalations": [
                position[p] for p in self._pending_escalations
            ],
            "aggregation": (
                self._aggregation.snapshot_state()
                if self._aggregation is not None
                else None
            ),
            "report": {
                # The burst/batch histories grow with the record count
                # (one HIT per batch_size pairs): packed columns keep the
                # snapshot line's json.loads cost flat — see _pack_ints.
                "publish_events": {
                    "t": _pack_ints(
                        array("d", (t for t, _ in report.publish_events))
                    ),
                    "n": _pack_ints(
                        array("i", (n for _, n in report.publish_events))
                    ),
                },
                "hit_batches": _pack_hit_batches(report.hit_batches, position),
                "conflicts": [position[p] for p in report.conflicts],
                "completion_hours": report.completion_hours,
                "n_completions": report.n_completions,
                "n_expired_hits": report.n_expired_hits,
                "n_reissued_hits": report.n_reissued_hits,
                "assignments_committed": report.assignments_committed,
                "n_assignments_approved": report.n_assignments_approved,
                "n_assignments_rejected": report.n_assignments_rejected,
                "n_tie_broken": report.n_tie_broken,
                "n_low_margin": report.n_low_margin,
                "n_escalations": report.n_escalations,
                "vote_margins": sorted(
                    [position[p], margin]
                    for p, margin in report.vote_margins.items()
                ),
            },
        }

    def restore_state(self, snapshot: dict) -> None:
        """Load a :meth:`snapshot_state` payload; ``run()`` then enters the
        event loop directly, mid-campaign, instead of publishing a fresh
        start.  The engine must already be restored to the matching state.
        """
        if self._ran:
            raise ValueError("cannot restore into a runtime that already ran")
        if snapshot.get("version") not in (1, 2):
            raise ValueError(
                f"unsupported runtime snapshot version {snapshot.get('version')!r}"
            )
        if RuntimeMode(snapshot["mode"]) is not self._mode:
            raise ValueError(
                f"snapshot mode {snapshot['mode']!r} does not match runtime "
                f"mode {self._mode.value!r}"
            )
        snap_ordering = snapshot.get("ordering")
        if snap_ordering is not None and snap_ordering != self._ordering:
            raise ValueError(
                f"snapshot ordering {snap_ordering!r} does not match runtime "
                f"ordering {self._ordering!r}"
            )
        pairs = self._engine.pairs
        self._round_index = int(snapshot["round_index"])
        self._cursor = int(snapshot["cursor"])
        self._round_batch = [pairs[i] for i in snapshot["round_batch"]]
        self._round_outstanding = {
            pairs[i] for i in snapshot["round_outstanding"]
        }
        if self._adapter is not None:
            self._adapter.restore_buffer(
                pairs[i] for i in snapshot["adapter_buffer"]
            )
        self._kick_pending = bool(snapshot["kick_pending"])
        self._reissue_counts = {
            int(hit_id): int(count)
            for hit_id, count in snapshot["reissue_counts"]
        }
        self._escalation_counts = {
            pairs[int(i)]: int(count)
            for i, count in snapshot.get("escalation_counts", [])
        }
        self._pending_escalations = [
            pairs[int(i)] for i in snapshot.get("pending_escalations", [])
        ]
        agg_state = snapshot.get("aggregation")
        if agg_state is not None and self._aggregation is not None:
            self._aggregation.restore_state(agg_state)
        report = self.report
        payload = snapshot["report"]
        bursts = payload["publish_events"]
        batches = payload["hit_batches"]

        def rebuild(rep: RuntimeReport) -> None:
            rep.__dict__["publish_events"] = list(
                zip(
                    _unpack_ints(bursts["t"], "d"),
                    _unpack_ints(bursts["n"], "i"),
                )
            )
            # Decode once into a flat pair list, then slice per batch: the
            # history holds one entry per HIT, so per-element iteration
            # here would dominate a restore with small batch sizes.
            flat_pairs = [pairs[i] for i in _unpack_ints(batches["flat"], "i")]
            hit_batches = []
            start = 0
            for size in _unpack_ints(batches["sizes"], "i"):
                stop = start + size
                hit_batches.append(flat_pairs[start:stop])
                start = stop
            rep.__dict__["hit_batches"] = hit_batches

        # The publish/HIT history is one entry per burst/HIT — rebuilding
        # it eagerly would rival everything else a snapshot restore does,
        # and live continuation only appends to it.  Deferred like the
        # engine result's outcome records.
        report.defer_restore(rebuild)
        report.conflicts = [pairs[i] for i in payload["conflicts"]]
        report.completion_hours = float(payload["completion_hours"])
        report.n_completions = int(payload["n_completions"])
        report.n_expired_hits = int(payload["n_expired_hits"])
        report.n_reissued_hits = int(payload["n_reissued_hits"])
        report.assignments_committed = int(payload["assignments_committed"])
        report.n_assignments_approved = int(payload["n_assignments_approved"])
        report.n_assignments_rejected = int(payload["n_assignments_rejected"])
        report.n_tie_broken = int(payload.get("n_tie_broken", 0))
        report.n_low_margin = int(payload.get("n_low_margin", 0))
        report.n_escalations = int(payload.get("n_escalations", 0))
        report.vote_margins = {
            pairs[int(i)]: float(margin)
            for i, margin in payload.get("vote_margins", [])
        }
        self._restored = True

    # ------------------------------------------------------------------
    # submission plumbing
    # ------------------------------------------------------------------
    def _buffer_chunk(self, chunk: List[Pair]) -> None:
        """Synchronous landing spot for the HIT adapter's publish calls;
        the async loop flushes these to the client right after."""
        self._pending_chunks.append(chunk)

    async def _flush_chunks(self) -> None:
        while self._pending_chunks:
            await self._submit(self._pending_chunks.pop(0))

    async def _submit(self, pairs: Sequence[Pair]) -> List[HIT]:
        """Publish ``pairs``; enforce the budget; record the burst."""
        pairs = list(pairs)
        new_assignments = 0
        if pairs:
            new_assignments = (
                n_hits_needed(len(pairs), self._client.batch_size)
                * self._client.n_assignments
            )
        if self._budget is not None:
            self.report.assignments_committed = self._budget.authorize(
                self.report.assignments_committed, new_assignments
            )
        else:
            self.report.assignments_committed += new_assignments
        hit_timeout = self._timeout.hit_timeout if self._timeout else None
        hits = await self._client.submit_pairs(pairs, timeout=hit_timeout)
        self.report.hit_batches.extend(list(hit.pairs) for hit in hits)
        self.report.publish_events.append((self._client.now, len(hits)))
        return hits

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------
    def run_sync(self) -> RuntimeReport:
        """Drive the loop to completion from synchronous code."""
        return asyncio.run(self.run())

    async def run(self) -> RuntimeReport:
        """Publish, await events, apply answers; returns the report.

        Raises:
            BudgetExceededError: a submission would overrun the budget.
            RuntimeError: the platform drained with pairs unlabeled, a HIT
                lineage exceeded ``max_reissues``, or ROUNDS mode exceeded
                ``max_rounds``.
        """
        if self._ran:
            raise RuntimeError("CrowdRuntime is single-shot; build a new one")
        self._ran = True
        try:
            if self._mode is RuntimeMode.SERIAL:
                await self._run_serial()
            else:
                if not self._restored:
                    await self._start()
                await self._event_loop()
            self.report.leftovers = await self._client.drain()
            # Leftover completions arrived after the campaign was decided,
            # but their workers still did the work: the review policy must
            # see them too, or they'd wait on platform auto-approval.
            for leftover in self.report.leftovers:
                self._review_completion(leftover)
        finally:
            await self._client.close()
            # The runtime owns the campaign lifecycle: release the engine's
            # parallel-backend worker processes (no-op on in-process
            # backends).  Result state lives in this process and stays
            # readable after close.
            self._engine.close()
        return self.report

    def _paused(self) -> bool:
        return self._gate is not None and self._gate.paused

    async def _kick(self) -> None:
        """Fire the publish that a pause deferred (mode-appropriate)."""
        self._kick_pending = False
        if self._pending_escalations:
            await self._flush_escalations()
        if self._engine.is_done:
            return
        if self._mode is RuntimeMode.SEQUENTIAL:
            # Only advance with the platform quiet: a flushed escalation is
            # the one in-flight question sequential mode allows.
            if self._client.n_outstanding_hits == 0:
                await self._advance_sequential()
        elif self._mode is RuntimeMode.ROUNDS:
            # An escalation keeps its round open (the pair is still in
            # _round_outstanding); start a fresh round only between rounds.
            if not self._round_outstanding:
                await self._start_round()
        elif self._adapter is not None:
            self._adapter.select_new()
            await self._flush_chunks()

    async def _event_loop(self) -> None:
        engine = self._engine
        while not engine.is_done:
            if self.on_safe_point is not None:
                # Engine + mode state now reflect exactly the journaled
                # records: the one consistent place to snapshot/compact.
                self.on_safe_point()
            if self._paused():
                # Paused: issue nothing new.  With work still in flight,
                # keep consuming events (completions must not be dropped);
                # once the platform is quiet, sleep until resumed.
                if self._client.n_outstanding_hits == 0:
                    await self._gate.wait_resumed()
                    continue
            else:
                if self._kick_pending:
                    await self._kick()
                    continue
                if self._client.n_outstanding_hits == 0:
                    if self._adapter is not None:
                        # The platform would otherwise sit idle: re-select
                        # and force out even a partial HIT (paper §6.4).
                        self._adapter.select_new()
                        self._adapter.flush(force=True)
                        await self._flush_chunks()
                    elif not self._round_outstanding and not self.report.publish_events:
                        # Restored from a snapshot taken while paused
                        # before the mode's first publish: fire it.  The
                        # publish-history gate matters — a live run can
                        # also reach zero outstanding HITs with events
                        # still buffered in the client (a poll fetched
                        # every completion at once), and must fall through
                        # to next_event() instead of re-publishing.
                        if self._mode is RuntimeMode.FLOOD:
                            await self._submit(engine.pairs)
                        else:
                            await self._kick()
                        continue
            event = await self._client.next_event()
            if event is None:
                raise RuntimeError(
                    "crowd runtime stalled: platform drained with "
                    f"{len(engine.pairs) - engine.n_labeled} pairs unlabeled"
                )
            if isinstance(event, HITExpiry):
                await self._on_expiry(event)
                continue
            self._reissue_counts.pop(event.hit.hit_id, None)
            await self._on_completion(event)

    async def _start(self) -> None:
        # Loop, not a single wait: PauseGate.poke() wakes waiters without
        # resuming, and a still-paused campaign must not publish.
        while self._gate is not None and self._gate.paused:
            await self._gate.wait_resumed()
        if self._mode is RuntimeMode.FLOOD:
            # The baseline publishes unconditionally (even an empty order
            # records its single publish burst, as the old runner did).
            await self._submit(self._engine.pairs)
        elif self._engine.is_done:
            return
        elif self._mode is RuntimeMode.SEQUENTIAL:
            await self._advance_sequential()
        elif self._mode is RuntimeMode.ROUNDS:
            await self._start_round()
        else:  # HIT_INSTANT / HIT_ROUNDS
            self._adapter.select_new()
            self._adapter.flush(force=True)
            await self._flush_chunks()

    # ------------------------------------------------------------------
    # expiry / re-issue
    # ------------------------------------------------------------------
    async def _on_expiry(self, event: HITExpiry) -> List[HIT]:
        """Re-issue the expired HIT's still-unanswered pairs."""
        hit = event.hit
        self.report.n_expired_hits += 1
        chain = self._reissue_counts.pop(hit.hit_id, 0) + 1
        if self._timeout is not None and chain > self._timeout.max_reissues:
            raise RuntimeError(
                f"HIT {hit.hit_id} expired after {chain - 1} re-issues, "
                f"exceeding TimeoutPolicy.max_reissues={self._timeout.max_reissues}"
            )
        unanswered = [p for p in hit.pairs if p not in self._engine.labeled]
        if not unanswered:
            return []
        reissued = await self._submit(unanswered)
        for new_hit in reissued:
            self._reissue_counts[new_hit.hit_id] = chain
        self.report.n_reissued_hits += len(reissued)
        return reissued

    # ------------------------------------------------------------------
    # completion application (the one code path)
    # ------------------------------------------------------------------
    def _apply_labels(
        self, event: HITCompletion, round_index: int, track_conflicts: bool = False
    ) -> List[Pair]:
        """Fold a completion's answers into the engine, skipping pairs a
        re-issue race already answered.  Returns the pairs applied.

        This is the one quality gate on the answer path: completions
        carrying raw assignments are re-aggregated first (quality-aware
        weighted majority when configured), vote diagnostics are folded
        into the report, and the review policy sees the completion *before*
        its labels land — pairs it escalates are withheld and queued for
        re-issue instead of applied.
        """
        engine = self._engine
        event = self._reaggregate(event)
        self._record_vote_quality(event)
        decisions: Sequence[ReviewDecision] = (
            self._review.review(event) if self._review is not None else ()
        )
        held = self._escalations(decisions)
        applied: List[Pair] = []
        for pair, label in event.labels.items():
            if pair in engine.labeled:
                continue  # duplicate delivery (expired HIT completed late)
            if pair in held:
                continue  # escalated: re-issued instead of applied
            ok = engine.record_answer(pair, label, round_index)
            if track_conflicts and not ok:
                self.report.conflicts.append(pair)
            applied.append(pair)
        self.report.completion_hours = event.completed_at
        self._forward_review(event.hit.hit_id, decisions)
        return applied

    def _reaggregate(self, event: HITCompletion) -> HITCompletion:
        """Re-derive a completion's labels from its raw assignments with
        the configured quality-aware aggregation.

        Completions without assignment payloads (the journaled service
        path, live polling clients) pass through untouched — their labels
        were already final when journaled, so replay stays deterministic.
        Pairs every assignment abstained on (no votes at all) are queued
        for re-issue without charging the escalation bound — there is no
        label to fall back on.
        """
        if self._aggregation is None or not event.assignments:
            return event
        summaries = self._aggregation.aggregate(
            event.assignments, tie_break=Label.NON_MATCHING, strict=False
        )
        labels = {pair: summary.label for pair, summary in summaries.items()}
        for pair in event.labels:
            if pair not in summaries and pair not in self._engine.labeled:
                self._pending_escalations.append(pair)
        return replace(event, labels=labels, summaries=summaries)

    def _record_vote_quality(self, event: HITCompletion) -> None:
        """Fold a completion's vote diagnostics into the report."""
        report = self.report
        for pair, summary in event.summaries.items():
            report.vote_margins[pair] = summary.margin
            if summary.tie_broken:
                report.n_tie_broken += 1
            elif summary.confidence < LOW_CONFIDENCE:
                report.n_low_margin += 1

    def _escalations(self, decisions: Sequence[ReviewDecision]) -> Set[Pair]:
        """Collect the pairs the review decisions escalate, bounded by
        ``max_escalations`` per pair; queues them for re-issue and returns
        the set to withhold from this completion."""
        held: Set[Pair] = set()
        for decision in decisions:
            for pair in decision.escalate_pairs:
                if pair in self._engine.labeled or pair in held:
                    continue
                count = self._escalation_counts.get(pair, 0)
                if count >= self._max_escalations:
                    continue  # bound exhausted: accept the dubious label
                self._escalation_counts[pair] = count + 1
                held.add(pair)
                self._pending_escalations.append(pair)
        self.report.n_escalations += len(held)
        return held

    def _forward_review(
        self, hit_id: int, decisions: Sequence[ReviewDecision]
    ) -> None:
        """Forward review verdicts to the client (live platforms pay or
        reject the workers; clients without a review surface skip)."""
        if not decisions:
            return
        review_hit = getattr(self._client, "review_hit", None)
        if review_hit is None:
            return
        approved, rejected = review_hit(hit_id, decisions)
        self.report.n_assignments_approved += approved
        self.report.n_assignments_rejected += rejected

    def _review_completion(self, event: HITCompletion) -> None:
        """Review one completion outside the application path (leftovers:
        the campaign is decided, so escalations are moot — workers still
        must be paid)."""
        if self._review is None:
            return
        self._forward_review(event.hit.hit_id, self._review.review(event))

    async def _flush_escalations(self) -> List[HIT]:
        """Re-issue the queued escalated pairs as fresh HITs.

        The pairs were already published (their first assignments came
        back); like the expiry path this re-submits without touching the
        engine's publish bookkeeping.  The budget is charged — escalation
        buys new assignments.
        """
        pending, self._pending_escalations = self._pending_escalations, []
        batch = [p for p in pending if p not in self._engine.labeled]
        if not batch:
            return []
        return await self._submit(batch)

    async def _settle_escalations(self) -> None:
        """Flush queued escalations, or defer the flush while paused."""
        if not self._pending_escalations:
            return
        if self._paused():
            self._kick_pending = True
        else:
            await self._flush_escalations()

    async def _on_completion(self, event: HITCompletion) -> None:
        mode = self._mode
        if mode is RuntimeMode.SEQUENTIAL:
            for pair in self._apply_labels(event, self._round_index):
                self._engine.result.rounds.append([pair])
                self._round_index += 1
            self.report.n_completions += 1
            if self._paused():
                self._kick_pending = True
            else:
                await self._flush_escalations()
                # An escalated pair is the one in-flight question sequential
                # mode allows; pick the next only once the platform is quiet.
                if self._client.n_outstanding_hits == 0:
                    await self._advance_sequential()
        elif mode is RuntimeMode.ROUNDS:
            applied = self._apply_labels(event, self._round_index)
            self._round_outstanding.difference_update(applied)
            self.report.n_completions += 1
            # Escalated pairs stay in _round_outstanding, keeping the round
            # open until their fresh assignments land.
            await self._settle_escalations()
            if not self._round_outstanding:
                self._engine.result.rounds.append(self._round_batch)
                # Deduction sweep (Algorithm 2 lines 6-8): incremental —
                # only pairs whose endpoint clusters changed are re-checked.
                self._engine.sweep(self._round_index)
                self._round_index += 1
                if not self._engine.is_done:
                    if self._paused():
                        self._kick_pending = True
                    else:
                        await self._start_round()
        elif mode is RuntimeMode.FLOOD:
            self._apply_labels(event, self.report.n_completions)
            self.report.n_completions += 1
            await self._settle_escalations()
        else:  # HIT_INSTANT / HIT_ROUNDS
            self._apply_labels(
                event, self.report.n_completions, track_conflicts=True
            )
            if mode is RuntimeMode.HIT_ROUNDS:
                # Replay fast path: coalesce the journaled run of consecutive
                # completions into one batched application with a single
                # trailing sweep — ``LabelingEngine.record_answers``
                # semantics, unrolled to keep per-completion round indices
                # and conflict tracking.  Exact because this mode publishes
                # only when the platform drains (an issue record would break
                # the run), and mid-run sweeps can never touch the withheld
                # on-platform pairs later completions answer.  The client
                # hook only yields events while replaying a journal.
                take = getattr(self._client, "take_replay_completion", None)
                while take is not None and not self._engine.is_done:
                    extra = take()
                    if extra is None:
                        break
                    self._reissue_counts.pop(extra.hit.hit_id, None)
                    self.report.n_completions += 1
                    self._apply_labels(
                        extra, self.report.n_completions, track_conflicts=True
                    )
            # Rescued pairs leave the adapter's buffer; on-platform pairs
            # stay withheld from the sweep (the crowd will answer them).
            self._adapter.sweep(self.report.n_completions)
            self.report.n_completions += 1
            # Escalated pairs must go back out here in *both* HIT modes:
            # they are already published, so the adapter never re-selects
            # them, and HIT_ROUNDS would otherwise stall waiting on a drain
            # that never comes.
            await self._settle_escalations()
            if not self._engine.is_done and mode is RuntimeMode.HIT_INSTANT:
                if self._paused():
                    self._kick_pending = True
                else:
                    self._adapter.select_new()
                    await self._flush_chunks()

    # ------------------------------------------------------------------
    # mode drivers
    # ------------------------------------------------------------------
    async def _advance_sequential(self) -> None:
        """Visit the order: deduce for free, submit the next paid pair."""
        if self._ordering == "expected-value":
            await self._advance_expected()
            return
        engine = self._engine
        while self._cursor < len(engine.pairs):
            pair = engine.pairs[self._cursor]
            if pair in engine.labeled:
                self._cursor += 1
                continue
            deduced = engine.deduce(pair)
            if deduced is not None:
                engine.record_deduced(pair, deduced, self._round_index)
                self._cursor += 1
                continue
            self._cursor += 1
            engine.publish([pair])
            await self._submit([pair])
            return

    async def _advance_expected(self) -> None:
        """Expected-value ordering: pick the next question by expected
        transitive deductions, settling deducible pairs for free first.

        The scorer's evidence state is a pure function of
        ``engine.labeled`` (``sync`` is idempotent), so snapshot restores
        rebuild it here with no extra payload.
        """
        engine = self._engine
        if self._scorer is None:
            from .expected import ExpectedDeductionScorer

            self._scorer = ExpectedDeductionScorer()
        scorer = self._scorer
        scorer.sync(engine.labeled)
        while not engine.is_done:
            unresolved = [
                CandidatePair(pair, engine.likelihoods[pair])
                for pair in engine.pairs
                if pair not in engine.labeled
            ]
            chosen = scorer.choose(unresolved)
            if chosen is None:
                # Every remaining pair is deducible: sweep them for free.
                before = engine.n_labeled
                engine.sweep(self._round_index)
                scorer.sync(engine.labeled)
                if engine.n_labeled == before:
                    raise RuntimeError(
                        "expected-value ordering stalled: no pair worth "
                        "asking, none deducible"
                    )
                continue
            engine.publish([chosen.pair])
            await self._submit([chosen.pair])
            return

    async def _start_round(self) -> None:
        if self._max_rounds is not None and self._round_index >= self._max_rounds:
            raise RuntimeError(
                f"parallel labeling exceeded {self._max_rounds} rounds"
            )
        batch = self._engine.frontier()
        assert batch, "a round must always publish at least one pair"
        self._engine.publish(batch)
        self._round_batch = batch
        self._round_outstanding = set(batch)
        await self._submit(batch)

    async def _run_serial(self) -> None:
        """SERIAL mode: each preplanned HIT fully completes before the
        next is published (Table 1's Non-Parallel baseline)."""
        for chunk in self._preplanned:
            if self._gate is not None:
                await self._gate.wait_resumed()
            hits = await self._submit(chunk)
            waiting = {hit.hit_id for hit in hits}
            while waiting:
                event = await self._client.next_event()
                if event is None:
                    raise RuntimeError("published HIT never completed")
                if isinstance(event, HITExpiry):
                    waiting.discard(event.hit.hit_id)
                    waiting.update(h.hit_id for h in await self._on_expiry(event))
                    continue
                self._reissue_counts.pop(event.hit.hit_id, None)
                waiting.discard(event.hit.hit_id)
                self._apply_labels(event, self.report.n_completions)
                self._engine.result.rounds.append(list(event.hit.pairs))
                self.report.n_completions += 1
                if self._pending_escalations:
                    # Escalated pairs re-enter this chunk's wait set: serial
                    # mode publishes the next HIT only once they settle.
                    reissued = await self._flush_escalations()
                    waiting.update(h.hit_id for h in reissued)


class AsyncDispatch:
    """Awaitable dispatch strategy over any :class:`PlatformClient`.

    The async counterpart of :class:`~repro.engine.dispatch.SequentialDispatch`
    and :class:`~repro.engine.dispatch.RoundParallelDispatch`: same labeling
    semantics (property-tested identical against the frozen pre-refactor
    references), but answers are *awaited* from a platform client instead of
    pulled from a stepped simulator — out of order, with expiry and
    re-issue, against either engine backend.

    Args:
        mode: ``RuntimeMode.SEQUENTIAL`` or ``RuntimeMode.ROUNDS`` (the two
            pair-granularity labelers; HIT-granularity campaigns live in
            :mod:`repro.crowd.campaign`).
        spec: optional :class:`~repro.spec.CampaignSpec` supplying the mode,
            engine configuration, and runtime policies in one object; the
            explicit keyword arguments below override the spec's values.
            (The spec's ``order`` and ``platform`` are ignored here —
            ``run_async`` takes the order, the client factory the platform.)
        client_factory: builds the platform client for a run, given the
            oracle; defaults to the deterministic simulated client
            (:meth:`SimulatedPlatformClient.for_oracle`).  Clients that do
            not consult the oracle (live platforms) may ignore it.
        policy: conflict policy for the engine's deduction graph.
        backend: engine backend (``"auto"``, ``"monolithic"``, ``"sharded"``,
            ``"vectorized"``, ``"parallel"``, or ``"distributed"``, as a
            string or :class:`~repro.engine.engine.EngineBackend`).
        shard_threshold: the ``auto`` backend's cut-over point.
        workers: ``"host:port"`` addresses of already-running shard worker
            hosts (``backend="distributed"`` only).
        spawn_local_workers: spawn this many local worker hosts instead of
            (or in addition to) ``workers`` (``backend="distributed"`` only).
        budget: optional runtime spending cap.
        timeout: optional per-HIT expiry deadline + re-issue cap.
        review: optional assignment review policy (see :class:`CrowdRuntime`).
        max_rounds: ROUNDS-mode safety cap.
        ordering: labeling-order strategy (``"static"`` or
            ``"expected-value"``; see :class:`CrowdRuntime`).
        aggregation: optional quality-aware
            :class:`~repro.crowd.aggregation.WeightedAggregation` applied
            to assignment-bearing completions.
        max_escalations: per-pair bound on review-policy escalations.

    After a run, :attr:`last_report` holds the runtime's
    :class:`RuntimeReport` (publish bursts, expiries, re-issues, spend).
    """

    def __init__(
        self,
        mode: Union[RuntimeMode, str, None] = None,
        *,
        spec=None,
        client_factory=None,
        policy: Optional[ConflictPolicy] = None,
        backend: Optional[str] = None,
        shard_threshold: Optional[int] = None,
        parallel_threshold: Optional[int] = None,
        n_workers: Optional[int] = None,
        workers: Optional[Sequence[str]] = None,
        spawn_local_workers: Optional[int] = None,
        budget=_UNSET,
        timeout=_UNSET,
        review=_UNSET,
        max_rounds=_UNSET,
        ordering: Optional[str] = None,
        aggregation=_UNSET,
        max_escalations: int = 1,
    ) -> None:
        if mode is None:
            mode = spec.mode if spec is not None else RuntimeMode.ROUNDS
        mode = RuntimeMode(mode)
        if mode not in (RuntimeMode.SEQUENTIAL, RuntimeMode.ROUNDS):
            raise ValueError(
                "AsyncDispatch labels at pair granularity: mode must be "
                f"SEQUENTIAL or ROUNDS, got {mode}"
            )
        if policy is None:
            policy = spec.policy if spec is not None else ConflictPolicy.STRICT
        if backend is None:
            backend = spec.backend if spec is not None else "auto"
        if shard_threshold is None:
            shard_threshold = spec.shard_threshold if spec is not None else None
            if shard_threshold is None:
                shard_threshold = DEFAULT_SHARD_THRESHOLD
        if parallel_threshold is None:
            parallel_threshold = spec.parallel_threshold if spec is not None else None
            if parallel_threshold is None:
                parallel_threshold = DEFAULT_PARALLEL_THRESHOLD
        if n_workers is None and spec is not None:
            n_workers = spec.n_workers
        if workers is None and spec is not None:
            workers = spec.workers
        if spawn_local_workers is None and spec is not None:
            spawn_local_workers = spec.spawn_local_workers
        if budget is _UNSET:
            budget = spec.budget if spec is not None else None
        if timeout is _UNSET:
            timeout = spec.timeout if spec is not None else None
        if review is _UNSET:
            review = spec.review if spec is not None else None
        if max_rounds is _UNSET:
            max_rounds = spec.max_rounds if spec is not None else None
        if ordering is None:
            ordering = spec.ordering if spec is not None else "static"
        if aggregation is _UNSET:
            aggregation = spec.make_aggregation() if spec is not None else None
        if ordering not in ORDERINGS:
            raise ValueError(
                f"unknown ordering {ordering!r}; expected one of {ORDERINGS}"
            )
        if ordering == "expected-value" and mode is not RuntimeMode.SEQUENTIAL:
            raise ValueError(
                "expected-value ordering requires SEQUENTIAL mode, got "
                f"{mode.value!r}"
            )
        self._mode = mode
        self._client_factory = client_factory
        self._policy = policy
        self._backend = backend
        self._shard_threshold = shard_threshold
        self._parallel_threshold = parallel_threshold
        self._n_workers = n_workers
        self._workers = workers
        self._spawn_local_workers = spawn_local_workers
        self._mp_start_method = spec.mp_start_method if spec is not None else None
        self._budget = budget
        self._timeout = timeout
        self._review = review
        self._max_rounds = max_rounds
        self._ordering = ordering
        self._aggregation = aggregation
        self._max_escalations = max_escalations
        self.last_report: Optional[RuntimeReport] = None

    def _make_client(self, oracle: LabelOracle) -> PlatformClient:
        if self._client_factory is not None:
            return self._client_factory(oracle)
        return SimulatedPlatformClient.for_oracle(oracle)

    async def run_async(
        self,
        order: Sequence[Union[Pair, CandidatePair]],
        oracle: LabelOracle,
    ) -> LabelingResult:
        """Label every pair in ``order`` from inside an event loop."""
        engine = LabelingEngine(
            order,
            policy=self._policy,
            # The static sequential loop deduces at visit time and never
            # sweeps, so the incremental index would be pure overhead; the
            # expected-value ordering sweeps whenever every remaining pair
            # became deducible, so it keeps the index.
            use_index=(
                self._mode is not RuntimeMode.SEQUENTIAL
                or self._ordering == "expected-value"
            ),
            backend=self._backend,
            shard_threshold=self._shard_threshold,
            parallel_threshold=self._parallel_threshold,
            n_workers=self._n_workers,
            workers=self._workers,
            spawn_local_workers=self._spawn_local_workers,
            mp_start_method=self._mp_start_method,
        )
        runtime = CrowdRuntime(
            engine,
            self._make_client(oracle),
            mode=self._mode,
            budget=self._budget,
            timeout=self._timeout,
            review=self._review,
            max_rounds=self._max_rounds,
            ordering=self._ordering,
            aggregation=self._aggregation,
            max_escalations=self._max_escalations,
        )
        self.last_report = await runtime.run()
        return engine.result

    def run(
        self,
        order: Sequence[Union[Pair, CandidatePair]],
        oracle: LabelOracle,
    ) -> LabelingResult:
        """Synchronous entry point (spins a private event loop)."""
        return asyncio.run(self.run_async(order, oracle))
