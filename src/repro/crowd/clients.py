"""Platform clients: one async seam between the runtime and any crowd.

The discrete-event :class:`~repro.crowd.platform.SimulatedPlatform` was the
repo's only crowd; campaigns stepped it directly, so the simulator's clock
was baked into every labeling loop.  This module inverts that dependency.
A :class:`PlatformClient` is the *only* thing the engine-side runtime
(:class:`repro.engine.async_dispatch.CrowdRuntime`) talks to:

* :meth:`~PlatformClient.submit_pairs` — batch pairs into HITs and hand
  them to the crowd (optionally with an expiry timeout);
* :meth:`~PlatformClient.next_event` / :meth:`~PlatformClient.completions`
  — await :class:`~repro.crowd.platform.HITCompletion` and
  :class:`HITExpiry` events, in whatever order the crowd produces them;
* :meth:`~PlatformClient.cancel` / :meth:`~PlatformClient.drain` /
  :meth:`~PlatformClient.close` — lifecycle control.

Three implementations cover the spectrum from reproducible simulation to a
live platform:

* :class:`SimulatedPlatformClient` — wraps the existing discrete-event
  simulator; ``next_event`` advances simulated time.  Optional seeded
  *expiry injection* models abandoned work so re-issue paths can be tested
  against the frozen references.
* :class:`PollingPlatformClient` — periodic fetch against any REST-shaped
  backend (AMT-style ``CreateHIT``/``ListAssignments``/``ExpireHIT``
  surface).  :class:`InMemoryCrowdBackend` is the in-memory fake used by
  tests and the runnable example; a real backend only needs the same three
  duck-typed methods.
* :class:`CallbackPlatformClient` — webhook-style push: external code (an
  HTTP handler, a queue consumer) calls :meth:`deliver_completion` /
  :meth:`deliver_expiry` as results arrive, from any thread.

Clients never touch the deduction state; the runtime owns answer
application.  An expired HIT is already terminal client-side when its
:class:`HITExpiry` event is emitted — the runtime's only job is deciding
whether to re-issue the unanswered pairs.
"""

from __future__ import annotations

import asyncio
import itertools
import random
import time
from collections import deque
from dataclasses import dataclass
from typing import (
    AsyncIterator,
    Awaitable,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
    Union,
    runtime_checkable,
)

from ..core.oracle import LabelOracle
from ..core.pairs import Label, Pair
from .hit import DEFAULT_ASSIGNMENTS, DEFAULT_BATCH_SIZE, HIT, batch_pairs
from .latency import ZeroLatency
from .platform import HITCompletion, SimulatedPlatform
from .worker import PerfectWorker, Worker


@dataclass(frozen=True)
class HITExpiry:
    """A published HIT timed out (abandoned / lost) without completing.

    The emitting client has already retired the HIT on its side (no
    completion will follow for this ``hit_id``); the runtime decides
    whether to re-issue the still-unanswered pairs as a fresh HIT.

    Attributes:
        hit: the HIT that expired.
        expired_at: client-clock time of the expiry.
        reason: short diagnostic tag (``"timeout"``, ``"abandoned"``...).
    """

    hit: HIT
    expired_at: float
    reason: str = "timeout"


#: Everything a client can report back about published work.
PlatformEvent = Union[HITCompletion, HITExpiry]


@runtime_checkable
class PlatformClient(Protocol):
    """Async contract between the crowd runtime and a crowd platform.

    All times are in the client's own clock units: simulated hours for the
    simulated client, wall-clock seconds for live clients.  The runtime
    only ever compares them to each other.
    """

    @property
    def batch_size(self) -> int:
        """Pairs per HIT (the platform's batching granularity)."""
        ...  # pragma: no cover - protocol

    @property
    def n_assignments(self) -> int:
        """Replication factor per HIT (what one HIT costs in assignments)."""
        ...  # pragma: no cover - protocol

    @property
    def now(self) -> float:
        """Current client-clock time."""
        ...  # pragma: no cover - protocol

    @property
    def n_outstanding_hits(self) -> int:
        """HITs submitted and neither completed, expired, nor cancelled."""
        ...  # pragma: no cover - protocol

    async def submit_pairs(
        self, pairs: Sequence[Pair], *, timeout: Optional[float] = None
    ) -> List[HIT]:
        """Batch ``pairs`` into HITs and publish them.

        Args:
            pairs: the pairs to publish, in order.
            timeout: optional expiry deadline, in client-clock units from
                now; clients that support expiry emit :class:`HITExpiry`
                for HITs still incomplete past it.
        """
        ...  # pragma: no cover - protocol

    async def next_event(self) -> Optional[PlatformEvent]:
        """The next completion or expiry, or None when nothing is and will
        be outstanding (the platform is drained)."""
        ...  # pragma: no cover - protocol

    def completions(self) -> AsyncIterator[PlatformEvent]:
        """Async-iterate events until the platform drains."""
        ...  # pragma: no cover - protocol

    async def cancel(self, hit_id: int) -> bool:
        """Withdraw an outstanding HIT; True if it was still outstanding."""
        ...  # pragma: no cover - protocol

    async def drain(self) -> List[HITCompletion]:
        """Settle all outstanding work and return any late completions.

        The simulated client runs its platform to completion (the work is
        paid for regardless); live clients cancel what is still out and
        return whatever had already completed.
        """
        ...  # pragma: no cover - protocol

    async def close(self) -> None:
        """Release the client; outstanding HITs are cancelled."""
        ...  # pragma: no cover - protocol


class _PlatformClientBase:
    """Shared :meth:`completions` iterator over :meth:`next_event`."""

    async def next_event(self) -> Optional[PlatformEvent]:  # pragma: no cover
        raise NotImplementedError

    async def completions(self) -> AsyncIterator[PlatformEvent]:
        while True:
            event = await self.next_event()
            if event is None:
                return
            yield event


def _batch_into_hits(
    counter: "itertools.count",
    pairs: Sequence[Pair],
    batch_size: int,
    n_assignments: int,
) -> List[HIT]:
    """Batch ``pairs`` into HITs with ids reserved from ``counter``."""
    hits = batch_pairs(
        list(pairs),
        batch_size=batch_size,
        n_assignments=n_assignments,
        first_hit_id=next(counter),
    )
    # keep the counter ahead of the ids just allocated
    for _ in range(max(len(hits) - 1, 0)):
        next(counter)
    return hits


# ----------------------------------------------------------------------
# simulated client
# ----------------------------------------------------------------------
class SimulatedPlatformClient(_PlatformClientBase):
    """The discrete-event simulator behind the async client seam.

    ``next_event`` advances simulated time to the next HIT completion, so
    an asyncio loop over this client replays exactly the event sequence
    the old synchronous ``platform.step()`` loops observed — byte-identical
    results, one code path.

    Expiry injection (``expire_probability``) models abandoned work: a
    completing HIT is, with the given seeded probability and at most once
    per HIT, reported as :class:`HITExpiry` instead — its answers are
    discarded and the runtime must re-issue the pairs.  The simulated
    workers were still paid (as on a real platform, where abandoned or
    rejected work often is anyway); only the *labels* are lost.

    Args:
        platform: the simulator to wrap.
        expire_probability: chance a completing HIT is reported expired
            (each HIT expires at most once, so runs always terminate).
        expire_seed: RNG seed for expiry injection.
    """

    def __init__(
        self,
        platform: SimulatedPlatform,
        *,
        expire_probability: float = 0.0,
        expire_seed: int = 0,
    ) -> None:
        if not 0.0 <= expire_probability <= 1.0:
            raise ValueError(
                f"expire_probability must be in [0, 1], got {expire_probability}"
            )
        self._platform = platform
        self._expire_probability = expire_probability
        self._expire_rng = random.Random(expire_seed)
        self._expired: Set[int] = set()

    @classmethod
    def for_oracle(
        cls, oracle: LabelOracle, *, batch_size: int = 32, seed: int = 0
    ) -> "SimulatedPlatformClient":
        """A minimal deterministic client answering through ``oracle``.

        One perfect worker, one assignment per HIT, zero latency: the
        oracle is consulted exactly once per published pair, in publication
        order, and completions arrive FIFO — which is what lets the
        synchronous dispatch facades reproduce the pre-refactor labelers
        exactly while running the shared async code path.
        """
        platform = SimulatedPlatform(
            workers=[Worker(worker_id=0, model=PerfectWorker())],
            truth=oracle,
            latency=ZeroLatency(),
            batch_size=batch_size,
            n_assignments=1,
            seed=seed,
        )
        return cls(platform)

    @property
    def platform(self) -> SimulatedPlatform:
        """The wrapped simulator (stats, ledger, clock)."""
        return self._platform

    @property
    def batch_size(self) -> int:
        return self._platform.batch_size

    @property
    def n_assignments(self) -> int:
        return self._platform.n_assignments

    @property
    def now(self) -> float:
        return self._platform.now

    @property
    def n_outstanding_hits(self) -> int:
        return self._platform.n_outstanding_hits

    async def submit_pairs(
        self, pairs: Sequence[Pair], *, timeout: Optional[float] = None
    ) -> List[HIT]:
        # Simulated workers always finish, so a deadline is meaningless
        # here; abandoned work is modelled by expiry injection instead.
        return self._platform.publish_pairs(list(pairs))

    async def next_event(self) -> Optional[PlatformEvent]:
        completion = self._platform.step()
        if completion is None:
            return None
        if (
            self._expire_probability > 0.0
            and completion.hit.hit_id not in self._expired
            and self._expire_rng.random() < self._expire_probability
        ):
            self._expired.add(completion.hit.hit_id)
            return HITExpiry(
                hit=completion.hit,
                expired_at=completion.completed_at,
                reason="abandoned",
            )
        return completion

    async def cancel(self, hit_id: int) -> bool:
        # The simulator has no recall mechanism: once published, workers
        # will complete the HIT (and be paid) regardless.
        return False

    async def drain(self) -> List[HITCompletion]:
        return self._platform.run_to_completion()

    async def close(self) -> None:
        return None


# ----------------------------------------------------------------------
# polling client + in-memory fake backend
# ----------------------------------------------------------------------
class RestCrowdBackend(Protocol):
    """Duck-typed REST-shaped surface the polling client fetches against.

    A real implementation maps these onto the platform's HTTP API (for AMT:
    ``CreateHIT``, ``ListAssignmentsForHIT``, ``UpdateExpirationForHIT``);
    payloads are plain dicts so the transport can serialise them however it
    likes.  :class:`InMemoryCrowdBackend` is the reference fake.
    """

    def create_hits(self, requests: Sequence[dict]) -> None:
        """Publish HITs; each request has ``hit_id``, ``pairs``,
        ``n_assignments``."""
        ...  # pragma: no cover - protocol

    def fetch_completed(self) -> List[dict]:
        """Completions not yet delivered, each with ``hit_id``, ``labels``
        (pair -> :class:`Label`), and optionally ``completed_at``."""
        ...  # pragma: no cover - protocol

    def expire_hit(self, hit_id: int) -> bool:
        """Retire an outstanding HIT; True if it was still pending."""
        ...  # pragma: no cover - protocol

    # Backends may additionally expose ``review_assignments(hit_id,
    # decisions) -> (n_approved, n_rejected)`` and ``extend_expiry(hit_id,
    # additional_s) -> bool``; the polling client forwards to them when
    # present (see ``repro.crowd.platforms.mturk.MTurkBackend``).


class ManualClock:
    """Deterministic clock for driving the polling client in tests.

    ``sleep`` *advances* the clock instead of waiting, so a poll loop runs
    as fast as the CPU allows while timeouts still fire at exact instants.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise ValueError("cannot advance a clock backwards")
        self._now += dt

    async def sleep(self, dt: float) -> None:
        self.advance(max(dt, 0.0))


class PollingPlatformClient(_PlatformClientBase):
    """Periodic-fetch client for REST-shaped crowd backends.

    The client owns HIT identity (ids, pair composition) and the expiry
    bookkeeping; the backend only sees opaque requests and reports
    completions whenever they are ready — out of order, late, or never.
    A HIT still incomplete past its deadline is expired on the backend and
    surfaced as :class:`HITExpiry`; completions the backend reports for an
    already-expired HIT are dropped (their work was written off).

    Args:
        backend: the REST-shaped backend.
        batch_size: pairs per HIT.
        n_assignments: replication factor requested per HIT.
        poll_interval: clock units between fetches while work is out.
        hit_timeout: default expiry deadline applied to every submission
            (a per-submission ``timeout`` overrides it).
        clock: time source (defaults to wall-clock seconds).
        sleep: awaitable sleep (defaults to ``asyncio.sleep``); pass the
            :class:`ManualClock`'s to make polls advance virtual time.
    """

    def __init__(
        self,
        backend: RestCrowdBackend,
        *,
        batch_size: int = DEFAULT_BATCH_SIZE,
        n_assignments: int = DEFAULT_ASSIGNMENTS,
        poll_interval: float = 1.0,
        hit_timeout: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
        sleep: Optional[Callable[[float], Awaitable[None]]] = None,
    ) -> None:
        if poll_interval < 0:
            raise ValueError("poll_interval must be non-negative")
        self._backend = backend
        self._batch_size = batch_size
        self._n_assignments = n_assignments
        self._poll_interval = poll_interval
        self._hit_timeout = hit_timeout
        self._clock = clock if clock is not None else time.monotonic
        self._sleep = sleep if sleep is not None else asyncio.sleep
        self._hit_counter = itertools.count()
        self._outstanding: Dict[int, HIT] = {}
        self._deadlines: Dict[int, float] = {}
        self._events: Deque[PlatformEvent] = deque()

    @property
    def batch_size(self) -> int:
        return self._batch_size

    @property
    def n_assignments(self) -> int:
        return self._n_assignments

    @property
    def now(self) -> float:
        return self._clock()

    @property
    def n_outstanding_hits(self) -> int:
        return len(self._outstanding)

    async def submit_pairs(
        self, pairs: Sequence[Pair], *, timeout: Optional[float] = None
    ) -> List[HIT]:
        hits = _batch_into_hits(
            self._hit_counter, pairs, self._batch_size, self._n_assignments
        )
        deadline = timeout if timeout is not None else self._hit_timeout
        for hit in hits:
            self._outstanding[hit.hit_id] = hit
            if deadline is not None:
                self._deadlines[hit.hit_id] = self._clock() + deadline
        self._backend.create_hits(
            [
                {
                    "hit_id": hit.hit_id,
                    "pairs": hit.pairs,
                    "n_assignments": hit.n_assignments,
                }
                for hit in hits
            ]
        )
        return hits

    def _poll_once(self) -> None:
        """One fetch + expiry pass; found events join the buffer."""
        for record in self._backend.fetch_completed():
            hit = self._outstanding.pop(record["hit_id"], None)
            if hit is None:
                continue  # completion of an expired/cancelled HIT
            self._deadlines.pop(hit.hit_id, None)
            self._events.append(
                HITCompletion(
                    hit=hit,
                    labels=dict(record["labels"]),
                    completed_at=float(record.get("completed_at", self._clock())),
                    assignments=(),
                )
            )
        now = self._clock()
        for hit_id in [h for h, d in self._deadlines.items() if now >= d]:
            hit = self._outstanding.pop(hit_id)
            del self._deadlines[hit_id]
            self._backend.expire_hit(hit_id)
            self._events.append(HITExpiry(hit=hit, expired_at=now))

    async def next_event(self) -> Optional[PlatformEvent]:
        while True:
            if self._events:
                return self._events.popleft()
            self._poll_once()
            if self._events:
                return self._events.popleft()
            if not self._outstanding:
                return None
            await self._sleep(self._poll_interval)

    def review_hit(self, hit_id: int, decisions) -> Tuple[int, int]:
        """Forward review verdicts to the backend, if it supports review.

        The runtime's :class:`~repro.crowd.review.ReviewPolicy` calls this
        after applying a completion; backends without a review surface
        (the in-memory fake by default) cost nothing.  Returns
        ``(n_approved, n_rejected)``.
        """
        review = getattr(self._backend, "review_assignments", None)
        if review is None:
            return (0, 0)
        approved, rejected = review(hit_id, list(decisions))
        return (int(approved), int(rejected))

    async def cancel(self, hit_id: int) -> bool:
        hit = self._outstanding.pop(hit_id, None)
        self._deadlines.pop(hit_id, None)
        if hit is None:
            return False
        self._backend.expire_hit(hit_id)
        return True

    async def drain(self) -> List[HITCompletion]:
        self._poll_once()
        leftovers = [e for e in self._events if isinstance(e, HITCompletion)]
        self._events.clear()
        for hit_id in list(self._outstanding):
            await self.cancel(hit_id)
        return leftovers

    async def close(self) -> None:
        for hit_id in list(self._outstanding):
            await self.cancel(hit_id)
        self._events.clear()


class InMemoryCrowdBackend:
    """In-memory fake of a REST crowd service, for tests and examples.

    Answers come from an oracle (or ``answer_fn``).  Completion timing is
    controlled two ways:

    * *manually* — call :meth:`complete` / :meth:`complete_all` from test
      code to make results fetchable, in any order;
    * *scheduled* — give ``clock`` and ``latency``; each created HIT gets a
      seeded ready-time and becomes fetchable once the clock passes it
      (shuffled completion order falls out of the latency draws).

    HITs whose ids are in ``drop_hit_ids`` are never completed — the worker
    abandoned them — which is how tests exercise the polling client's
    expiry + re-issue path deterministically.
    """

    def __init__(
        self,
        oracle: Optional[LabelOracle] = None,
        answer_fn: Optional[Callable[[Pair], Label]] = None,
        *,
        clock: Optional[Callable[[], float]] = None,
        latency: Optional[Callable[[random.Random], float]] = None,
        drop_hit_ids: Sequence[int] = (),
        seed: int = 0,
    ) -> None:
        if (oracle is None) == (answer_fn is None):
            raise ValueError("provide exactly one of oracle or answer_fn")
        self._answer = answer_fn if answer_fn is not None else oracle.label
        self._clock = clock
        self._latency = latency
        if latency is not None and clock is None:
            raise ValueError("scheduled completion (latency=) needs a clock")
        self._rng = random.Random(seed)
        self._drop = set(drop_hit_ids)
        self._pending: Dict[int, dict] = {}
        self._ready_at: Dict[int, float] = {}
        self._completed: List[dict] = []
        self.n_created = 0
        self.n_expired = 0

    # -- REST-shaped surface ------------------------------------------
    def create_hits(self, requests: Sequence[dict]) -> None:
        for request in requests:
            hit_id = request["hit_id"]
            self._pending[hit_id] = request
            self.n_created += 1
            if self._latency is not None and hit_id not in self._drop:
                self._ready_at[hit_id] = self._clock() + self._latency(self._rng)

    def fetch_completed(self) -> List[dict]:
        if self._latency is not None:
            now = self._clock()
            for hit_id in [h for h, t in self._ready_at.items() if t <= now]:
                del self._ready_at[hit_id]
                self.complete(hit_id, completed_at=now)
        out = self._completed
        self._completed = []
        return out

    def expire_hit(self, hit_id: int) -> bool:
        self._ready_at.pop(hit_id, None)
        if self._pending.pop(hit_id, None) is None:
            return False
        self.n_expired += 1
        return True

    # -- test / simulation knobs --------------------------------------
    def pending_ids(self) -> List[int]:
        """Created HITs not yet completed or expired, in creation order."""
        return list(self._pending)

    def complete(self, hit_id: int, completed_at: Optional[float] = None) -> None:
        """Answer a pending HIT; its result becomes fetchable.

        Raises:
            KeyError: if the HIT is not pending (never created, already
                completed, or expired).
        """
        request = self._pending.pop(hit_id)
        self._ready_at.pop(hit_id, None)
        when = completed_at
        if when is None:
            when = self._clock() if self._clock is not None else 0.0
        self._completed.append(
            {
                "hit_id": hit_id,
                "labels": {pair: self._answer(pair) for pair in request["pairs"]},
                "completed_at": when,
            }
        )

    def complete_all(self, order: str = "fifo") -> List[int]:
        """Complete every pending HIT (``"fifo"``, ``"lifo"``, or seeded
        ``"random"`` order); returns the completion order used."""
        ids = self.pending_ids()
        if order == "lifo":
            ids.reverse()
        elif order == "random":
            self._rng.shuffle(ids)
        elif order != "fifo":
            raise ValueError(f"unknown completion order {order!r}")
        for hit_id in ids:
            self.complete(hit_id)
        return ids


# ----------------------------------------------------------------------
# webhook-style push client
# ----------------------------------------------------------------------
class CallbackPlatformClient(_PlatformClientBase):
    """Webhook-style push client: completions are *delivered*, not fetched.

    ``submit_hits`` hands published HITs to external code (an HTTP client,
    a queue producer); when the platform calls back — from the event-loop
    thread or any other — :meth:`deliver_completion` / :meth:`deliver_expiry`
    enqueue the event and wake the runtime.  ``next_event`` blocks until
    something is delivered, so a stalled platform stalls the campaign (put
    a :class:`~repro.crowd.latency.TimeoutPolicy` on the runtime, or a
    timeout on the surrounding task, to bound that).

    Args:
        submit_hits: called with each batch of newly published HITs.
        cancel_hit: optional; called with a hit_id being withdrawn.
        batch_size: pairs per HIT.
        n_assignments: replication factor recorded on each HIT.
        clock: time source for default ``completed_at`` stamps.
    """

    def __init__(
        self,
        submit_hits: Callable[[List[HIT]], None],
        *,
        cancel_hit: Optional[Callable[[int], None]] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        n_assignments: int = DEFAULT_ASSIGNMENTS,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self._submit_hits = submit_hits
        self._cancel_hit = cancel_hit
        self._batch_size = batch_size
        self._n_assignments = n_assignments
        self._clock = clock if clock is not None else time.monotonic
        self._hit_counter = itertools.count()
        self._outstanding: Dict[int, HIT] = {}
        self._events: Deque[PlatformEvent] = deque()
        self._wakeup: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    @property
    def batch_size(self) -> int:
        return self._batch_size

    @property
    def n_assignments(self) -> int:
        return self._n_assignments

    @property
    def now(self) -> float:
        return self._clock()

    @property
    def n_outstanding_hits(self) -> int:
        return len(self._outstanding)

    def _wake(self) -> None:
        """Wake a blocked ``next_event``, thread-safely."""
        loop, event = self._loop, self._wakeup
        if event is None:
            return
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(event.set)
        else:  # pragma: no cover - no loop yet: nothing is blocked
            event.set()

    # -- webhook entry points (any thread) ----------------------------
    def deliver_completion(
        self,
        hit_id: int,
        labels: Dict[Pair, Label],
        completed_at: Optional[float] = None,
    ) -> bool:
        """Push a completed HIT's aggregated labels; False if the HIT is
        unknown or no longer outstanding (late delivery is ignored).

        Raises:
            ValueError: when ``labels`` does not cover every pair of the
                HIT (the HIT stays outstanding).
        """
        hit = self._outstanding.get(hit_id)
        if hit is None:
            return False
        missing = set(hit.pairs) - set(labels)
        if missing:
            raise ValueError(
                f"completion for HIT {hit_id} is missing labels for "
                f"{sorted(map(repr, missing))}"
            )
        del self._outstanding[hit_id]
        self._events.append(
            HITCompletion(
                hit=hit,
                labels=dict(labels),
                completed_at=(
                    completed_at if completed_at is not None else self._clock()
                ),
                assignments=(),
            )
        )
        self._wake()
        return True

    def deliver_expiry(self, hit_id: int, expired_at: Optional[float] = None) -> bool:
        """Push an expiry notification for an outstanding HIT."""
        hit = self._outstanding.pop(hit_id, None)
        if hit is None:
            return False
        self._events.append(
            HITExpiry(
                hit=hit,
                expired_at=expired_at if expired_at is not None else self._clock(),
            )
        )
        self._wake()
        return True

    # -- client surface ------------------------------------------------
    async def submit_pairs(
        self, pairs: Sequence[Pair], *, timeout: Optional[float] = None
    ) -> List[HIT]:
        hits = _batch_into_hits(
            self._hit_counter, pairs, self._batch_size, self._n_assignments
        )
        for hit in hits:
            self._outstanding[hit.hit_id] = hit
        self._submit_hits(list(hits))
        return hits

    async def next_event(self) -> Optional[PlatformEvent]:
        if self._wakeup is None:
            self._wakeup = asyncio.Event()
        self._loop = asyncio.get_running_loop()
        while True:
            if self._events:
                return self._events.popleft()
            if not self._outstanding:
                return None
            self._wakeup.clear()
            await self._wakeup.wait()

    async def cancel(self, hit_id: int) -> bool:
        hit = self._outstanding.pop(hit_id, None)
        if hit is None:
            return False
        if self._cancel_hit is not None:
            self._cancel_hit(hit_id)
        # Cancelling the last outstanding HIT drains the client: a consumer
        # parked in next_event must wake up to observe that and return None.
        self._wake()
        return True

    async def drain(self) -> List[HITCompletion]:
        leftovers = [e for e in self._events if isinstance(e, HITCompletion)]
        self._events.clear()
        for hit_id in list(self._outstanding):
            await self.cancel(hit_id)
        return leftovers

    async def close(self) -> None:
        for hit_id in list(self._outstanding):
            await self.cancel(hit_id)
        self._events.clear()
        self._wake()
