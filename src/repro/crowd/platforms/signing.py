"""AWS Signature Version 4 request signing, with injectable credentials/clock.

The MTurk Requester API is a standard AWS JSON service: every request is
authenticated by an ``Authorization`` header derived from the request body,
a canonical rendering of the request, and a signing key rolled daily from
the secret key (`SigV4`_).  This module implements that derivation from the
stdlib only (``hmac`` + ``hashlib``), so the live backend needs no SDK.

Everything non-deterministic is injected: :class:`Credentials` are a value
object (built explicitly or from the conventional ``AWS_*`` environment
variables) and the timestamp is an argument, never ``time.time()`` — which
is what makes request signing property-testable against frozen known-good
signatures (``tests/crowd/platforms/test_signing.py``) and byte-stable in
recorded cassettes.

.. _SigV4: https://docs.aws.amazon.com/IAM/latest/UserGuide/create-signed-request.html
"""

from __future__ import annotations

import hashlib
import hmac
import os
from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Dict, Mapping, Optional, Sequence, Tuple
from urllib.parse import quote, urlsplit

_ALGORITHM = "AWS4-HMAC-SHA256"


class MissingCredentialsError(RuntimeError):
    """No AWS credentials were provided or found in the environment."""


@dataclass(frozen=True)
class Credentials:
    """An AWS access key pair (plus optional STS session token).

    A plain value object: nothing here talks to disk or the network, so
    tests and cassette recordings can use dummy keys freely.
    """

    access_key: str
    secret_key: str
    session_token: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.access_key or not self.secret_key:
            raise ValueError("credentials need a non-empty access and secret key")

    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None) -> "Credentials":
        """Read the conventional ``AWS_ACCESS_KEY_ID`` / ``AWS_SECRET_ACCESS_KEY``
        (+ optional ``AWS_SESSION_TOKEN``) variables.

        Raises:
            MissingCredentialsError: when either key variable is unset —
                the caller should fall back to a recorded cassette.
        """
        env = os.environ if environ is None else environ
        access = env.get("AWS_ACCESS_KEY_ID", "")
        secret = env.get("AWS_SECRET_ACCESS_KEY", "")
        if not access or not secret:
            raise MissingCredentialsError(
                "AWS_ACCESS_KEY_ID / AWS_SECRET_ACCESS_KEY are not set; "
                "run against a recorded cassette instead (see docs/crowd.md)"
            )
        return cls(access, secret, env.get("AWS_SESSION_TOKEN") or None)

    def __repr__(self) -> str:  # never leak the secret in logs/diffs
        return f"Credentials(access_key={self.access_key!r}, secret_key='***')"


def amz_date(now: datetime) -> str:
    """``now`` as the compact ISO-8601 form SigV4 uses (``YYYYMMDDTHHMMSSZ``)."""
    return now.astimezone(timezone.utc).strftime("%Y%m%dT%H%M%SZ")


def _sha256_hex(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _hmac(key: bytes, message: str) -> bytes:
    return hmac.new(key, message.encode("utf-8"), hashlib.sha256).digest()


def _canonical_uri(path: str) -> str:
    if not path:
        return "/"
    # Each path segment is URI-encoded (but not the separating slashes).
    return "/".join(quote(segment, safe="") for segment in path.split("/")) or "/"


def _canonical_query(query: str) -> str:
    if not query:
        return ""
    params: list[Tuple[str, str]] = []
    for item in query.split("&"):
        key, _, value = item.partition("=")
        params.append((quote(key, safe="-_.~"), quote(value, safe="-_.~")))
    return "&".join(f"{k}={v}" for k, v in sorted(params))


def _canonical_headers(headers: Mapping[str, str]) -> Tuple[str, str]:
    """(canonical header block, signed-header list) per the SigV4 rules:
    lowercase names, trimmed values, sorted by name."""
    normalized = sorted(
        (name.lower().strip(), " ".join(str(value).split()))
        for name, value in headers.items()
    )
    block = "".join(f"{name}:{value}\n" for name, value in normalized)
    signed = ";".join(name for name, _ in normalized)
    return block, signed


def signing_key(secret_key: str, date: str, region: str, service: str) -> bytes:
    """The day-scoped signing key: HMAC chain over date/region/service."""
    k_date = _hmac(("AWS4" + secret_key).encode("utf-8"), date)
    k_region = hmac.new(k_date, region.encode("utf-8"), hashlib.sha256).digest()
    k_service = hmac.new(k_region, service.encode("utf-8"), hashlib.sha256).digest()
    return hmac.new(k_service, b"aws4_request", hashlib.sha256).digest()


@dataclass(frozen=True)
class SignedRequest:
    """The signing products, exposed for tests and independent verification."""

    headers: Dict[str, str]
    canonical_request: str
    string_to_sign: str
    signature: str


def sign_request(
    credentials: Credentials,
    *,
    method: str,
    url: str,
    headers: Mapping[str, str],
    body: bytes,
    region: str,
    service: str = "mturk-requester",
    now: Optional[datetime] = None,
) -> SignedRequest:
    """Sign one HTTP request; returns the headers to actually send.

    The returned headers are the input headers plus ``Host`` (from the
    URL), ``X-Amz-Date``, ``X-Amz-Security-Token`` (when a session token
    is present), and the ``Authorization`` header carrying the signature.

    Args:
        credentials: the key pair to sign with.
        method: HTTP method (``"POST"`` for every MTurk operation).
        url: full endpoint URL; host/path/query are canonicalised from it.
        headers: headers to include in the signature (at minimum the
            service's ``Content-Type`` and ``X-Amz-Target``).
        body: the exact request payload bytes.
        region: AWS region of the endpoint (e.g. ``"us-east-1"``).
        service: signing service name.
        now: the signing instant; **required** for deterministic output —
            defaults to the current UTC time only as a live convenience.
    """
    if now is None:  # pragma: no cover - live convenience only
        now = datetime.now(timezone.utc)
    timestamp = amz_date(now)
    date = timestamp[:8]
    parts = urlsplit(url)

    all_headers: Dict[str, str] = {str(k): str(v) for k, v in headers.items()}
    all_headers["Host"] = parts.netloc
    all_headers["X-Amz-Date"] = timestamp
    if credentials.session_token:
        all_headers["X-Amz-Security-Token"] = credentials.session_token

    header_block, signed_headers = _canonical_headers(all_headers)
    canonical_request = "\n".join(
        (
            method.upper(),
            _canonical_uri(parts.path),
            _canonical_query(parts.query),
            header_block,
            signed_headers,
            _sha256_hex(body),
        )
    )
    scope = f"{date}/{region}/{service}/aws4_request"
    string_to_sign = "\n".join(
        (_ALGORITHM, timestamp, scope, _sha256_hex(canonical_request.encode("utf-8")))
    )
    key = signing_key(credentials.secret_key, date, region, service)
    signature = hmac.new(
        key, string_to_sign.encode("utf-8"), hashlib.sha256
    ).hexdigest()
    all_headers["Authorization"] = (
        f"{_ALGORITHM} Credential={credentials.access_key}/{scope}, "
        f"SignedHeaders={signed_headers}, Signature={signature}"
    )
    return SignedRequest(
        headers=all_headers,
        canonical_request=canonical_request,
        string_to_sign=string_to_sign,
        signature=signature,
    )


def parse_authorization(header: str) -> Dict[str, str]:
    """Split an ``Authorization`` header into its Credential / SignedHeaders /
    Signature fields (for verification by the fake service and tests)."""
    if not header.startswith(_ALGORITHM + " "):
        raise ValueError(f"not a SigV4 Authorization header: {header!r}")
    fields: Dict[str, str] = {}
    for chunk in header[len(_ALGORITHM) + 1 :].split(","):
        key, _, value = chunk.strip().partition("=")
        fields[key] = value
    missing = {"Credential", "SignedHeaders", "Signature"} - set(fields)
    if missing:
        raise ValueError(f"Authorization header missing {sorted(missing)}")
    return fields


def verify_signature(
    credentials: Credentials,
    *,
    method: str,
    url: str,
    headers: Mapping[str, str],
    body: bytes,
    region: str,
    service: str = "mturk-requester",
) -> bool:
    """Server-side check: does ``Authorization`` match a re-derivation?

    Used by :class:`~repro.crowd.platforms.fake_service.FakeMTurkService`
    so that recording a cassette exercises the real signing path end to
    end.  Only the headers the client declared in ``SignedHeaders`` enter
    the re-derivation, exactly as a real AWS endpoint verifies.
    """
    sent = {str(k): str(v) for k, v in headers.items()}
    lowered = {k.lower(): v for k, v in sent.items()}
    auth = lowered.get("authorization")
    timestamp = lowered.get("x-amz-date")
    if auth is None or timestamp is None:
        return False
    fields = parse_authorization(auth)
    signed_names: Sequence[str] = fields["SignedHeaders"].split(";")
    # Host, date, and session token are re-added by sign_request itself.
    readded = ("host", "x-amz-date", "x-amz-security-token")
    to_sign = {
        name: lowered[name]
        for name in signed_names
        if name not in readded and name in lowered
    }
    # Reconstruct the signing instant from the header (it is part of the
    # signature, so tampering is self-defeating).
    now = datetime.strptime(timestamp, "%Y%m%dT%H%M%SZ").replace(tzinfo=timezone.utc)
    rederived = sign_request(
        credentials,
        method=method,
        url=url,
        headers=to_sign,
        body=body,
        region=region,
        service=service,
        now=now,
    )
    return hmac.compare_digest(rederived.signature, fields["Signature"])
