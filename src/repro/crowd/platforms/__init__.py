"""Live crowd platform backends for the polling client.

Everything in :mod:`repro.crowd` up to here runs against simulators; this
subpackage is the production seam.  It currently ships the MTurk stack the
paper's campaigns ran on (Wang et al., SIGMOD 2013 evaluated against live
AMT workers), built from stdlib only:

* :mod:`.signing` — AWS SigV4 request signing, injectable credentials/clock;
* :mod:`.questionform` — HIT ↔ QuestionForm/HTMLQuestion XML rendering and
  answer decoding;
* :mod:`.throttle` — :class:`ThrottlePolicy`, token-bucket pacing +
  exponential-backoff retry shared by any REST backend;
* :mod:`.mturk` — :class:`MTurkBackend`, the
  :class:`~repro.crowd.clients.RestCrowdBackend` implementation
  (creation, paginated assignment listing, review, expiry);
* :mod:`.fake_service` — :class:`FakeMTurkService`, a signature-verifying
  in-process wire fake for tests and cassette recording;
* :mod:`.cassette` — :class:`RecordReplayBackend`, JSON record/replay of
  the backend seam for credential-free CI runs and post-hoc debugging.

See ``docs/crowd.md`` for the operator runbook (live + cassette workflow).
"""

from .cassette import (
    Cassette,
    RecordReplayBackend,
    ReplayDivergenceError,
    decode_payload,
    encode_payload,
)
from .fake_service import FakeMTurkService
from .mturk import (
    PRODUCTION_ENDPOINT,
    SANDBOX_ENDPOINT,
    MTurkBackend,
    MTurkRequestError,
    UrllibTransport,
)
from .questionform import (
    AnswerParseError,
    parse_answer_xml,
    render_answer_xml,
    render_html_question,
    render_question_form,
)
from .signing import (
    Credentials,
    MissingCredentialsError,
    SignedRequest,
    sign_request,
    verify_signature,
)
from .throttle import RetryBudgetExceededError, ThrottlePolicy

__all__ = [
    "AnswerParseError",
    "Cassette",
    "Credentials",
    "FakeMTurkService",
    "MTurkBackend",
    "MTurkRequestError",
    "MissingCredentialsError",
    "PRODUCTION_ENDPOINT",
    "RecordReplayBackend",
    "ReplayDivergenceError",
    "RetryBudgetExceededError",
    "SANDBOX_ENDPOINT",
    "SignedRequest",
    "ThrottlePolicy",
    "UrllibTransport",
    "decode_payload",
    "encode_payload",
    "parse_answer_xml",
    "render_answer_xml",
    "render_html_question",
    "render_question_form",
    "sign_request",
    "verify_signature",
]
