"""Record/replay cassettes for REST crowd backends.

A live crowd campaign is unrepeatable: workers answer once, money is
spent once.  :class:`RecordReplayBackend` makes the *traffic* repeatable —
wrapped around any :class:`~repro.crowd.clients.RestCrowdBackend`
(including review/expiry extensions), it captures every call crossing the
seam as a JSON **cassette**:

* **record mode** forwards each call to the inner backend and appends the
  (request, response) interaction;
* **replay mode** needs no inner backend at all: each call is matched
  against the next recorded interaction and answered from the cassette —
  deterministically, offline, with zero credentials.  Any divergence from
  the recorded sequence raises :class:`ReplayDivergenceError` with a
  readable diff of expected vs. actual.

This is how the full campaign acceptance test runs in CI
(``examples/mturk_campaign.py`` replays a committed cassette) and how a
live campaign gets debugged after the fact: re-run the exact traffic on a
laptop, under a debugger, as many times as needed.

Pairs and labels are serialised with explicit tags (``{"__pair__": ...}``)
so cassettes are plain reviewable JSON; only JSON-representable pair
members (strings, numbers) round-trip — which every shipped dataset uses.
"""

from __future__ import annotations

import difflib
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ...core.pairs import Label, Pair
from ..review import ReviewDecision

FORMAT = "repro-cassette/1"


# ----------------------------------------------------------------------
# payload (de)serialisation
# ----------------------------------------------------------------------
def encode_payload(value: Any) -> Any:
    """Lower a backend-seam payload to tagged, JSON-representable data."""
    if isinstance(value, Pair):
        return {"__pair__": [encode_payload(value.left), encode_payload(value.right)]}
    if isinstance(value, Label):
        return {"__label__": value.value}
    if isinstance(value, ReviewDecision):
        return {
            "__review__": [value.assignment_id, value.approve, value.feedback]
        }
    if isinstance(value, dict):
        if all(isinstance(key, str) for key in value):
            return {key: encode_payload(item) for key, item in value.items()}
        return {
            "__map__": [
                [encode_payload(key), encode_payload(item)]
                for key, item in value.items()
            ]
        }
    if isinstance(value, (list, tuple)):
        return [encode_payload(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"cannot record {type(value).__name__!r} in a cassette: {value!r}"
    )


def decode_payload(value: Any) -> Any:
    """Invert :func:`encode_payload`."""
    if isinstance(value, dict):
        if "__pair__" in value:
            left, right = value["__pair__"]
            return Pair(decode_payload(left), decode_payload(right))
        if "__label__" in value:
            return Label(value["__label__"])
        if "__review__" in value:
            assignment_id, approve, feedback = value["__review__"]
            return ReviewDecision(assignment_id, approve, feedback)
        if "__map__" in value:
            return {
                decode_payload(key): decode_payload(item)
                for key, item in value["__map__"]
            }
        return {key: decode_payload(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_payload(item) for item in value]
    return value


class ReplayDivergenceError(RuntimeError):
    """The replayed call sequence diverged from the recorded cassette."""


class Cassette:
    """An ordered list of recorded backend interactions + free-form meta."""

    def __init__(
        self,
        interactions: Optional[List[dict]] = None,
        meta: Optional[dict] = None,
    ) -> None:
        self.interactions: List[dict] = interactions if interactions is not None else []
        self.meta: dict = meta if meta is not None else {}

    def __len__(self) -> int:
        return len(self.interactions)

    def append(self, method: str, request: Any, response: Any) -> None:
        self.interactions.append(
            {
                "seq": len(self.interactions),
                "method": method,
                "request": encode_payload(request),
                "response": encode_payload(response),
            }
        )

    def save(self, path: Union[str, Path]) -> None:
        """Write the cassette as pretty-printed, diff-reviewable JSON."""
        Path(path).write_text(
            json.dumps(
                {
                    "format": FORMAT,
                    "meta": self.meta,
                    "interactions": self.interactions,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Cassette":
        """Read a cassette written by :meth:`save`.

        Raises:
            ValueError: not a cassette file, or an unknown format version.
        """
        data = json.loads(Path(path).read_text())
        if not isinstance(data, dict) or data.get("format") != FORMAT:
            raise ValueError(
                f"{path} is not a {FORMAT} cassette "
                f"(format={data.get('format') if isinstance(data, dict) else None!r})"
            )
        return cls(interactions=data["interactions"], meta=data.get("meta", {}))


def _pretty(value: Any) -> str:
    return json.dumps(value, indent=2, sort_keys=True)


class RecordReplayBackend:
    """A :class:`~repro.crowd.clients.RestCrowdBackend` that records or
    replays the traffic crossing the seam.

    Args:
        mode: ``"record"`` (wraps ``inner``, captures traffic) or
            ``"replay"`` (answers from ``cassette``; no inner backend).
        inner: the real backend to forward to — required in record mode.
        cassette: the cassette to replay — required in replay mode; in
            record mode a fresh one is created (retrieve it via
            :attr:`cassette` / persist with :meth:`save`).
        meta: free-form provenance recorded into a fresh cassette
            (seeds, workload description, recorder identity...).
    """

    def __init__(
        self,
        mode: str,
        *,
        inner: Optional[Any] = None,
        cassette: Optional[Cassette] = None,
        meta: Optional[dict] = None,
    ) -> None:
        if mode not in ("record", "replay"):
            raise ValueError(f"mode must be 'record' or 'replay', got {mode!r}")
        if mode == "record" and inner is None:
            raise ValueError("record mode needs an inner backend to forward to")
        if mode == "replay" and cassette is None:
            raise ValueError("replay mode needs a cassette to answer from")
        self._mode = mode
        self._inner = inner
        self.cassette = cassette if cassette is not None else Cassette(meta=meta)
        self._position = 0

    @property
    def mode(self) -> str:
        return self._mode

    # ------------------------------------------------------------------
    # the recorded seam
    # ------------------------------------------------------------------
    def _exchange(self, method: str, request: Any, default: Any = None) -> Any:
        if self._mode == "record":
            handler = getattr(self._inner, method, None)
            if handler is None:
                # Optional extension the inner backend lacks (e.g. review
                # on the in-memory fake): record the no-op outcome so the
                # replay is faithful to what the campaign observed.
                response = default
            else:
                response = handler(*request)
            self.cassette.append(method, list(request), response)
            return response
        return self._replay(method, list(request))

    def _replay(self, method: str, request: Any) -> Any:
        encoded = encode_payload(request)
        if self._position >= len(self.cassette.interactions):
            raise ReplayDivergenceError(
                f"cassette exhausted after {self._position} interactions, "
                f"but the campaign called {method}({_pretty(encoded)})\n"
                "Re-record the cassette if the campaign logic changed "
                "(see docs/crowd.md)."
            )
        expected = self.cassette.interactions[self._position]
        if expected["method"] != method or expected["request"] != encoded:
            diff = "\n".join(
                difflib.unified_diff(
                    _pretty(
                        {"method": expected["method"], "request": expected["request"]}
                    ).splitlines(),
                    _pretty({"method": method, "request": encoded}).splitlines(),
                    fromfile=f"cassette interaction {self._position} (recorded)",
                    tofile="campaign call (actual)",
                    lineterm="",
                )
            )
            raise ReplayDivergenceError(
                f"replay diverged at interaction {self._position}:\n{diff}\n"
                "Re-record the cassette if the campaign logic changed "
                "(see docs/crowd.md)."
            )
        self._position += 1
        return decode_payload(expected["response"])

    # ------------------------------------------------------------------
    # RestCrowdBackend surface (+ review / expiry extensions)
    # ------------------------------------------------------------------
    def create_hits(self, requests: Sequence[dict]) -> None:
        self._exchange("create_hits", [[dict(r) for r in requests]])

    def fetch_completed(self) -> List[dict]:
        return self._exchange("fetch_completed", [])

    def expire_hit(self, hit_id: int) -> bool:
        return self._exchange("expire_hit", [hit_id])

    def review_assignments(
        self, hit_id: int, decisions: Sequence[ReviewDecision]
    ) -> tuple:
        result = self._exchange(
            "review_assignments", [hit_id, list(decisions)], default=(0, 0)
        )
        return tuple(result)

    def extend_expiry(self, hit_id: int, additional_s: float) -> bool:
        return self._exchange(
            "extend_expiry", [hit_id, additional_s], default=False
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Persist the recorded cassette (record mode only)."""
        if self._mode != "record":
            raise RuntimeError("only record mode has a cassette to save")
        self.cassette.save(path)

    def assert_exhausted(self) -> None:
        """Replay-mode check that the whole cassette was consumed — a
        campaign that stopped early is as diverged as one that overran.

        Raises:
            ReplayDivergenceError: interactions remain unplayed.
        """
        remaining = len(self.cassette.interactions) - self._position
        if self._mode == "replay" and remaining:
            nxt = self.cassette.interactions[self._position]
            raise ReplayDivergenceError(
                f"campaign finished with {remaining} recorded interaction(s) "
                f"unplayed; next was {nxt['method']} (seq {nxt['seq']})"
            )
