"""A production-shaped MTurk Requester backend for the polling client.

:class:`MTurkBackend` implements the duck-typed
:class:`~repro.crowd.clients.RestCrowdBackend` surface (``create_hits`` /
``fetch_completed`` / ``expire_hit``) over the real MTurk wire protocol —
the AWS JSON 1.1 RPC the SDKs speak: every operation is a signed ``POST``
to the requester endpoint with an ``X-Amz-Target`` header naming the
operation.  Plugged into
:class:`~repro.crowd.clients.PollingPlatformClient`, the whole transitive-
join runtime drives a live crowd unchanged.

What it owns:

* **request signing** — SigV4 via :mod:`.signing`, with injectable
  credentials and clock (deterministic signatures for cassettes/tests);
* **HIT creation** — each request's pairs render to QuestionForm XML (or
  an HTMLQuestion) via :mod:`.questionform`;
* **assignment listing with pagination** — ``ListAssignmentsForHIT`` pages
  through ``NextToken``; answers decode back to per-pair labels and
  aggregate by majority vote once a HIT's replication target is met;
* **review** — ``approve``/``reject`` of submitted assignments
  (:meth:`MTurkBackend.review_assignments`, driven by the runtime's
  :class:`~repro.crowd.review.ReviewPolicy`);
* **expiry** — force-expiring a HIT (how MTurk retires work early) and
  extending a deadline (:meth:`MTurkBackend.extend_expiry`);
* **throttling** — every call runs under a shared
  :class:`~repro.crowd.platforms.throttle.ThrottlePolicy` (token-bucket
  pacing, exponential-backoff retry on ``ThrottlingException``/5xx).

The transport is a plain callable ``request dict -> response dict``, so
the backend runs identically against live HTTPS
(:class:`UrllibTransport`), the in-process
:class:`~repro.crowd.platforms.fake_service.FakeMTurkService`, or a
recorded cassette's replay transport — no SDK, no new dependencies.
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from typing import Callable, Dict, List, Optional, Sequence

from ...core.pairs import Label, Pair
from ..aggregation import majority_vote
from ..hit import HIT
from ..review import ReviewDecision
from .questionform import (
    PairDescriber,
    parse_answer_xml,
    render_html_question,
    render_question_form,
)
from .signing import Credentials, sign_request
from .throttle import ThrottlePolicy

#: The requester API's RPC target prefix (service version 2017-01-17).
TARGET_PREFIX = "MTurkRequesterServiceV20170117"
SANDBOX_ENDPOINT = "https://mturk-requester-sandbox.us-east-1.amazonaws.com"
PRODUCTION_ENDPOINT = "https://mturk-requester.us-east-1.amazonaws.com"

#: request dict -> response dict.  Requests carry ``method``/``url``/
#: ``headers``/``body``; responses carry ``status``/``body``.
Transport = Callable[[dict], dict]


class MTurkRequestError(RuntimeError):
    """The platform answered an operation with a non-retryable error."""

    def __init__(self, operation: str, status: int, code: str, message: str) -> None:
        super().__init__(
            f"{operation} failed with HTTP {status} {code}: {message}"
        )
        self.operation = operation
        self.status = status
        self.code = code
        self.message = message


class UrllibTransport:
    """Live HTTPS transport over :mod:`urllib.request` (stdlib only).

    Network errors with an HTTP response body are returned as ordinary
    response dicts so the throttle policy can classify them (5xx retry);
    everything else propagates.
    """

    def __init__(self, timeout_s: float = 30.0) -> None:
        self._timeout_s = timeout_s

    def __call__(self, request: dict) -> dict:  # pragma: no cover - live I/O
        import urllib.error
        import urllib.request

        req = urllib.request.Request(
            request["url"],
            data=request["body"].encode("utf-8"),
            headers=request["headers"],
            method=request["method"],
        )
        try:
            with urllib.request.urlopen(req, timeout=self._timeout_s) as resp:
                return {
                    "status": resp.status,
                    "body": resp.read().decode("utf-8"),
                }
        except urllib.error.HTTPError as exc:
            return {"status": exc.code, "body": exc.read().decode("utf-8")}


def _is_retryable(response: dict) -> bool:
    status = int(response.get("status", 0))
    if status >= 500:
        return True
    if status == 400:
        try:
            code = json.loads(response.get("body") or "{}").get("__type", "")
        except ValueError:
            return False
        return "ThrottlingException" in code or "ServiceFault" in code
    return False


class MTurkBackend:
    """MTurk over the three-method ``RestCrowdBackend`` seam.

    Args:
        credentials: AWS key pair used to sign every request.
        transport: the wire (defaults to live HTTPS via
            :class:`UrllibTransport`; tests and recordings inject the fake
            service or a replay transport).
        endpoint: requester endpoint URL; defaults to the **sandbox** —
            going to production is an explicit choice.
        region: AWS region for request signing.
        clock: epoch-seconds time source for signing timestamps and
            expiry arithmetic (injectable for determinism).
        throttle: shared pacing/retry policy (default: a fresh
            :class:`ThrottlePolicy` with conservative MTurk limits).
        title / description / reward / keywords: HIT listing metadata.
        assignment_duration_s: per-worker time allowance on one HIT.
        lifetime_s: how long a HIT stays discoverable on the platform.
        auto_approval_delay_s: platform auto-approval fallback (the
            runtime's ReviewPolicy should act long before this).
        describe: renders a pair as the two texts workers compare
            (defaults to ``str`` of each side).
        use_html_question: render HITs as ``HTMLQuestion`` instead of
            ``QuestionForm``.
        page_size: ``ListAssignmentsForHIT`` page size (``MaxResults``).
    """

    def __init__(
        self,
        credentials: Credentials,
        *,
        transport: Optional[Transport] = None,
        endpoint: str = SANDBOX_ENDPOINT,
        region: str = "us-east-1",
        clock: Optional[Callable[[], float]] = None,
        throttle: Optional[ThrottlePolicy] = None,
        title: str = "Decide whether two descriptions match",
        description: str = (
            "Look at pairs of descriptions and decide whether each pair "
            "refers to the same real-world entity."
        ),
        reward: float = 0.02,
        keywords: str = "entity matching, deduplication, join",
        assignment_duration_s: int = 600,
        lifetime_s: int = 86_400,
        auto_approval_delay_s: int = 259_200,
        describe: Optional[PairDescriber] = None,
        use_html_question: bool = False,
        page_size: int = 10,
    ) -> None:
        if reward < 0:
            raise ValueError("reward must be non-negative")
        if page_size < 1:
            raise ValueError("page_size must be at least 1")
        self._credentials = credentials
        self._transport = transport if transport is not None else UrllibTransport()
        self._endpoint = endpoint.rstrip("/")
        self._region = region
        if clock is None:  # pragma: no cover - live convenience only
            import time as _time

            clock = _time.time
        self._clock = clock
        self._throttle = throttle if throttle is not None else ThrottlePolicy()
        self._title = title
        self._description = description
        self._reward = reward
        self._keywords = keywords
        self._assignment_duration_s = assignment_duration_s
        self._lifetime_s = lifetime_s
        self._auto_approval_delay_s = auto_approval_delay_s
        self._describe = describe
        self._use_html_question = use_html_question
        self._page_size = page_size
        # local hit_id -> bookkeeping for the HITs this backend published
        self._hits: Dict[int, dict] = {}
        # Namespace for CreateHIT idempotency tokens: unique per live
        # campaign (wall-clock construction instant), deterministic under
        # an injected clock so recorded cassettes stay byte-stable.
        self._token_namespace = int(self._clock())

    # ------------------------------------------------------------------
    # wire plumbing
    # ------------------------------------------------------------------
    def _call(self, operation: str, params: dict) -> dict:
        """One signed RPC under the throttle policy.

        Raises:
            MTurkRequestError: non-retryable platform error.
            RetryBudgetExceededError: persistent throttling/5xx weather.
        """
        body = json.dumps(params, sort_keys=True)
        now = datetime.fromtimestamp(self._clock(), tz=timezone.utc)
        signed = sign_request(
            self._credentials,
            method="POST",
            url=self._endpoint + "/",
            headers={
                "Content-Type": "application/x-amz-json-1.1",
                "X-Amz-Target": f"{TARGET_PREFIX}.{operation}",
            },
            body=body.encode("utf-8"),
            region=self._region,
            now=now,
        )
        request = {
            "method": "POST",
            "url": self._endpoint + "/",
            "headers": signed.headers,
            "body": body,
        }
        response = self._throttle.call(
            lambda: self._transport(request),
            should_retry=_is_retryable,
            describe=operation,
        )
        status = int(response.get("status", 0))
        payload = json.loads(response.get("body") or "{}")
        if status != 200:
            raise MTurkRequestError(
                operation,
                status,
                str(payload.get("__type", "UnknownError")),
                str(payload.get("Message", payload.get("message", ""))),
            )
        return payload

    # ------------------------------------------------------------------
    # RestCrowdBackend surface
    # ------------------------------------------------------------------
    def create_hits(self, requests: Sequence[dict]) -> None:
        """Publish each request as one platform HIT (QuestionForm rendered
        from its pairs); remembers the platform ``HITId`` mapping."""
        for request in requests:
            hit = HIT(
                hit_id=request["hit_id"],
                pairs=tuple(request["pairs"]),
                n_assignments=request["n_assignments"],
            )
            if self._use_html_question:
                question = render_html_question(hit, describe=self._describe)
            else:
                question = render_question_form(hit, describe=self._describe)
            payload = self._call(
                "CreateHIT",
                {
                    "Title": self._title,
                    "Description": self._description,
                    "Keywords": self._keywords,
                    "Question": question,
                    "Reward": f"{self._reward:.2f}",
                    "MaxAssignments": hit.n_assignments,
                    "AssignmentDurationInSeconds": self._assignment_duration_s,
                    "LifetimeInSeconds": self._lifetime_s,
                    "AutoApprovalDelayInSeconds": self._auto_approval_delay_s,
                    "RequesterAnnotation": f"repro-hit-{hit.hit_id}",
                    # Makes the throttle policy's 5xx retries idempotent: a
                    # re-sent CreateHIT whose first response was lost returns
                    # the already-created HIT instead of double-publishing
                    # (and double-paying) the work.
                    "UniqueRequestToken": (
                        f"repro-{self._token_namespace}-{hit.hit_id}"
                    ),
                },
            )
            self._hits[hit.hit_id] = {
                "hit": hit,
                "platform_id": payload["HIT"]["HITId"],
                "assignments": {},  # assignment_id -> per-pair labels
                "settled": False,  # delivered or expired
            }

    def _list_assignments(self, platform_id: str) -> List[dict]:
        """All *submitted* assignments of one platform HIT, across pages."""
        assignments: List[dict] = []
        token: Optional[str] = None
        while True:
            params: dict = {
                "HITId": platform_id,
                "AssignmentStatuses": ["Submitted", "Approved", "Rejected"],
                "MaxResults": self._page_size,
            }
            if token is not None:
                params["NextToken"] = token
            payload = self._call("ListAssignmentsForHIT", params)
            assignments.extend(payload.get("Assignments", ()))
            token = payload.get("NextToken")
            if not token:
                return assignments

    def fetch_completed(self) -> List[dict]:
        """Poll every outstanding HIT; HITs whose replication target has
        been met come back as completion records with majority-vote labels
        (plus the contributing ``assignment_ids`` for review)."""
        records: List[dict] = []
        for hit_id, entry in self._hits.items():
            if entry["settled"]:
                continue
            hit: HIT = entry["hit"]
            listed = self._list_assignments(entry["platform_id"])
            for assignment in listed:
                assignment_id = assignment["AssignmentId"]
                if assignment_id in entry["assignments"]:
                    continue
                entry["assignments"][assignment_id] = parse_answer_xml(
                    assignment["Answer"], hit
                )
            if len(entry["assignments"]) < hit.n_assignments:
                continue
            labels: Dict[Pair, Label] = {
                pair: majority_vote(
                    [answers[pair] for answers in entry["assignments"].values()]
                )
                for pair in hit.pairs
            }
            entry["settled"] = True
            records.append(
                {
                    "hit_id": hit_id,
                    "labels": labels,
                    "completed_at": self._clock(),
                    "assignment_ids": sorted(entry["assignments"]),
                }
            )
        return records

    def expire_hit(self, hit_id: int) -> bool:
        """Force-expire an outstanding HIT (``ExpireAt`` in the past is how
        MTurk retires work early); True if it was still pending here."""
        entry = self._hits.get(hit_id)
        if entry is None or entry["settled"]:
            return False
        self._call(
            "UpdateExpirationForHIT",
            {"HITId": entry["platform_id"], "ExpireAt": 0},
        )
        entry["settled"] = True
        return True

    # ------------------------------------------------------------------
    # review + expiry extension (beyond the polling seam)
    # ------------------------------------------------------------------
    def review_assignments(
        self, hit_id: int, decisions: Sequence[ReviewDecision]
    ) -> tuple:
        """Apply approve/reject verdicts; returns ``(n_approved, n_rejected)``.

        A decision with ``assignment_id=None`` fans out to every collected
        assignment of the HIT (how an aggregate-level policy like
        :class:`~repro.crowd.review.ApproveAll` addresses them).
        """
        entry = self._hits.get(hit_id)
        if entry is None:
            return (0, 0)
        approved = rejected = 0
        for decision in decisions:
            if decision.assignment_id is None:
                targets = sorted(entry["assignments"])
            else:
                targets = [decision.assignment_id]
            for assignment_id in targets:
                if decision.approve:
                    self._call(
                        "ApproveAssignment",
                        {
                            "AssignmentId": assignment_id,
                            "RequesterFeedback": decision.feedback,
                        },
                    )
                    approved += 1
                else:
                    self._call(
                        "RejectAssignment",
                        {
                            "AssignmentId": assignment_id,
                            "RequesterFeedback": decision.feedback,
                        },
                    )
                    rejected += 1
        return (approved, rejected)

    def extend_expiry(self, hit_id: int, additional_s: float) -> bool:
        """Push an outstanding HIT's platform deadline ``additional_s``
        further out; True if the HIT was still pending here."""
        if additional_s <= 0:
            raise ValueError("additional_s must be positive")
        entry = self._hits.get(hit_id)
        if entry is None or entry["settled"]:
            return False
        self._call(
            "UpdateExpirationForHIT",
            {
                "HITId": entry["platform_id"],
                "ExpireAt": int(self._clock() + additional_s),
            },
        )
        return True

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    @property
    def throttle(self) -> ThrottlePolicy:
        """The pacing/retry policy (its counters double as diagnostics)."""
        return self._throttle

    def platform_hit_id(self, hit_id: int) -> str:
        """The platform's ``HITId`` for a locally published HIT."""
        return self._hits[hit_id]["platform_id"]
