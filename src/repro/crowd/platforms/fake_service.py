"""An in-process, wire-level fake of the MTurk Requester API.

:class:`FakeMTurkService` is to :class:`~repro.crowd.platforms.mturk.MTurkBackend`
what :class:`~repro.crowd.clients.InMemoryCrowdBackend` is to the polling
client — but one layer *lower*: it speaks the actual wire protocol.  Its
:meth:`transport` is a drop-in for the backend's HTTP transport, so a
campaign run against it exercises every production code path — SigV4
signing (signatures are **verified** server-side), QuestionForm rendering
and parsing, pagination, review, expiry — without a network or an AWS
account.  That makes it:

* the substrate for **recording cassettes**: wrap the backend in a
  :class:`~repro.crowd.platforms.cassette.RecordReplayBackend` over this
  transport and the captured traffic is byte-for-byte what a live
  campaign's would look like (see ``examples/mturk_campaign.py --record``);
* the end-to-end test double for the backend
  (``tests/crowd/platforms/test_mturk_backend.py``).

Simulated workers answer through an injected ``answer`` function that —
like real workers — sees only the *rendered texts* of each question, never
the underlying pair objects.  Latency draws (per assignment, seeded)
produce out-of-order completions; ``drop_hit_indexes`` models abandoned
HITs; ``inject`` queues canned error responses to exercise the throttle
policy's retry path.
"""

from __future__ import annotations

import json
import random
import xml.etree.ElementTree as ET
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ...core.pairs import Label
from .questionform import (
    SELECTION_MATCHING,
    SELECTION_NON_MATCHING,
    render_answer_xml,
)
from .signing import Credentials, verify_signature

#: Given the two rendered texts of a question, the label a worker submits.
TextAnswerer = Callable[[str, str], Label]


def _strip_prefix(text: str) -> str:
    for prefix in ("A: ", "B: "):
        if text.startswith(prefix):
            return text[len(prefix) :]
    return text


class FakeMTurkService:
    """The MTurk JSON-RPC surface, simulated in-process.

    Args:
        answer: decides each question's label from its two rendered texts.
        credentials: when given, every request's SigV4 signature is
            verified against these keys (403 on mismatch) — recording a
            cassette proves the signing path, not just the happy path.
        region: region the signatures are expected to be scoped to.
        clock: epoch-seconds time source (share the campaign's
            :class:`~repro.crowd.clients.ManualClock` for determinism).
        latency: per-assignment submit delay draw, in clock seconds
            (default: instant submission).
        flip_probability: chance a worker's answer is inverted (seeded) —
            noisy-crowd testing without changing the answerer.
        drop_hit_indexes: HITs (by creation order) whose assignments never
            arrive — the abandoned-work path the runtime must re-issue.
        seed: RNG seed for latency draws and answer flips.
    """

    def __init__(
        self,
        answer: TextAnswerer,
        *,
        credentials: Optional[Credentials] = None,
        region: str = "us-east-1",
        clock: Optional[Callable[[], float]] = None,
        latency: Optional[Callable[[random.Random], float]] = None,
        flip_probability: float = 0.0,
        drop_hit_indexes: Sequence[int] = (),
        seed: int = 0,
    ) -> None:
        if not 0.0 <= flip_probability <= 1.0:
            raise ValueError("flip_probability must be in [0, 1]")
        self._answer = answer
        self._credentials = credentials
        self._region = region
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._latency = latency
        self._flip_probability = flip_probability
        self._drop = set(drop_hit_indexes)
        self._rng = random.Random(seed)
        self._hits: Dict[str, dict] = {}
        self._assignments: Dict[str, dict] = {}
        self._n_hits = 0
        self._n_assignments = 0
        #: Canned responses served (FIFO) before real handling — push
        #: ``{"status": 503, "body": "..."}`` dicts to test retry paths.
        self.inject: List[dict] = []
        #: Response overrides served (FIFO) *after* real handling — models
        #: a request that took effect server-side but whose response was
        #: lost, which is exactly what CreateHIT idempotency tokens exist
        #: to make safe to retry.
        self.lose_response: List[dict] = []
        self._idempotency: Dict[str, dict] = {}
        #: Operation log, for assertions: (target, params) tuples.
        self.calls: List[Tuple[str, dict]] = []

    # ------------------------------------------------------------------
    # transport entry point
    # ------------------------------------------------------------------
    def transport(self, request: dict) -> dict:
        """Handle one wire request (the backend's ``Transport`` callable)."""
        if self.inject:
            return self.inject.pop(0)
        if self._credentials is not None and not verify_signature(
            self._credentials,
            method=request["method"],
            url=request["url"],
            headers=request["headers"],
            body=request["body"].encode("utf-8"),
            region=self._region,
        ):
            return _error(403, "InvalidSignatureException", "signature mismatch")
        headers = {k.lower(): v for k, v in request["headers"].items()}
        target = headers.get("x-amz-target", "")
        operation = target.rpartition(".")[2]
        params = json.loads(request["body"] or "{}")
        self.calls.append((operation, params))
        handler = getattr(self, f"_op_{_snake(operation)}", None)
        if handler is None:
            return _error(400, "UnknownOperationException", operation)
        response = handler(params)
        if self.lose_response:
            return self.lose_response.pop(0)
        return response

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def _op_create_hit(self, params: dict) -> dict:
        token = params.get("UniqueRequestToken")
        if token is not None and token in self._idempotency:
            # The real platform's retry semantics: a repeated token returns
            # the HIT created by the first request instead of a duplicate.
            return self._idempotency[token]
        questions = _parse_question_form(params["Question"])
        self._n_hits += 1
        platform_id = f"3HIT{self._n_hits:08d}"
        hit_index = self._n_hits - 1
        now = self._clock()
        entry = {
            "platform_id": platform_id,
            "questions": questions,
            "max_assignments": int(params["MaxAssignments"]),
            "expire_at": now + float(params["LifetimeInSeconds"]),
            "assignment_ids": [],
        }
        self._hits[platform_id] = entry
        if hit_index not in self._drop:
            for _ in range(entry["max_assignments"]):
                self._make_assignment(entry, now)
        response = _ok({"HIT": {"HITId": platform_id, "CreationTime": now}})
        if token is not None:
            self._idempotency[token] = response
        return response

    def _make_assignment(self, hit_entry: dict, now: float) -> None:
        self._n_assignments += 1
        assignment_id = f"3ASN{self._n_assignments:08d}"
        delay = self._latency(self._rng) if self._latency is not None else 0.0
        selections = {}
        for qid, left, right in hit_entry["questions"]:
            label = self._answer(left, right)
            if (
                self._flip_probability > 0.0
                and self._rng.random() < self._flip_probability
            ):
                label = label.negate()
            selections[qid] = (
                SELECTION_MATCHING
                if label is Label.MATCHING
                else SELECTION_NON_MATCHING
            )
        self._assignments[assignment_id] = {
            "assignment_id": assignment_id,
            "hit_id": hit_entry["platform_id"],
            "worker_id": f"W{self._n_assignments % 7:04d}",
            "submit_at": now + delay,
            "answer_xml": render_answer_xml(selections),
            "status": "Submitted",
        }
        hit_entry["assignment_ids"].append(assignment_id)

    def _op_list_assignments_for_hit(self, params: dict) -> dict:
        entry = self._hits.get(params["HITId"])
        if entry is None:
            return _error(400, "RequestError", f"no HIT {params['HITId']}")
        now = self._clock()
        visible = [
            self._assignments[aid]
            for aid in entry["assignment_ids"]
            if self._assignments[aid]["submit_at"] <= min(now, entry["expire_at"])
        ]
        offset = int(params.get("NextToken", "0") or "0")
        limit = int(params.get("MaxResults", 10))
        page = visible[offset : offset + limit]
        payload: dict = {
            "NumResults": len(page),
            "Assignments": [
                {
                    "AssignmentId": a["assignment_id"],
                    "WorkerId": a["worker_id"],
                    "HITId": a["hit_id"],
                    "AssignmentStatus": a["status"],
                    "SubmitTime": a["submit_at"],
                    "Answer": a["answer_xml"],
                }
                for a in page
            ],
        }
        if offset + limit < len(visible):
            payload["NextToken"] = str(offset + limit)
        return _ok(payload)

    def _op_update_expiration_for_hit(self, params: dict) -> dict:
        entry = self._hits.get(params["HITId"])
        if entry is None:
            return _error(400, "RequestError", f"no HIT {params['HITId']}")
        entry["expire_at"] = float(params["ExpireAt"])
        return _ok({})

    def _review(self, params: dict, status: str) -> dict:
        assignment = self._assignments.get(params["AssignmentId"])
        if assignment is None:
            return _error(
                400, "RequestError", f"no assignment {params['AssignmentId']}"
            )
        if assignment["status"] != "Submitted":
            return _error(
                400,
                "RequestError",
                f"assignment {assignment['assignment_id']} is already "
                f"{assignment['status']}",
            )
        assignment["status"] = status
        return _ok({})

    def _op_approve_assignment(self, params: dict) -> dict:
        return self._review(params, "Approved")

    def _op_reject_assignment(self, params: dict) -> dict:
        return self._review(params, "Rejected")

    # ------------------------------------------------------------------
    # assertions for tests
    # ------------------------------------------------------------------
    def assignment_statuses(self) -> Dict[str, str]:
        """assignment_id -> Submitted/Approved/Rejected, for assertions."""
        return {aid: a["status"] for aid, a in self._assignments.items()}

    def n_operations(self, operation: str) -> int:
        """How many times ``operation`` was invoked on the wire."""
        return sum(1 for op, _ in self.calls if op == operation)


def _snake(operation: str) -> str:
    """CamelCase -> snake_case, treating acronym runs (``HIT``) as one word."""
    out = []
    for index, ch in enumerate(operation):
        if (
            ch.isupper()
            and out
            and (
                operation[index - 1].islower()
                or (index + 1 < len(operation) and operation[index + 1].islower())
            )
        ):
            out.append("_")
        out.append(ch.lower())
    return "".join(out)


def _ok(payload: dict) -> dict:
    return {"status": 200, "body": json.dumps(payload, sort_keys=True)}


def _error(status: int, code: str, message: str) -> dict:
    return {
        "status": status,
        "body": json.dumps({"__type": code, "Message": message}),
    }


def _parse_question_form(xml_text: str) -> List[Tuple[str, str, str]]:
    """(question id, left text, right text) per question, in form order."""
    root = ET.fromstring(xml_text)
    questions: List[Tuple[str, str, str]] = []
    for question in root:
        if not question.tag.endswith("Question"):
            continue
        qid = ""
        texts: List[str] = []
        for child in question.iter():
            if child.tag.endswith("QuestionIdentifier"):
                qid = (child.text or "").strip()
            elif child.tag.endswith("}Text") and child.text and qid:
                texts.append(_strip_prefix(child.text))
        if qid and len(texts) >= 2:
            questions.append((qid, texts[0], texts[1]))
    return questions
