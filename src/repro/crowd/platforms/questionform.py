"""Render :class:`~repro.crowd.hit.HIT`\\ s as MTurk question payloads.

MTurk's ``CreateHIT`` takes the task UI as an XML document in the
``Question`` parameter — either a structured `QuestionForm`_ (the form the
paper's Section 6.4 campaign used: one binary selection question per pair)
or an ``HTMLQuestion`` wrapping arbitrary HTML.  Workers' answers come back
as a ``QuestionFormAnswers`` document inside each assignment.

This module is the bridge between the repo's pair/HIT model and those wire
formats: :func:`render_question_form` / :func:`render_html_question` turn a
HIT into the XML string ``CreateHIT`` wants, and :func:`parse_answer_xml`
turns an assignment's answer document back into per-pair
:class:`~repro.core.pairs.Label`\\ s.  Question identifiers are positional
(``pair-0``, ``pair-1``, ...), so decoding needs only the HIT the answers
belong to — no server-side state.

How a pair is *shown* to workers is a campaign decision, not a library
one: callers inject ``describe`` mapping each pair to the two texts to
compare (record renderings, product descriptions, citations ...).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Callable, Dict, Optional, Sequence, Tuple
from xml.sax.saxutils import escape

from ...core.pairs import Label, Pair
from ..hit import HIT

#: Schema namespaces MTurk requires on the respective documents.
QUESTIONFORM_XMLNS = (
    "http://mechanicalturk.amazonaws.com/AWSMechanicalTurkDataSchemas/"
    "2017-11-06/QuestionForm.xsd"
)
HTMLQUESTION_XMLNS = (
    "http://mechanicalturk.amazonaws.com/AWSMechanicalTurkDataSchemas/"
    "2011-11-11/HTMLQuestion.xsd"
)
ANSWERS_XMLNS = (
    "http://mechanicalturk.amazonaws.com/AWSMechanicalTurkDataSchemas/"
    "2005-10-01/QuestionFormAnswers.xsd"
)

#: Selection identifiers workers submit; mapped to labels on the way back.
SELECTION_MATCHING = "matching"
SELECTION_NON_MATCHING = "non-matching"

#: Renders a pair as the two texts the worker compares.
PairDescriber = Callable[[Pair], Tuple[str, str]]


def question_identifier(index: int) -> str:
    """The positional question id for the ``index``-th pair of a HIT."""
    return f"pair-{index}"


def _default_describe(pair: Pair) -> Tuple[str, str]:
    return (str(pair.left), str(pair.right))


def render_question_form(
    hit: HIT,
    *,
    instructions: str = "Do these two descriptions refer to the same real-world entity?",
    describe: Optional[PairDescriber] = None,
) -> str:
    """The ``QuestionForm`` XML for ``hit``: one required binary selection
    question per pair, in HIT order.

    The paper's campaign shape (Section 6.4): workers see both texts and
    pick *matching* or *non-matching*; replication and aggregation happen
    outside the form.
    """
    describe = describe or _default_describe
    parts = [f'<QuestionForm xmlns="{QUESTIONFORM_XMLNS}">']
    parts.append(
        "<Overview><Title>Entity matching</Title>"
        f"<Text>{escape(instructions)}</Text></Overview>"
    )
    for index, pair in enumerate(hit.pairs):
        left, right = describe(pair)
        parts.append(
            "<Question>"
            f"<QuestionIdentifier>{question_identifier(index)}</QuestionIdentifier>"
            "<IsRequired>true</IsRequired>"
            "<QuestionContent>"
            f"<Text>A: {escape(left)}</Text>"
            f"<Text>B: {escape(right)}</Text>"
            "</QuestionContent>"
            "<AnswerSpecification><SelectionAnswer>"
            "<StyleSuggestion>radiobutton</StyleSuggestion>"
            "<Selections>"
            "<Selection>"
            f"<SelectionIdentifier>{SELECTION_MATCHING}</SelectionIdentifier>"
            "<Text>Same entity</Text>"
            "</Selection>"
            "<Selection>"
            f"<SelectionIdentifier>{SELECTION_NON_MATCHING}</SelectionIdentifier>"
            "<Text>Different entities</Text>"
            "</Selection>"
            "</Selections>"
            "</SelectionAnswer></AnswerSpecification>"
            "</Question>"
        )
    parts.append("</QuestionForm>")
    return "".join(parts)


def render_html_question(
    hit: HIT,
    *,
    instructions: str = "Do these two descriptions refer to the same real-world entity?",
    describe: Optional[PairDescriber] = None,
    frame_height: int = 600,
) -> str:
    """The ``HTMLQuestion`` variant: the same form as self-contained HTML.

    Some requesters prefer HTML HITs for styling control; the submitted
    field names match :func:`question_identifier`, so
    :func:`parse_answer_xml` decodes either variant's answers.
    """
    describe = describe or _default_describe
    rows = []
    for index, pair in enumerate(hit.pairs):
        left, right = describe(pair)
        qid = question_identifier(index)
        rows.append(
            f"<fieldset><legend>Pair {index + 1}</legend>"
            f"<p>A: {escape(left)}</p><p>B: {escape(right)}</p>"
            f'<label><input type="radio" name="{qid}" '
            f'value="{SELECTION_MATCHING}" required> Same entity</label> '
            f'<label><input type="radio" name="{qid}" '
            f'value="{SELECTION_NON_MATCHING}"> Different entities</label>'
            "</fieldset>"
        )
    html = (
        "<!DOCTYPE html><html><body>"
        f"<p>{escape(instructions)}</p>"
        '<form name="mturk_form" method="post" id="mturk_form" '
        'action="https://www.mturk.com/mturk/externalSubmit">'
        '<input type="hidden" value="" name="assignmentId" id="assignmentId">'
        + "".join(rows)
        + '<p><input type="submit" id="submitButton" value="Submit"></p>'
        "</form></body></html>"
    )
    return (
        f'<HTMLQuestion xmlns="{HTMLQUESTION_XMLNS}">'
        f"<HTMLContent><![CDATA[{html}]]></HTMLContent>"
        f"<FrameHeight>{frame_height}</FrameHeight>"
        "</HTMLQuestion>"
    )


def render_answer_xml(selections: Dict[str, str]) -> str:
    """A ``QuestionFormAnswers`` document for ``selections`` (question id ->
    selection id) — what a worker's submitted assignment carries; used by
    the fake service and available for webhook fixtures."""
    parts = [f'<QuestionFormAnswers xmlns="{ANSWERS_XMLNS}">']
    for qid, selection in selections.items():
        parts.append(
            "<Answer>"
            f"<QuestionIdentifier>{escape(qid)}</QuestionIdentifier>"
            f"<SelectionIdentifier>{escape(selection)}</SelectionIdentifier>"
            "</Answer>"
        )
    parts.append("</QuestionFormAnswers>")
    return "".join(parts)


class AnswerParseError(ValueError):
    """An assignment's answer document could not be decoded for its HIT."""


def parse_answer_xml(xml_text: str, hit: HIT) -> Dict[Pair, Label]:
    """Decode one assignment's ``QuestionFormAnswers`` into per-pair labels.

    Raises:
        AnswerParseError: malformed XML, an unknown question identifier or
            selection, or answers that do not cover every pair of ``hit``.
    """
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise AnswerParseError(f"malformed answer XML: {exc}") from exc
    labels: Dict[Pair, Label] = {}
    for answer in root:
        if not answer.tag.endswith("Answer"):
            continue
        qid: Optional[str] = None
        selection: Optional[str] = None
        for child in answer:
            if child.tag.endswith("QuestionIdentifier"):
                qid = (child.text or "").strip()
            elif child.tag.endswith("SelectionIdentifier") or child.tag.endswith(
                "FreeText"
            ):
                selection = (child.text or "").strip()
        if qid is None or selection is None:
            raise AnswerParseError(f"answer element missing fields: {qid!r}")
        if not qid.startswith("pair-"):
            raise AnswerParseError(f"unknown question identifier {qid!r}")
        try:
            index = int(qid[len("pair-") :])
            pair = hit.pairs[index]
        except (ValueError, IndexError) as exc:
            raise AnswerParseError(
                f"question {qid!r} does not address a pair of HIT {hit.hit_id}"
            ) from exc
        if selection == SELECTION_MATCHING:
            labels[pair] = Label.MATCHING
        elif selection == SELECTION_NON_MATCHING:
            labels[pair] = Label.NON_MATCHING
        else:
            raise AnswerParseError(
                f"unknown selection {selection!r} for question {qid!r}"
            )
    missing = set(hit.pairs) - set(labels)
    if missing:
        raise AnswerParseError(
            f"answers for HIT {hit.hit_id} are missing {len(missing)} pair(s)"
        )
    return labels
