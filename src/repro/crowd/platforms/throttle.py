"""Rate limiting + retry for REST crowd backends: one shared policy.

Every live platform throttles its requester API (MTurk returns
``ThrottlingException`` well below 10 rps sustained) and every live
platform has transient 5xx weather.  Rather than letting each backend
grow its own ad-hoc sleep-and-retry, :class:`ThrottlePolicy` packages the
two standard mechanisms behind one call seam:

* a **token bucket** — ``rate`` requests/second refill, ``burst`` bucket
  capacity — smooths request spacing *before* the platform has to push
  back;
* **exponential backoff with full jitter** retries the calls the platform
  rejected anyway (throttling errors and 5xx), up to ``max_attempts``.

The policy is transport-agnostic: :meth:`call` runs any zero-argument
callable whose response a ``should_retry`` predicate can classify, so the
same instance can front MTurk today and any other REST backend tomorrow.
Time is injected (``clock`` + ``sleep``), so tests and cassette replays
run instantly; jitter comes from a seeded RNG, so retry timing is
reproducible.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Optional, TypeVar

T = TypeVar("T")


class RetryBudgetExceededError(RuntimeError):
    """A request kept failing retryably past ``max_attempts``."""


class ThrottlePolicy:
    """Token-bucket pacing + exponential-backoff retry for REST calls.

    Args:
        rate: sustained requests per second (token refill rate).
        burst: bucket capacity — how many requests may go out back-to-back
            after an idle stretch.
        max_attempts: total tries per call (first attempt + retries).
        base_backoff_s: backoff before the first retry; doubles per retry.
        max_backoff_s: backoff ceiling.
        clock: time source (seconds; injectable for tests/replay).
        sleep: how to wait (injectable; tests pass a no-op or a
            virtual-clock advance).
        seed: RNG seed for the full-jitter draw.
    """

    def __init__(
        self,
        *,
        rate: float = 4.0,
        burst: int = 8,
        max_attempts: int = 5,
        base_backoff_s: float = 0.5,
        max_backoff_s: float = 30.0,
        clock: Optional[Callable[[], float]] = None,
        sleep: Optional[Callable[[float], None]] = None,
        seed: int = 0,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be at least 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if base_backoff_s < 0 or max_backoff_s < base_backoff_s:
            raise ValueError("need 0 <= base_backoff_s <= max_backoff_s")
        self._rate = rate
        self._burst = burst
        self._max_attempts = max_attempts
        self._base_backoff_s = base_backoff_s
        self._max_backoff_s = max_backoff_s
        self._clock = clock if clock is not None else time.monotonic
        self._sleep = sleep if sleep is not None else time.sleep
        self._rng = random.Random(seed)
        self._tokens = float(burst)
        self._refilled_at = self._clock()
        #: Diagnostics for reports and tests.
        self.n_calls = 0
        self.n_retries = 0
        self.waited_s = 0.0

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(now - self._refilled_at, 0.0)
        self._tokens = min(self._tokens + elapsed * self._rate, float(self._burst))
        self._refilled_at = now

    def acquire(self) -> None:
        """Take one token, sleeping until the bucket refills if empty."""
        self._refill()
        if self._tokens < 1.0:
            wait = (1.0 - self._tokens) / self._rate
            self.waited_s += wait
            self._sleep(wait)
            self._refill()
            # Injected clocks may not advance on sleep; never go negative.
            self._tokens = max(self._tokens, 1.0)
        self._tokens -= 1.0

    def backoff_s(self, retry_index: int) -> float:
        """Full-jitter exponential backoff before the ``retry_index``-th retry."""
        ceiling = min(
            self._base_backoff_s * (2.0**retry_index), self._max_backoff_s
        )
        return self._rng.uniform(0.0, ceiling)

    def call(
        self,
        fn: Callable[[], T],
        *,
        should_retry: Callable[[T], bool],
        describe: str = "request",
    ) -> T:
        """Run ``fn`` under pacing + retry; returns its first acceptable result.

        ``should_retry`` classifies a *returned* response (throttled / 5xx
        responses come back as values from REST transports, not
        exceptions).  Exceptions from ``fn`` propagate immediately: a
        broken transport is not platform weather.

        Raises:
            RetryBudgetExceededError: every attempt came back retryable.
        """
        last: Optional[T] = None
        for attempt in range(self._max_attempts):
            self.acquire()
            self.n_calls += 1
            last = fn()
            if not should_retry(last):
                return last
            if attempt + 1 < self._max_attempts:
                self.n_retries += 1
                delay = self.backoff_s(attempt)
                self.waited_s += delay
                self._sleep(delay)
        raise RetryBudgetExceededError(
            f"{describe} still failing after {self._max_attempts} attempts "
            f"(last response: {last!r})"
        )
