"""Worker models: how simulated crowd workers answer pair-labeling tasks.

The paper's simulation sections assume perfectly correct answers; the AMT
experiments (Section 6.4) face real worker error, mitigated by qualification
tests and 3-way majority voting.  This module provides worker behaviours from
perfect to likelihood-aware-noisy so both regimes can be simulated.

Two error regimes matter for reproducing Table 2:

* *idiosyncratic* — each worker errs independently; replication + majority
  voting suppress this kind of noise;
* *systematic* — the pair itself is confusing ("iPad 2" vs a refurbished
  listing), so most workers give the same wrong answer and majority voting
  cannot help.  Systematic errors are what transitive deduction amplifies:
  one wrong consensus on a representative pair cascades into every label
  deduced from it, which is exactly the quality-loss mechanism the paper
  reports on the Cora dataset.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Optional, Protocol, runtime_checkable

from ..core.pairs import Label, Pair


def _pair_unit_interval(pair: Pair, salt: int) -> float:
    """A deterministic uniform-[0,1) value per (pair, salt) — the shared coin
    behind systematic errors."""
    digest = hashlib.md5(f"{salt}:{pair.left!r}|{pair.right!r}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@runtime_checkable
class WorkerModel(Protocol):
    """Strategy deciding what a worker answers for one pair."""

    def answer(self, pair: Pair, true_label: Label, likelihood: float) -> Label:
        """The worker's answer given the truth and the machine likelihood.

        ``likelihood`` is the matcher's match probability for the pair —
        ambiguity-aware models use it as a difficulty proxy (pairs near 0.5
        are genuinely harder for humans too).
        """
        ...  # pragma: no cover - protocol


class PerfectWorker:
    """Always answers correctly — the paper's simulation assumption."""

    def answer(self, pair: Pair, true_label: Label, likelihood: float) -> Label:
        return true_label


class BernoulliWorker:
    """Errs independently with probability ``1 - accuracy`` on every pair."""

    def __init__(self, accuracy: float, seed: int = 0) -> None:
        if not 0.0 <= accuracy <= 1.0:
            raise ValueError(f"accuracy must be in [0, 1], got {accuracy}")
        self.accuracy = accuracy
        self._rng = random.Random(seed)

    def answer(self, pair: Pair, true_label: Label, likelihood: float) -> Label:
        if self._rng.random() < self.accuracy:
            return true_label
        return true_label.negate()


class AmbiguityAwareWorker:
    """Error rate grows with pair ambiguity, optionally biased toward
    false positives.

    A pair whose machine likelihood sits near 0.5 is typically ambiguous for
    humans as well ("iPad 2" vs "iPad 3rd Gen refurbished"); a pair near 0 or
    1 is easy.  The error probability interpolates between ``base_error`` (at
    likelihood 0 or 1) and ``ambiguous_error`` (at likelihood 0.5):

        error(l) = base_error + (ambiguous_error - base_error) * (1 - 2|l - 0.5|)

    ``false_positive_bias`` multiplies the error rate on truly non-matching
    pairs: crowds confronted with two similar-looking records over-report
    "matching" (the paper's Cora run shows this — 68.8 % precision even
    without transitivity).  ``false_negative_bias`` is the mirror image for
    truly matching pairs: crowds miss matches whose listings look different
    (the paper's Abt-Buy run: 68.9 % recall at 95.7 % precision).
    """

    def __init__(
        self,
        base_error: float = 0.02,
        ambiguous_error: float = 0.25,
        false_positive_bias: float = 1.0,
        false_negative_bias: float = 1.0,
        systematic_fraction: float = 0.0,
        salt: int = 0,
        seed: int = 0,
    ) -> None:
        """Args:
            systematic_fraction: share of the error probability realised as
                a *pair-intrinsic* error — decided by a coin shared by every
                worker constructed with the same ``salt``, so majority voting
                cannot out-vote it.  The remainder stays idiosyncratic.
            salt: identifies the crowd population's shared confusions.
        """
        for name, value in (("base_error", base_error), ("ambiguous_error", ambiguous_error)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if false_positive_bias < 0 or false_negative_bias < 0:
            raise ValueError("bias multipliers must be non-negative")
        if not 0.0 <= systematic_fraction <= 1.0:
            raise ValueError("systematic_fraction must be in [0, 1]")
        self.base_error = base_error
        self.ambiguous_error = ambiguous_error
        self.false_positive_bias = false_positive_bias
        self.false_negative_bias = false_negative_bias
        self.systematic_fraction = systematic_fraction
        self.salt = salt
        self._rng = random.Random(seed)

    def error_probability(self, likelihood: float, true_label: Label = Label.MATCHING) -> float:
        ambiguity = 1.0 - 2.0 * abs(likelihood - 0.5)
        error = self.base_error + (self.ambiguous_error - self.base_error) * ambiguity
        if true_label is Label.NON_MATCHING:
            error *= self.false_positive_bias
        else:
            error *= self.false_negative_bias
        return min(error, 0.95)

    def answer(self, pair: Pair, true_label: Label, likelihood: float) -> Label:
        error = self.error_probability(likelihood, true_label)
        systematic = error * self.systematic_fraction
        if _pair_unit_interval(pair, self.salt) < systematic:
            return true_label.negate()
        idiosyncratic = error * (1.0 - self.systematic_fraction)
        if self._rng.random() < idiosyncratic:
            return true_label.negate()
        return true_label


class LikelihoodAwareWorker(AmbiguityAwareWorker):
    """A worker whose error rate is driven by the pair's machine likelihood.

    This is :class:`AmbiguityAwareWorker` under the name the aggregation
    experiments use: the noise model is parameterised by the matcher's
    likelihood (pairs near 0.5 are hard, pairs near 0 or 1 are easy), which
    is exactly the signal the quality-aware aggregation layer must cope
    with — workers are *heteroscedastic*, so a single global accuracy number
    under-describes them.  The subclass exists so experiment code reads as
    intended; behaviour is identical.
    """


@dataclass(frozen=True)
class QualificationTest:
    """The paper's quality-control gate: three specified pairs a worker must
    label correctly before doing real HITs (Section 6.4)."""

    n_questions: int = 3

    def passes(self, worker: WorkerModel, seed: int = 0) -> bool:
        """Run the test: unambiguous probe pairs (likelihood 0 or 1).

        A perfect worker always passes; a worker with accuracy ``a`` passes
        with probability roughly ``a ** n_questions``.
        """
        rng = random.Random(seed)
        for question in range(self.n_questions):
            truth = Label.MATCHING if rng.random() < 0.5 else Label.NON_MATCHING
            probe = Pair(f"__qual_{seed}_{question}_a", f"__qual_{seed}_{question}_b")
            easy_likelihood = 1.0 if truth is Label.MATCHING else 0.0
            if worker.answer(probe, truth, easy_likelihood) is not truth:
                return False
        return True


@dataclass
class Worker:
    """A platform worker: a behaviour model plus a work-speed multiplier.

    Attributes:
        worker_id: platform-unique id.
        model: answering behaviour.
        speed: relative working speed (2.0 finishes assignments twice as
            fast as the latency model's baseline).
    """

    worker_id: int
    model: WorkerModel
    speed: float = 1.0

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ValueError(f"speed must be positive, got {self.speed}")

    def answer(self, pair: Pair, true_label: Label, likelihood: float) -> Label:
        return self.model.answer(pair, true_label, likelihood)


def make_worker_pool(
    n_workers: int,
    accuracy: Optional[float] = None,
    ambiguity_aware: bool = False,
    base_error: float = 0.02,
    ambiguous_error: float = 0.25,
    false_positive_bias: float = 1.0,
    false_negative_bias: float = 1.0,
    systematic_fraction: float = 0.0,
    qualification: Optional[QualificationTest] = None,
    seed: int = 0,
) -> list[Worker]:
    """Build a pool of workers with per-worker RNG streams.

    Args:
        n_workers: pool size (before qualification filtering).
        accuracy: if given, workers are :class:`BernoulliWorker` with this
            accuracy; otherwise perfect unless ``ambiguity_aware``.
        ambiguity_aware: use :class:`AmbiguityAwareWorker` instead.
        false_positive_bias: error multiplier on truly non-matching pairs
            (ambiguity-aware workers only).
        false_negative_bias: error multiplier on truly matching pairs
            (ambiguity-aware workers only).
        systematic_fraction: share of errors that are pair-intrinsic and
            shared by the whole pool (majority voting cannot remove them).
        qualification: if given, only workers that pass are included.
        seed: master seed; worker ``i`` uses ``seed * 10007 + i``.

    Returns:
        The qualified workers with speeds drawn from a modest spread.
    """
    if accuracy is not None and ambiguity_aware:
        raise ValueError("choose either a fixed accuracy or ambiguity_aware, not both")
    rng = random.Random(seed)
    pool: list[Worker] = []
    for i in range(n_workers):
        worker_seed = seed * 10007 + i
        if ambiguity_aware:
            model: WorkerModel = AmbiguityAwareWorker(
                base_error=base_error,
                ambiguous_error=ambiguous_error,
                false_positive_bias=false_positive_bias,
                false_negative_bias=false_negative_bias,
                systematic_fraction=systematic_fraction,
                salt=seed,
                seed=worker_seed,
            )
        elif accuracy is not None:
            model = BernoulliWorker(accuracy=accuracy, seed=worker_seed)
        else:
            model = PerfectWorker()
        if qualification is not None and not qualification.passes(model, seed=worker_seed):
            continue
        speed = rng.uniform(0.6, 1.6)
        pool.append(Worker(worker_id=i, model=model, speed=speed))
    return pool
