"""Assignment review policies: approve/reject as a runtime decision.

On a live platform, collecting answers is only half the loop — every
submitted assignment must also be *reviewed* (approved, releasing payment,
or rejected).  MTurk auto-approves after a requester-configured delay, but
a campaign that never reviews leaves workers unpaid for days and tanks the
requester's reputation; review therefore belongs in the campaign runtime,
next to budget and timeout enforcement, not buried in a backend.

:class:`~repro.engine.async_dispatch.CrowdRuntime` accepts a
:class:`ReviewPolicy` and, for every completion it applies, forwards the
policy's :class:`ReviewDecision`\\ s to the platform client (clients
without a review surface — the simulator — silently skip it).  The stock
:class:`ApproveAll` is what the paper's campaign did: pay everyone whose
answers came back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, Sequence, Tuple, runtime_checkable

from ..core.pairs import Pair
from .platform import HITCompletion


@dataclass(frozen=True)
class ReviewDecision:
    """One approve/reject verdict.

    Attributes:
        assignment_id: the platform assignment to review; ``None`` applies
            the verdict to every submitted assignment of the HIT (the
            common case — the client-side completion is an aggregate and
            does not always know platform assignment ids).
        approve: approve (pay) or reject.
        feedback: requester feedback attached to the verdict.
        escalate_pairs: pairs whose aggregated label the policy does not
            trust; the runtime withholds these labels and re-issues the
            pairs for fresh assignments instead of applying them.
            Escalation never implies rejection — workers are still paid.
    """

    assignment_id: Optional[str] = None
    approve: bool = True
    feedback: str = ""
    escalate_pairs: Tuple[Pair, ...] = ()


@runtime_checkable
class ReviewPolicy(Protocol):
    """Decides the review verdicts for one applied HIT completion."""

    def review(self, completion: HITCompletion) -> Sequence[ReviewDecision]:
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class ApproveAll:
    """Approve every submitted assignment (the paper's campaign behaviour)."""

    feedback: str = "Thank you!"

    def review(self, completion: HITCompletion) -> Sequence[ReviewDecision]:
        return (ReviewDecision(assignment_id=None, approve=True, feedback=self.feedback),)


@dataclass(frozen=True)
class EscalateOnLowConfidence:
    """Approve everyone, but escalate pairs the votes did not settle.

    A tie-broken aggregation is a coin flip wearing a label; a low-margin
    one is barely better.  This policy reads the per-pair
    :class:`~repro.crowd.aggregation.VoteSummary` diagnostics attached to a
    completion and asks the runtime to *re-issue* any pair whose aggregation
    was tie-broken or whose confidence (winning share of the vote weight)
    falls below ``min_confidence``, instead of accepting the dubious label.
    The runtime bounds re-asks per pair (see
    ``CrowdRuntime``'s ``max_escalations``), so a persistently split crowd
    eventually settles for the tie-break rather than looping forever.

    Completions without vote diagnostics (bare-label sources) are approved
    unchanged — there is nothing to judge confidence by.

    Attributes:
        min_confidence: escalate below this winning share, in [0.5, 1].
        feedback: requester feedback attached to the approval.
    """

    min_confidence: float = 0.75
    feedback: str = "Thank you!"

    def __post_init__(self) -> None:
        if not 0.5 <= self.min_confidence <= 1.0:
            raise ValueError(
                f"min_confidence must be in [0.5, 1], got {self.min_confidence}"
            )

    def review(self, completion: HITCompletion) -> Sequence[ReviewDecision]:
        escalate = tuple(
            pair
            for pair, summary in completion.summaries.items()
            if summary.tie_broken or summary.confidence < self.min_confidence
        )
        return (
            ReviewDecision(
                assignment_id=None,
                approve=True,
                feedback=self.feedback,
                escalate_pairs=escalate,
            ),
        )
