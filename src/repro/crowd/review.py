"""Assignment review policies: approve/reject as a runtime decision.

On a live platform, collecting answers is only half the loop — every
submitted assignment must also be *reviewed* (approved, releasing payment,
or rejected).  MTurk auto-approves after a requester-configured delay, but
a campaign that never reviews leaves workers unpaid for days and tanks the
requester's reputation; review therefore belongs in the campaign runtime,
next to budget and timeout enforcement, not buried in a backend.

:class:`~repro.engine.async_dispatch.CrowdRuntime` accepts a
:class:`ReviewPolicy` and, for every completion it applies, forwards the
policy's :class:`ReviewDecision`\\ s to the platform client (clients
without a review surface — the simulator — silently skip it).  The stock
:class:`ApproveAll` is what the paper's campaign did: pay everyone whose
answers came back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, Sequence, runtime_checkable

from .platform import HITCompletion


@dataclass(frozen=True)
class ReviewDecision:
    """One approve/reject verdict.

    Attributes:
        assignment_id: the platform assignment to review; ``None`` applies
            the verdict to every submitted assignment of the HIT (the
            common case — the client-side completion is an aggregate and
            does not always know platform assignment ids).
        approve: approve (pay) or reject.
        feedback: requester feedback attached to the verdict.
    """

    assignment_id: Optional[str] = None
    approve: bool = True
    feedback: str = ""


@runtime_checkable
class ReviewPolicy(Protocol):
    """Decides the review verdicts for one applied HIT completion."""

    def review(self, completion: HITCompletion) -> Sequence[ReviewDecision]:
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class ApproveAll:
    """Approve every submitted assignment (the paper's campaign behaviour)."""

    feedback: str = "Thank you!"

    def review(self, completion: HITCompletion) -> Sequence[ReviewDecision]:
        return (ReviewDecision(assignment_id=None, approve=True, feedback=self.feedback),)
