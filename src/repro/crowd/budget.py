"""Cost accounting for crowdsourcing campaigns.

Paper Section 6.4: "We paid workers 2 cents for completing each HIT ...
each HIT was replicated into three assignments."  The money cost of a
campaign is therefore ``n_hits * n_assignments * price_per_assignment``,
which is why minimising crowdsourced pairs (hence HITs) is the paper's
objective.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

DEFAULT_PRICE_PER_ASSIGNMENT = 0.02  # dollars; the paper's 2 cents


@dataclass(frozen=True)
class CostModel:
    """Pricing of published work.

    Attributes:
        price_per_assignment: dollars paid for one completed assignment.
    """

    price_per_assignment: float = DEFAULT_PRICE_PER_ASSIGNMENT

    def __post_init__(self) -> None:
        if self.price_per_assignment < 0:
            raise ValueError("price_per_assignment must be non-negative")

    def assignment_cost(self, n_assignments: int) -> float:
        """Dollars for ``n_assignments`` completed assignments."""
        if n_assignments < 0:
            raise ValueError("n_assignments must be non-negative")
        return n_assignments * self.price_per_assignment

    def hit_cost(self, n_hits: int, assignments_per_hit: int) -> float:
        """Dollars for ``n_hits`` HITs each replicated ``assignments_per_hit``
        times."""
        return self.assignment_cost(n_hits * assignments_per_hit)


class BudgetExceededError(RuntimeError):
    """Submitting more work would overrun the campaign's budget policy."""


@dataclass(frozen=True)
class BudgetPolicy:
    """Spending cap enforced by the crowd runtime at submission time.

    The pre-async campaigns could only cap spend by construction (fewer
    candidate pairs); against a live platform the cap must be a *runtime*
    policy checked before every submission, because deduction savings —
    hence the final spend — are only discovered as answers arrive.

    Attributes:
        max_cost: dollar ceiling for the campaign (None = unlimited).
        max_assignments: assignment-count ceiling (None = unlimited).
        model: pricing used to convert assignments to dollars.
    """

    max_cost: Optional[float] = None
    max_assignments: Optional[int] = None
    model: CostModel = field(default_factory=lambda: CostModel())

    def __post_init__(self) -> None:
        if self.max_cost is not None and self.max_cost < 0:
            raise ValueError("max_cost must be non-negative")
        if self.max_assignments is not None and self.max_assignments < 0:
            raise ValueError("max_assignments must be non-negative")

    def authorize(self, assignments_committed: int, new_assignments: int) -> int:
        """Approve committing ``new_assignments`` more; returns the new total.

        Raises:
            BudgetExceededError: if the submission would overrun either cap.
        """
        total = assignments_committed + new_assignments
        if self.max_assignments is not None and total > self.max_assignments:
            raise BudgetExceededError(
                f"submitting {new_assignments} assignments would commit {total}, "
                f"exceeding the cap of {self.max_assignments}"
            )
        cost = self.model.assignment_cost(total)
        if self.max_cost is not None and cost > self.max_cost + 1e-9:
            raise BudgetExceededError(
                f"submitting {new_assignments} assignments would commit "
                f"${cost:.2f}, exceeding the budget of ${self.max_cost:.2f}"
            )
        return total


@dataclass
class CostLedger:
    """Running total of spend during a simulated campaign."""

    model: CostModel
    assignments_paid: int = 0

    def charge_assignment(self) -> float:
        """Record one completed assignment; returns its cost."""
        self.assignments_paid += 1
        return self.model.price_per_assignment

    @property
    def total(self) -> float:
        """Dollars spent so far."""
        return self.model.assignment_cost(self.assignments_paid)
