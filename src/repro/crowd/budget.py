"""Cost accounting for crowdsourcing campaigns.

Paper Section 6.4: "We paid workers 2 cents for completing each HIT ...
each HIT was replicated into three assignments."  The money cost of a
campaign is therefore ``n_hits * n_assignments * price_per_assignment``,
which is why minimising crowdsourced pairs (hence HITs) is the paper's
objective.
"""

from __future__ import annotations

from dataclasses import dataclass

DEFAULT_PRICE_PER_ASSIGNMENT = 0.02  # dollars; the paper's 2 cents


@dataclass(frozen=True)
class CostModel:
    """Pricing of published work.

    Attributes:
        price_per_assignment: dollars paid for one completed assignment.
    """

    price_per_assignment: float = DEFAULT_PRICE_PER_ASSIGNMENT

    def __post_init__(self) -> None:
        if self.price_per_assignment < 0:
            raise ValueError("price_per_assignment must be non-negative")

    def assignment_cost(self, n_assignments: int) -> float:
        """Dollars for ``n_assignments`` completed assignments."""
        if n_assignments < 0:
            raise ValueError("n_assignments must be non-negative")
        return n_assignments * self.price_per_assignment

    def hit_cost(self, n_hits: int, assignments_per_hit: int) -> float:
        """Dollars for ``n_hits`` HITs each replicated ``assignments_per_hit``
        times."""
        return self.assignment_cost(n_hits * assignments_per_hit)


@dataclass
class CostLedger:
    """Running total of spend during a simulated campaign."""

    model: CostModel
    assignments_paid: int = 0

    def charge_assignment(self) -> float:
        """Record one completed assignment; returns its cost."""
        self.assignments_paid += 1
        return self.model.price_per_assignment

    @property
    def total(self) -> float:
        """Dollars spent so far."""
        return self.model.assignment_cost(self.assignments_paid)
