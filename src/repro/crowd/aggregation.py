"""Answer aggregation: turning replicated assignments into one label.

Paper Section 6.4: "each HIT was replicated into three assignments ... the
final decision for each pair was made by majority vote."
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, List, Sequence

from ..core.pairs import Label, Pair
from .hit import Assignment


def majority_vote(answers: Sequence[Label], tie_break: Label = Label.NON_MATCHING) -> Label:
    """The label most workers gave; ties fall back to ``tie_break``.

    The paper uses an odd replication factor (3) so ties cannot occur there;
    the tie-break default is conservative (prefer not asserting a match).

    Raises:
        ValueError: when no answers were given.
    """
    if not answers:
        raise ValueError("cannot aggregate zero answers")
    counts = Counter(answers)
    matching = counts.get(Label.MATCHING, 0)
    non_matching = counts.get(Label.NON_MATCHING, 0)
    if matching > non_matching:
        return Label.MATCHING
    if non_matching > matching:
        return Label.NON_MATCHING
    return tie_break


def unanimous_or(answers: Sequence[Label], fallback: Label) -> Label:
    """Strict aggregation: unanimous answers win, anything else falls back.

    Raises:
        ValueError: when no answers were given.
    """
    if not answers:
        raise ValueError("cannot aggregate zero answers")
    first = answers[0]
    if all(answer is first for answer in answers):
        return first
    return fallback


def aggregate_assignments(
    assignments: Iterable[Assignment],
    tie_break: Label = Label.NON_MATCHING,
) -> dict[Pair, Label]:
    """Majority-vote every pair across a HIT's completed assignments.

    All assignments must belong to the same HIT (same pair set).

    Raises:
        ValueError: when assignments is empty or covers inconsistent HITs.
    """
    assignments = list(assignments)
    if not assignments:
        raise ValueError("cannot aggregate zero assignments")
    pair_sets = {frozenset(a.hit.pairs) for a in assignments}
    if len(pair_sets) != 1:
        raise ValueError("assignments cover different HITs")
    aggregated: dict[Pair, Label] = {}
    for pair in assignments[0].hit.pairs:
        votes: List[Label] = [a.answers[pair] for a in assignments]
        aggregated[pair] = majority_vote(votes, tie_break=tie_break)
    return aggregated


def agreement_rate(assignments: Sequence[Assignment]) -> float:
    """Fraction of pairs on which all assignments agree — a cheap quality
    signal used by the experiment reports."""
    assignments = list(assignments)
    if not assignments:
        raise ValueError("cannot compute agreement over zero assignments")
    pairs = assignments[0].hit.pairs
    unanimous = 0
    for pair in pairs:
        votes = {a.answers[pair] for a in assignments}
        if len(votes) == 1:
            unanimous += 1
    return unanimous / len(pairs)
