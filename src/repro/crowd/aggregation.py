"""Answer aggregation: turning replicated assignments into one label.

Paper Section 6.4: "each HIT was replicated into three assignments ... the
final decision for each pair was made by majority vote."

Two aggregation strategies live here:

* **Flat majority** (:func:`majority_vote`, :func:`aggregate_assignments`) —
  the paper's scheme: every worker's answer counts equally.
* **Quality-aware weighted majority** (:class:`WeightedAggregation`) — each
  worker's vote is weighted by the log-odds of their estimated accuracy,
  maintained online by a :class:`WorkerAccuracyTracker` from gold questions
  (pairs with known labels, cf. ``repro.crowd.worker.QualificationTest``) and
  agreement history.  With uniform accuracy estimates the weighted scheme
  reduces exactly to flat majority.

Both expose per-pair :class:`VoteSummary` records carrying the vote margin
and a confidence score, so review policies (and operators) can distinguish a
3-0 consensus from a coin-flip tie-break instead of receiving a bare label.

Missing answers are *abstentions*: a worker who abandoned a HIT mid-way, or
a drained leftover completion from an expired HIT whose pair set has since
shrunk, contributes votes only for the pairs it actually answered.  Pairs
whose vote count falls below the quorum are reported explicitly (strict
mode raises :class:`QuorumError`; lenient mode drops them so the runtime can
re-issue) — never a bare ``KeyError``.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.pairs import Label, Pair
from .hit import Assignment

#: Default clamp for estimated worker accuracy: keeps log-odds weights finite
#: and stops a run of lucky gold answers from giving one worker veto power.
MIN_TRACKED_ACCURACY = 0.05
MAX_TRACKED_ACCURACY = 0.95


class QuorumError(ValueError):
    """Raised when a pair has fewer votes than the required quorum.

    Attributes:
        pairs: the under-quorum pairs and their observed vote counts.
    """

    def __init__(self, pairs: Mapping[Pair, int], min_votes: int) -> None:
        self.pairs = dict(pairs)
        self.min_votes = min_votes
        listing = ", ".join(
            f"{pair!r} ({count} vote{'s' if count != 1 else ''})"
            for pair, count in sorted(self.pairs.items(), key=lambda kv: repr(kv[0]))
        )
        super().__init__(
            f"quorum not met (need >= {min_votes} votes per pair): {listing}; "
            "workers abstained on these pairs — re-issue them or aggregate "
            "with strict=False to drop them"
        )


@dataclass(frozen=True)
class VoteSummary:
    """The outcome of aggregating one pair's votes.

    Attributes:
        label: the aggregated label.
        matching_weight: total vote weight behind MATCHING (vote count for
            flat majority).
        non_matching_weight: total vote weight behind NON_MATCHING.
        n_votes: number of answers cast for this pair.
        n_abstentions: assignments that covered the HIT but not this pair.
        tie_broken: True when the two sides tied exactly and ``label`` is the
            tie-break fallback, not a worker consensus.
        margin: winning weight minus losing weight (0 on a tie).
        confidence: winning share of the total weight, in [0.5, 1].  A 3-0
            consensus scores 1.0; a tie scores 0.5.
    """

    label: Label
    matching_weight: float
    non_matching_weight: float
    n_votes: int
    n_abstentions: int = 0
    tie_broken: bool = False

    @property
    def margin(self) -> float:
        return abs(self.matching_weight - self.non_matching_weight)

    @property
    def confidence(self) -> float:
        total = self.matching_weight + self.non_matching_weight
        if total <= 0:
            return 0.5
        return max(self.matching_weight, self.non_matching_weight) / total


def majority_vote(answers: Sequence[Label], tie_break: Label = Label.NON_MATCHING) -> Label:
    """The label most workers gave; ties fall back to ``tie_break``.

    The paper uses an odd replication factor (3) so ties cannot occur there;
    the tie-break default is conservative (prefer not asserting a match).
    Callers who need to *see* the tie should use :func:`summarize_votes`.

    Raises:
        ValueError: when no answers were given.
    """
    return summarize_votes(answers, tie_break=tie_break).label


def summarize_votes(
    answers: Sequence[Label],
    tie_break: Label = Label.NON_MATCHING,
    n_abstentions: int = 0,
    weights: Optional[Sequence[float]] = None,
) -> VoteSummary:
    """Aggregate one pair's answers into a :class:`VoteSummary`.

    With ``weights`` (parallel to ``answers``) this is a weighted majority;
    without, every answer counts 1.0 and the result is the flat majority.

    Raises:
        ValueError: when no answers were given, or weights do not line up.
    """
    if not answers:
        raise ValueError("cannot aggregate zero answers")
    if weights is None:
        counts = Counter(answers)
        matching = float(counts.get(Label.MATCHING, 0))
        non_matching = float(counts.get(Label.NON_MATCHING, 0))
    else:
        if len(weights) != len(answers):
            raise ValueError(
                f"{len(answers)} answers but {len(weights)} weights"
            )
        matching = sum(w for a, w in zip(answers, weights) if a is Label.MATCHING)
        non_matching = sum(w for a, w in zip(answers, weights) if a is Label.NON_MATCHING)
    if matching > non_matching:
        label, tie_broken = Label.MATCHING, False
    elif non_matching > matching:
        label, tie_broken = Label.NON_MATCHING, False
    else:
        label, tie_broken = tie_break, True
    return VoteSummary(
        label=label,
        matching_weight=matching,
        non_matching_weight=non_matching,
        n_votes=len(answers),
        n_abstentions=n_abstentions,
        tie_broken=tie_broken,
    )


def unanimous_or(answers: Sequence[Label], fallback: Label) -> Label:
    """Strict aggregation: unanimous answers win, anything else falls back.

    Raises:
        ValueError: when no answers were given.
    """
    if not answers:
        raise ValueError("cannot aggregate zero answers")
    first = answers[0]
    if all(answer is first for answer in answers):
        return first
    return fallback


def _check_same_hit(assignments: List[Assignment]) -> Tuple[Pair, ...]:
    if not assignments:
        raise ValueError("cannot aggregate zero assignments")
    pair_sets = {frozenset(a.hit.pairs) for a in assignments}
    if len(pair_sets) != 1:
        raise ValueError("assignments cover different HITs")
    return assignments[0].hit.pairs


def summarize_assignments(
    assignments: Iterable[Assignment],
    tie_break: Label = Label.NON_MATCHING,
    min_votes: int = 1,
    strict: bool = True,
    worker_weights: Optional[Mapping[int, float]] = None,
) -> Dict[Pair, VoteSummary]:
    """Aggregate every pair of a HIT across its completed assignments.

    Missing answers count as abstentions; a pair's quorum is the number of
    answers actually cast for it.  All assignments must belong to the same
    HIT (same pair set).

    Args:
        assignments: the HIT's completed assignments.
        tie_break: label applied on an exact tie.
        min_votes: per-pair quorum; pairs with fewer answers fail it.
        strict: raise :class:`QuorumError` on quorum failure (True) or drop
            the under-quorum pairs from the result so the caller can re-issue
            them (False).
        worker_weights: optional per-worker vote weight (weighted majority);
            absent workers default to 1.0.

    Raises:
        ValueError: when assignments is empty or covers inconsistent HITs.
        QuorumError: under ``strict`` when any pair misses the quorum.
    """
    assignments = list(assignments)
    pairs = _check_same_hit(assignments)
    summaries: Dict[Pair, VoteSummary] = {}
    under_quorum: Dict[Pair, int] = {}
    for pair in pairs:
        votes: List[Label] = []
        weights: List[float] = []
        abstentions = 0
        for assignment in assignments:
            answer = assignment.answers.get(pair)
            if answer is None:
                abstentions += 1
                continue
            votes.append(answer)
            if worker_weights is not None:
                weights.append(worker_weights.get(assignment.worker_id, 1.0))
        if len(votes) < max(min_votes, 1):
            under_quorum[pair] = len(votes)
            continue
        summaries[pair] = summarize_votes(
            votes,
            tie_break=tie_break,
            n_abstentions=abstentions,
            weights=weights if worker_weights is not None else None,
        )
    if under_quorum and strict:
        raise QuorumError(under_quorum, max(min_votes, 1))
    return summaries


def aggregate_assignments(
    assignments: Iterable[Assignment],
    tie_break: Label = Label.NON_MATCHING,
    min_votes: int = 1,
    strict: bool = True,
) -> dict[Pair, Label]:
    """Majority-vote every pair across a HIT's completed assignments.

    All assignments must belong to the same HIT (same pair set).  Missing
    answers are abstentions (see module docstring); under-quorum pairs raise
    a clear :class:`QuorumError` (or are dropped with ``strict=False``).

    Raises:
        ValueError: when assignments is empty or covers inconsistent HITs.
        QuorumError: under ``strict`` when any pair misses the quorum.
    """
    summaries = summarize_assignments(
        assignments, tie_break=tie_break, min_votes=min_votes, strict=strict
    )
    return {pair: summary.label for pair, summary in summaries.items()}


def agreement_rate(assignments: Sequence[Assignment]) -> float:
    """Fraction of answered pairs on which all cast votes agree — a cheap
    quality signal used by the experiment reports.

    Pairs nobody answered are excluded from the denominator; abstentions on
    an otherwise-answered pair do not break unanimity.

    Raises:
        ValueError: over zero assignments, or when no pair has any answer.
    """
    assignments = list(assignments)
    if not assignments:
        raise ValueError("cannot compute agreement over zero assignments")
    pairs = assignments[0].hit.pairs
    unanimous = 0
    answered = 0
    for pair in pairs:
        votes = {a.answers[pair] for a in assignments if pair in a.answers}
        if not votes:
            continue
        answered += 1
        if len(votes) == 1:
            unanimous += 1
    if not answered:
        raise ValueError("no pair has any answer to agree on")
    return unanimous / answered


# ----------------------------------------------------------------------
# quality-aware aggregation
# ----------------------------------------------------------------------
class WorkerAccuracyTracker:
    """Online per-worker accuracy estimate from gold questions and agreement.

    A Beta-style pseudo-count model: every worker starts at
    ``prior_accuracy`` backed by ``prior_strength`` pseudo-observations, and
    each observed outcome shifts the estimate.  Gold questions (pairs whose
    true label is known, e.g. qualification probes) count with full weight;
    agreement with the aggregated consensus is a noisier signal and counts
    with ``agreement_weight``.

    Estimates are clamped to ``[min_accuracy, max_accuracy]`` so log-odds
    vote weights stay finite and no worker earns veto power from a short
    lucky streak.  **Caveat:** the agreement signal is circular by
    construction — a worker who agrees with a *wrong* majority is credited —
    so estimates are only as good as the crowd on pairs without gold; seed
    campaigns with gold probes before trusting the weights.
    """

    STATE_VERSION = 1

    def __init__(
        self,
        prior_accuracy: float = 0.7,
        prior_strength: float = 8.0,
        agreement_weight: float = 0.5,
        min_accuracy: float = MIN_TRACKED_ACCURACY,
        max_accuracy: float = MAX_TRACKED_ACCURACY,
    ) -> None:
        if not 0.0 < prior_accuracy < 1.0:
            raise ValueError(f"prior_accuracy must be in (0, 1), got {prior_accuracy}")
        if prior_strength <= 0:
            raise ValueError(f"prior_strength must be positive, got {prior_strength}")
        if not 0.0 < min_accuracy < max_accuracy < 1.0:
            raise ValueError(
                f"need 0 < min_accuracy < max_accuracy < 1, got "
                f"[{min_accuracy}, {max_accuracy}]"
            )
        self.prior_accuracy = prior_accuracy
        self.prior_strength = prior_strength
        self.agreement_weight = agreement_weight
        self.min_accuracy = min_accuracy
        self.max_accuracy = max_accuracy
        # worker_id -> [correct pseudo-count, total pseudo-count]
        self._counts: Dict[int, List[float]] = {}

    def _cell(self, worker_id: int) -> List[float]:
        cell = self._counts.get(worker_id)
        if cell is None:
            cell = self._counts[worker_id] = [
                self.prior_accuracy * self.prior_strength,
                self.prior_strength,
            ]
        return cell

    def record_gold(self, worker_id: int, correct: bool) -> None:
        """Record a gold-question outcome (known true label) for a worker."""
        cell = self._cell(worker_id)
        cell[0] += 1.0 if correct else 0.0
        cell[1] += 1.0

    def record_agreement(self, worker_id: int, agreed: bool) -> None:
        """Record whether a worker's vote agreed with the aggregated label."""
        cell = self._cell(worker_id)
        cell[0] += self.agreement_weight if agreed else 0.0
        cell[1] += self.agreement_weight

    def accuracy(self, worker_id: int) -> float:
        """Current accuracy estimate for ``worker_id``, clamped."""
        cell = self._counts.get(worker_id)
        if cell is None:
            estimate = self.prior_accuracy
        else:
            estimate = cell[0] / cell[1]
        return min(self.max_accuracy, max(self.min_accuracy, estimate))

    def weight(self, worker_id: int) -> float:
        """Log-odds vote weight: ``log(acc / (1 - acc))``.

        Positive for better-than-chance workers, zero at 0.5, negative for
        workers estimated worse than chance (their vote counts *against*).
        """
        accuracy = self.accuracy(worker_id)
        return math.log(accuracy / (1.0 - accuracy))

    def n_observations(self, worker_id: int) -> float:
        """Evidence (pseudo-count) accumulated beyond the prior."""
        cell = self._counts.get(worker_id)
        if cell is None:
            return 0.0
        return cell[1] - self.prior_strength

    def known_workers(self) -> List[int]:
        """Worker ids with any recorded evidence, sorted."""
        return sorted(self._counts)

    # -- persistence ---------------------------------------------------
    def snapshot_state(self) -> dict:
        """JSON-serialisable state (rides the service's snapshot records)."""
        return {
            "version": self.STATE_VERSION,
            "counts": [
                [worker_id, cell[0], cell[1]]
                for worker_id, cell in sorted(self._counts.items())
            ],
        }

    def restore_state(self, state: Mapping) -> None:
        """Restore counts captured by :meth:`snapshot_state`.

        Raises:
            ValueError: on an unknown state version.
        """
        version = state.get("version")
        if version != self.STATE_VERSION:
            raise ValueError(f"unknown WorkerAccuracyTracker state version {version!r}")
        self._counts = {
            int(worker_id): [float(correct), float(total)]
            for worker_id, correct, total in state.get("counts", [])
        }


@dataclass
class WeightedAggregation:
    """Quality-aware replacement for flat majority voting.

    Aggregates a HIT's assignments by weighted majority, weighting each
    worker's vote by the log-odds of their tracked accuracy, then feeds the
    observed agreement back into the tracker.  With a fresh tracker (uniform
    estimates) the aggregate is exactly the flat majority.

    Attributes:
        tracker: the accuracy estimator (a default one is created if omitted).
        min_votes: per-pair quorum forwarded to :func:`summarize_assignments`.
        update_from_agreement: feed each aggregation's consensus back into
            the tracker (set False to freeze weights, e.g. for replay).
    """

    tracker: WorkerAccuracyTracker = field(default_factory=WorkerAccuracyTracker)
    min_votes: int = 1
    update_from_agreement: bool = True

    def aggregate(
        self,
        assignments: Iterable[Assignment],
        tie_break: Label = Label.NON_MATCHING,
        strict: bool = True,
    ) -> Dict[Pair, VoteSummary]:
        """Weighted-majority aggregate of one HIT's assignments.

        Weights are read from the tracker *before* this HIT's agreement
        evidence is folded in, so aggregation is deterministic in the
        completion sequence.

        Raises:
            ValueError / QuorumError: as :func:`summarize_assignments`.
        """
        assignments = list(assignments)
        weights = {
            a.worker_id: self.tracker.weight(a.worker_id) for a in assignments
        }
        summaries = summarize_assignments(
            assignments,
            tie_break=tie_break,
            min_votes=self.min_votes,
            strict=strict,
            worker_weights=weights,
        )
        if self.update_from_agreement:
            for assignment in assignments:
                for pair, answer in assignment.answers.items():
                    summary = summaries.get(pair)
                    if summary is None or summary.tie_broken:
                        continue  # no consensus to agree with
                    self.tracker.record_agreement(
                        assignment.worker_id, answer is summary.label
                    )
        return summaries

    def aggregate_labels(
        self,
        assignments: Iterable[Assignment],
        tie_break: Label = Label.NON_MATCHING,
        strict: bool = True,
    ) -> Dict[Pair, Label]:
        """Like :meth:`aggregate` but returns bare labels."""
        return {
            pair: summary.label
            for pair, summary in self.aggregate(
                assignments, tie_break=tie_break, strict=strict
            ).items()
        }

    def score_gold(self, assignment: Assignment, gold: Mapping[Pair, Label]) -> int:
        """Fold gold-question outcomes from one assignment into the tracker.

        Returns the number of gold pairs the assignment answered.
        """
        scored = 0
        for pair, truth in gold.items():
            answer = assignment.answers.get(pair)
            if answer is None:
                continue
            self.tracker.record_gold(assignment.worker_id, answer is truth)
            scored += 1
        return scored

    # -- persistence ---------------------------------------------------
    def snapshot_state(self) -> dict:
        """JSON-serialisable state for the service's snapshot records."""
        return {"version": 1, "tracker": self.tracker.snapshot_state()}

    def restore_state(self, state: Mapping) -> None:
        """Restore state captured by :meth:`snapshot_state`.

        Raises:
            ValueError: on an unknown state version.
        """
        version = state.get("version")
        if version != 1:
            raise ValueError(f"unknown WeightedAggregation state version {version!r}")
        self.tracker.restore_state(state["tracker"])
