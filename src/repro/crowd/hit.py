"""HITs (Human Intelligence Tasks) and assignments.

On AMT (paper Section 2.1) a HIT is the unit of published work.  Section 6.4
batches 20 pairs into one HIT, replicates each HIT into 3 assignments, and
aggregates per pair by majority vote.  These value types model that structure
for the simulated platform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from ..core.pairs import Label, Pair

DEFAULT_BATCH_SIZE = 20
DEFAULT_ASSIGNMENTS = 3


@dataclass(frozen=True)
class HIT:
    """A published task containing one or more pairs to label.

    Attributes:
        hit_id: platform-unique identifier.
        pairs: the pairs a worker labels in this HIT (batching strategy).
        n_assignments: how many distinct workers must complete the HIT.
    """

    hit_id: int
    pairs: Tuple[Pair, ...]
    n_assignments: int = DEFAULT_ASSIGNMENTS

    def __post_init__(self) -> None:
        if not self.pairs:
            raise ValueError("a HIT must contain at least one pair")
        if self.n_assignments < 1:
            raise ValueError("a HIT needs at least one assignment")
        if len(set(self.pairs)) != len(self.pairs):
            raise ValueError("a HIT must not contain duplicate pairs")

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self) -> Iterator[Pair]:
        return iter(self.pairs)


@dataclass(frozen=True)
class Assignment:
    """One worker's completed pass over a HIT.

    Attributes:
        hit: the HIT that was worked on.
        worker_id: who completed it.
        answers: the worker's label for every pair in the HIT.
        accepted_at: simulation time the worker picked the HIT up.
        submitted_at: simulation time the answers came back.
        partial: declare the assignment intentionally incomplete.  A worker
            who abandons a HIT mid-way, or a drained leftover completion from
            an expired HIT whose pair set has since shrunk, legitimately
            covers only a subset of the HIT's pairs; aggregation treats each
            missing answer as an abstention.  Without the flag, a missing
            answer is still a construction error.
    """

    hit: HIT
    worker_id: int
    answers: Dict[Pair, Label]
    accepted_at: float = 0.0
    submitted_at: float = 0.0
    partial: bool = False

    def __post_init__(self) -> None:
        if self.partial:
            return
        missing = set(self.hit.pairs) - set(self.answers)
        if missing:
            raise ValueError(f"assignment is missing answers for {sorted(map(repr, missing))}")

    @property
    def duration(self) -> float:
        return self.submitted_at - self.accepted_at


def batch_pairs(
    pairs: Sequence[Pair],
    batch_size: int = DEFAULT_BATCH_SIZE,
    n_assignments: int = DEFAULT_ASSIGNMENTS,
    first_hit_id: int = 0,
) -> List[HIT]:
    """Pack pairs into HITs of at most ``batch_size`` pairs each, preserving
    order (the paper's batching strategy [14, 25]).

    Raises:
        ValueError: for a non-positive batch size.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    hits: List[HIT] = []
    for start in range(0, len(pairs), batch_size):
        chunk = tuple(pairs[start : start + batch_size])
        hits.append(
            HIT(
                hit_id=first_hit_id + len(hits),
                pairs=chunk,
                n_assignments=n_assignments,
            )
        )
    return hits


def n_hits_needed(n_pairs: int, batch_size: int = DEFAULT_BATCH_SIZE) -> int:
    """ceil(n_pairs / batch_size): the paper's HIT-count arithmetic, e.g.
    29281 pairs / 20 per HIT -> 1465 HITs (Table 2a)."""
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    return -(-n_pairs // batch_size)


def pairs_of_hits(hits: Iterable[HIT]) -> List[Pair]:
    """All pairs covered by ``hits``, in HIT order."""
    flat: List[Pair] = []
    for hit in hits:
        flat.extend(hit.pairs)
    return flat
