"""Latency models for the simulated crowd platform.

AMT latency is dominated by *pickup delay* — the time until some worker
discovers and accepts a published assignment — with the actual labeling work
taking a minute or two.  The paper's Table 1 numbers (78 hours for 68
sequentially-published HITs, i.e. over an hour per HIT round-trip) reflect
exactly this: publishing HITs one at a time pays the pickup delay serially,
while parallel publication overlaps it.

All times are in hours.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Protocol, runtime_checkable


@runtime_checkable
class LatencyModel(Protocol):
    """Samples the two latency components of one assignment."""

    def pickup_delay(self, rng: random.Random) -> float:
        """Hours between an assignment becoming available to a free worker
        and the worker starting it."""
        ...  # pragma: no cover - protocol

    def work_time(self, rng: random.Random, n_pairs: int) -> float:
        """Hours a baseline-speed worker needs to label ``n_pairs`` pairs."""
        ...  # pragma: no cover - protocol


def _lognormal_params(mean: float, sigma: float) -> tuple[float, float]:
    """(mu, sigma) of a lognormal with the requested *mean* and shape sigma."""
    mu = math.log(mean) - sigma * sigma / 2.0
    return mu, sigma


@dataclass(frozen=True)
class LognormalLatency:
    """Lognormal pickup delay plus linear per-pair work time.

    Defaults are calibrated so the Table 1 experiment lands in the same
    regime as the paper: mean pickup around 0.35 h makes 68 sequential HITs
    (3 assignments each, the slowest of the three gating the round) take on
    the order of 70-80 hours, while parallel publication overlaps pickups.

    Attributes:
        mean_pickup_hours: mean of the pickup-delay lognormal.
        pickup_sigma: shape parameter of the pickup-delay lognormal.
        seconds_per_pair: labeling work per pair, for a speed-1.0 worker.
    """

    mean_pickup_hours: float = 0.35
    pickup_sigma: float = 0.9
    seconds_per_pair: float = 20.0

    def __post_init__(self) -> None:
        if self.mean_pickup_hours <= 0:
            raise ValueError("mean_pickup_hours must be positive")
        if self.seconds_per_pair < 0:
            raise ValueError("seconds_per_pair must be non-negative")

    def pickup_delay(self, rng: random.Random) -> float:
        mu, sigma = _lognormal_params(self.mean_pickup_hours, self.pickup_sigma)
        return rng.lognormvariate(mu, sigma)

    def work_time(self, rng: random.Random, n_pairs: int) -> float:
        # Mild multiplicative noise on the deterministic per-pair effort.
        noise = rng.uniform(0.8, 1.2)
        return n_pairs * self.seconds_per_pair * noise / 3600.0


@dataclass(frozen=True)
class FixedLatency:
    """Deterministic latency — for tests and reproducible micro-benchmarks."""

    pickup_hours: float = 0.1
    work_hours_per_pair: float = 0.005

    def pickup_delay(self, rng: random.Random) -> float:
        return self.pickup_hours

    def work_time(self, rng: random.Random, n_pairs: int) -> float:
        return n_pairs * self.work_hours_per_pair


@dataclass(frozen=True)
class TimeoutPolicy:
    """Latency cap enforced by the crowd runtime, not the simulator.

    On a live platform a HIT can sit unclaimed indefinitely; the runtime
    bounds that by requesting ``hit_timeout`` as the expiry deadline on
    every submission and re-issuing the unanswered pairs of each expired
    HIT — at most ``max_reissues`` times per HIT lineage, after which the
    campaign fails fast instead of spinning forever.

    Attributes:
        hit_timeout: expiry deadline per HIT, in the platform client's
            clock units (simulated hours, or wall seconds for live
            clients).
        max_reissues: re-publication attempts per expired HIT lineage.
    """

    hit_timeout: float
    max_reissues: int = 3

    def __post_init__(self) -> None:
        if self.hit_timeout <= 0:
            raise ValueError("hit_timeout must be positive")
        if self.max_reissues < 0:
            raise ValueError("max_reissues must be non-negative")


@dataclass(frozen=True)
class ZeroLatency:
    """Everything is instantaneous — isolates counting from timing."""

    def pickup_delay(self, rng: random.Random) -> float:
        return 0.0

    def work_time(self, rng: random.Random, n_pairs: int) -> float:
        return 0.0
