"""The simulated crowdsourcing platform: a discrete-event AMT stand-in.

This is the substrate for the paper's Section 6.4 experiments.  It models:

* HIT publication (pairs batched per the paper's batching strategy);
* a finite worker pool, each worker with a behaviour model and speed;
* per-assignment pickup delay + work time (see ``repro.crowd.latency``);
* assignment replication with distinct workers per HIT;
* majority-vote aggregation when a HIT's last assignment lands;
* cost accounting per completed assignment.

The API is pull-based: callers ``publish_pairs(...)`` and then repeatedly
``step()`` to advance simulated time to the next completed HIT, reacting by
publishing more work — exactly the shape of the paper's iterative labeling
campaigns.  ``repro.crowd.campaign`` provides the campaign controllers.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.oracle import LabelOracle
from ..core.pairs import Label, Pair
from .aggregation import VoteSummary, WeightedAggregation, summarize_assignments
from .budget import CostLedger, CostModel
from .hit import DEFAULT_ASSIGNMENTS, DEFAULT_BATCH_SIZE, HIT, Assignment, batch_pairs
from .latency import LatencyModel, LognormalLatency
from .worker import Worker


@dataclass(frozen=True)
class HITCompletion:
    """Returned by :meth:`SimulatedPlatform.step` when a HIT finishes.

    Attributes:
        hit: the completed HIT.
        labels: aggregated label per pair (majority vote by default).
        completed_at: simulation time (hours) of the last assignment.
        assignments: the raw assignments (for agreement diagnostics).
        summaries: optional per-pair vote diagnostics (margin, tie-break,
            confidence) when the producer aggregated with that detail;
            empty for sources that only surface bare labels.
    """

    hit: HIT
    labels: Dict[Pair, Label]
    completed_at: float
    assignments: Tuple[Assignment, ...]
    summaries: Dict[Pair, VoteSummary] = field(default_factory=dict)


@dataclass
class PlatformStats:
    """Aggregate counters maintained by the platform."""

    hits_published: int = 0
    assignments_completed: int = 0
    pairs_published: int = 0

    def snapshot(self) -> dict:
        return {
            "hits_published": self.hits_published,
            "assignments_completed": self.assignments_completed,
            "pairs_published": self.pairs_published,
        }


class SimulatedPlatform:
    """Discrete-event simulation of an AMT-like platform.

    Args:
        workers: the worker pool; must contain at least ``n_assignments``
            workers or HITs can never complete.
        truth: oracle giving the true label of any pair (workers distort it
            according to their behaviour model).
        likelihoods: optional machine likelihoods per pair, forwarded to
            ambiguity-aware worker models (default 0.5).
        latency: latency model (defaults to calibrated lognormal).
        cost_model: pricing.
        batch_size: pairs per HIT (paper: 20).
        n_assignments: replication per HIT (paper: 3).
        tie_break: label used on aggregation ties (only possible with an
            even replication factor).
        seed: RNG seed controlling latency draws and worker choice.
        aggregation: optional :class:`~repro.crowd.aggregation.WeightedAggregation`
            instance; when set, HITs aggregate by quality-weighted majority
            (and feed agreement evidence back into its tracker) instead of
            flat majority.
    """

    def __init__(
        self,
        workers: Sequence[Worker],
        truth: LabelOracle,
        likelihoods: Optional[Dict[Pair, float]] = None,
        latency: Optional[LatencyModel] = None,
        cost_model: Optional[CostModel] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        n_assignments: int = DEFAULT_ASSIGNMENTS,
        tie_break: Label = Label.NON_MATCHING,
        seed: int = 0,
        aggregation: Optional[WeightedAggregation] = None,
    ) -> None:
        if len(workers) < n_assignments:
            raise ValueError(
                f"{n_assignments} assignments per HIT need at least that many "
                f"workers; got {len(workers)}"
            )
        self._workers = list(workers)
        self._truth = truth
        self._likelihoods = likelihoods or {}
        self._latency = latency if latency is not None else LognormalLatency()
        self.ledger = CostLedger(cost_model or CostModel())
        self._batch_size = batch_size
        self._n_assignments = n_assignments
        self._tie_break = tie_break
        self._aggregation = aggregation
        self._rng = random.Random(seed)

        self._now = 0.0
        self._hit_counter = itertools.count()
        self._event_counter = itertools.count()
        # (finish_time, tiebreak, worker_index, assignment)
        self._events: List[Tuple[float, int, int, Assignment]] = []
        self._worker_free_at: List[float] = [0.0] * len(self._workers)
        self._worker_busy: List[bool] = [False] * len(self._workers)
        # Pending (hit, remaining assignment slots); worker ids that served it.
        self._pending: List[HIT] = []
        self._slots_left: Dict[int, int] = {}
        self._served_by: Dict[int, Set[int]] = {}
        self._completed_assignments: Dict[int, List[Assignment]] = {}
        self._incomplete_hits: Set[int] = set()
        self.stats = PlatformStats()

    # ------------------------------------------------------------------
    # publication
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in hours."""
        return self._now

    @property
    def batch_size(self) -> int:
        """Pairs per HIT (the batching strategy's granularity)."""
        return self._batch_size

    @property
    def n_assignments(self) -> int:
        """Replication factor per HIT (what one HIT costs in assignments)."""
        return self._n_assignments

    @property
    def n_outstanding_hits(self) -> int:
        """HITs published but not yet fully completed."""
        return len(self._incomplete_hits)

    def publish_pairs(self, pairs: Sequence[Pair]) -> List[HIT]:
        """Batch ``pairs`` into HITs and publish them now."""
        hits = batch_pairs(
            pairs,
            batch_size=self._batch_size,
            n_assignments=self._n_assignments,
            first_hit_id=next(self._hit_counter),
        )
        # keep the counter ahead of the ids just allocated
        for _ in range(max(len(hits) - 1, 0)):
            next(self._hit_counter)
        for hit in hits:
            self._publish_hit(hit)
        return hits

    def _publish_hit(self, hit: HIT) -> None:
        self._pending.append(hit)
        self._slots_left[hit.hit_id] = hit.n_assignments
        self._served_by[hit.hit_id] = set()
        self._completed_assignments[hit.hit_id] = []
        self._incomplete_hits.add(hit.hit_id)
        self.stats.hits_published += 1
        self.stats.pairs_published += len(hit)
        self._dispatch()

    # ------------------------------------------------------------------
    # event engine
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        """Hand pending assignment slots to free workers."""
        progress = True
        while progress:
            progress = False
            free = [
                i
                for i in range(len(self._workers))
                if not self._worker_busy[i]
            ]
            if not free:
                return
            self._rng.shuffle(free)
            for worker_index in free:
                slot = self._find_slot_for(worker_index)
                if slot is None:
                    continue
                self._start_assignment(worker_index, slot)
                progress = True

    def _find_slot_for(self, worker_index: int) -> Optional[HIT]:
        worker = self._workers[worker_index]
        for hit in self._pending:
            if self._slots_left.get(hit.hit_id, 0) <= 0:
                continue
            if worker.worker_id in self._served_by[hit.hit_id]:
                continue
            return hit
        return None

    def _start_assignment(self, worker_index: int, hit: HIT) -> None:
        worker = self._workers[worker_index]
        self._slots_left[hit.hit_id] -= 1
        if self._slots_left[hit.hit_id] == 0:
            self._pending = [h for h in self._pending if h.hit_id != hit.hit_id]
        self._served_by[hit.hit_id].add(worker.worker_id)
        start = max(self._now, self._worker_free_at[worker_index])
        start += self._latency.pickup_delay(self._rng)
        duration = self._latency.work_time(self._rng, len(hit)) / worker.speed
        finish = start + duration
        answers = {
            pair: worker.answer(
                pair,
                self._truth.label(pair),
                self._likelihoods.get(pair, 0.5),
            )
            for pair in hit.pairs
        }
        assignment = Assignment(
            hit=hit,
            worker_id=worker.worker_id,
            answers=answers,
            accepted_at=start,
            submitted_at=finish,
        )
        self._worker_busy[worker_index] = True
        heapq.heappush(
            self._events, (finish, next(self._event_counter), worker_index, assignment)
        )

    def step(self) -> Optional[HITCompletion]:
        """Advance simulated time to the next *HIT* completion.

        Processes assignment-completion events in time order; whenever a
        HIT's last assignment lands, aggregates by majority vote and returns.
        Returns None when no work is outstanding.
        """
        while self._events:
            finish, _, worker_index, assignment = heapq.heappop(self._events)
            self._now = finish
            self._worker_busy[worker_index] = False
            self._worker_free_at[worker_index] = finish
            self.ledger.charge_assignment()
            self.stats.assignments_completed += 1
            hit_id = assignment.hit.hit_id
            done = self._completed_assignments[hit_id]
            done.append(assignment)
            self._dispatch()
            if len(done) == assignment.hit.n_assignments:
                self._incomplete_hits.discard(hit_id)
                if self._aggregation is not None:
                    summaries = self._aggregation.aggregate(
                        done, tie_break=self._tie_break
                    )
                else:
                    summaries = summarize_assignments(done, tie_break=self._tie_break)
                return HITCompletion(
                    hit=assignment.hit,
                    labels={p: s.label for p, s in summaries.items()},
                    completed_at=finish,
                    assignments=tuple(done),
                    summaries=summaries,
                )
        return None

    def run_to_completion(self) -> List[HITCompletion]:
        """Drain every outstanding HIT; returns completions in time order."""
        completions: List[HITCompletion] = []
        while True:
            completion = self.step()
            if completion is None:
                return completions
            completions.append(completion)
