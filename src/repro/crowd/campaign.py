"""Crowdsourcing campaigns: labeling strategies driven by the platform.

A *campaign* wires a labeling strategy to the discrete-event platform at HIT
granularity, producing the quantities the paper's Section 6.4 tables report:
number of HITs, completion time, money cost, and the final labels (from which
quality is computed).  Three campaign styles cover the paper's comparisons:

* :func:`run_non_transitive` — the baseline: publish every candidate pair at
  once, take the crowd's (aggregated) word for each.
* :func:`run_transitive` — the paper's framework at platform granularity:
  publish the must-crowdsource pairs, deduce everything implied as answers
  arrive, optionally re-deciding instantly after every HIT completion
  (Parallel(ID)); without instant decision it re-publishes only when the
  platform drains (round-based Parallel).  The frontier computation and the
  deduction sweep are the shared :class:`~repro.engine.LabelingEngine`,
  driven at HIT granularity through
  :class:`~repro.engine.HITDispatchAdapter`, which buffers publishable pairs
  into *full* HITs of the platform's batch size — partial HITs are flushed
  only when the platform would otherwise sit idle — so iterative publication
  does not inflate the HIT count the paper's batching strategy saves.
* :func:`run_non_parallel` — publish a fixed list of HITs strictly one at a
  time (Table 1's Non-Parallel opponent).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from ..core.cluster_graph import ConflictPolicy
from ..core.pairs import CandidatePair, Label, Pair, Provenance
from ..engine import HITDispatchAdapter, LabelingEngine
from .platform import SimulatedPlatform


@dataclass
class CampaignReport:
    """Everything a Section-6.4 table needs about one campaign run.

    Attributes:
        labels: final label of every candidate pair.
        provenance: how each pair was resolved (crowdsourced or deduced).
        n_hits: HITs published.
        n_assignments: assignments completed (n_hits * replication).
        cost: dollars spent.
        completion_hours: simulated wall-clock time when the last candidate
            pair's label became known.
        publish_events: (time, n_hits_published) per publish burst.
        hit_batches: the pair composition of every published HIT, in
            publication order (lets Table 1 replay identical HITs serially).
        conflicts: pairs whose crowd answer contradicted the deduction graph
            (possible only with noisy workers).
    """

    labels: Dict[Pair, Label] = field(default_factory=dict)
    provenance: Dict[Pair, Provenance] = field(default_factory=dict)
    n_hits: int = 0
    n_assignments: int = 0
    cost: float = 0.0
    completion_hours: float = 0.0
    publish_events: List[Tuple[float, int]] = field(default_factory=list)
    hit_batches: List[List[Pair]] = field(default_factory=list)
    conflicts: List[Pair] = field(default_factory=list)

    @property
    def n_crowdsourced(self) -> int:
        return sum(1 for p in self.provenance.values() if p is Provenance.CROWDSOURCED)

    @property
    def n_deduced(self) -> int:
        return sum(1 for p in self.provenance.values() if p is Provenance.DEDUCED)

    def matches(self) -> Set[Pair]:
        """Pairs labeled matching."""
        return {pair for pair, label in self.labels.items() if label is Label.MATCHING}


def _pairs_of(order: Sequence[CandidatePair | Pair]) -> List[Pair]:
    return [item.pair if isinstance(item, CandidatePair) else item for item in order]


def _finalize(report: CampaignReport, platform: SimulatedPlatform) -> CampaignReport:
    report.n_hits = platform.stats.hits_published
    report.n_assignments = platform.stats.assignments_completed
    report.cost = platform.ledger.total
    return report


def run_non_transitive(
    candidates: Sequence[CandidatePair | Pair],
    platform: SimulatedPlatform,
) -> CampaignReport:
    """Publish every pair simultaneously; no deduction (paper's baseline)."""
    pairs = _pairs_of(candidates)
    report = CampaignReport()
    hits = platform.publish_pairs(pairs)
    report.hit_batches.extend(list(hit.pairs) for hit in hits)
    report.publish_events.append((platform.now, len(hits)))
    for completion in platform.run_to_completion():
        for pair, label in completion.labels.items():
            report.labels[pair] = label
            report.provenance[pair] = Provenance.CROWDSOURCED
        report.completion_hours = completion.completed_at
    return _finalize(report, platform)


def run_transitive(
    candidates: Sequence[CandidatePair | Pair],
    platform: SimulatedPlatform,
    instant_decision: bool = True,
    policy: ConflictPolicy = ConflictPolicy.FIRST_WINS,
) -> CampaignReport:
    """The paper's framework against the simulated platform.

    The candidate order is taken as the labeling order (sort upstream with a
    :class:`~repro.core.ordering.Sorter`).  With ``instant_decision`` the
    must-crowdsource set is re-evaluated after *every* HIT completion
    (Parallel(ID)); otherwise only when the platform has drained (Parallel).

    Crowd answers always win for pairs that were published; deductions fill
    in the rest.  With noisy workers the answers may be mutually inconsistent
    — the FIRST_WINS policy keeps the first-inserted edges and logs
    conflicts, mirroring how cascaded deduction errors arise in the paper's
    Table 2.
    """
    report = CampaignReport()
    engine = LabelingEngine(_pairs_of(candidates), policy=policy)

    def publish_chunk(chunk: List[Pair]) -> None:
        hits = platform.publish_pairs(chunk)
        report.hit_batches.extend(list(hit.pairs) for hit in hits)
        report.publish_events.append((platform.now, len(hits)))

    adapter = HITDispatchAdapter(engine, publish_chunk, platform.batch_size)
    n_completions = 0

    adapter.select_new()
    adapter.flush(force=True)  # the first round goes out even if it is a partial HIT
    while not engine.is_done:
        if platform.n_outstanding_hits == 0:
            adapter.select_new()
            adapter.flush(force=True)
        completion = platform.step()
        assert completion is not None, "campaign stalled with pairs unlabeled"
        report.conflicts.extend(
            adapter.record_completion(list(completion.labels.items()), n_completions)
        )
        report.completion_hours = completion.completed_at
        adapter.sweep(n_completions)
        n_completions += 1
        if not engine.is_done and instant_decision:
            adapter.select_new()
    for pair, outcome in engine.result.outcomes.items():
        report.labels[pair] = outcome.label
        report.provenance[pair] = outcome.provenance
    # Any still-outstanding HITs are paid for regardless; record their
    # answers as they land (they do not extend the completion time, which is
    # defined by the last *needed* label).
    for completion in platform.run_to_completion():
        for pair, label in completion.labels.items():
            if pair not in report.labels:
                report.labels[pair] = label
                report.provenance[pair] = Provenance.CROWDSOURCED
    return _finalize(report, platform)


def run_non_parallel(
    hits_pairs: Sequence[Sequence[Pair]],
    platform: SimulatedPlatform,
) -> CampaignReport:
    """Publish pre-batched HITs strictly one at a time (Table 1 baseline).

    Each inner sequence is one HIT's pairs; the next HIT is published only
    after the previous one fully completes.
    """
    report = CampaignReport()
    for chunk in hits_pairs:
        hits = platform.publish_pairs(list(chunk))
        report.hit_batches.extend(list(hit.pairs) for hit in hits)
        report.publish_events.append((platform.now, len(hits)))
        completion = platform.step()
        assert completion is not None, "published HIT never completed"
        for pair, label in completion.labels.items():
            report.labels[pair] = label
            report.provenance[pair] = Provenance.CROWDSOURCED
        report.completion_hours = completion.completed_at
    return _finalize(report, platform)
