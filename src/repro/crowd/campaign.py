"""Crowdsourcing campaigns: labeling strategies driven by the platform.

A *campaign* wires a labeling strategy to a crowd platform at HIT
granularity, producing the quantities the paper's Section 6.4 tables report:
number of HITs, completion time, money cost, and the final labels (from which
quality is computed).  Three campaign styles cover the paper's comparisons:

* :func:`run_non_transitive` — the baseline: publish every candidate pair at
  once, take the crowd's (aggregated) word for each.
* :func:`run_transitive` — the paper's framework at platform granularity:
  publish the must-crowdsource pairs, deduce everything implied as answers
  arrive, optionally re-deciding instantly after every HIT completion
  (Parallel(ID)); without instant decision it re-publishes only when the
  platform drains (round-based Parallel).
* :func:`run_non_parallel` — publish a fixed list of HITs strictly one at a
  time (Table 1's Non-Parallel opponent).

All three are thin synchronous facades over the async crowd runtime
(:class:`repro.engine.async_dispatch.CrowdRuntime`) running the
:class:`~repro.crowd.clients.SimulatedPlatformClient` to completion: the
frontier computation, the deduction sweep, full-HIT buffering
(:class:`~repro.engine.hit_adapter.HITDispatchAdapter`), and — crucially —
the application of out-of-order crowd answers are the same code path a live
:class:`~repro.crowd.clients.PollingPlatformClient` or
:class:`~repro.crowd.clients.CallbackPlatformClient` campaign exercises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Sequence, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from ..spec import CampaignSpec

from ..core.cluster_graph import ConflictPolicy
from ..core.pairs import CandidatePair, Label, Pair, Provenance
from ..engine import async_dispatch as _runtime
from ..engine.engine import LabelingEngine
from .clients import SimulatedPlatformClient
from .platform import SimulatedPlatform


@dataclass
class CampaignReport:
    """Everything a Section-6.4 table needs about one campaign run.

    Attributes:
        labels: final label of every candidate pair.
        provenance: how each pair was resolved (crowdsourced or deduced).
        n_hits: HITs published.
        n_assignments: assignments completed (n_hits * replication).
        cost: dollars spent.
        completion_hours: simulated wall-clock time when the last candidate
            pair's label became known.
        publish_events: (time, n_hits_published) per publish burst.
        hit_batches: the pair composition of every published HIT, in
            publication order (lets Table 1 replay identical HITs serially).
        conflicts: pairs whose crowd answer contradicted the deduction graph
            (possible only with noisy workers).
    """

    labels: Dict[Pair, Label] = field(default_factory=dict)
    provenance: Dict[Pair, Provenance] = field(default_factory=dict)
    n_hits: int = 0
    n_assignments: int = 0
    cost: float = 0.0
    completion_hours: float = 0.0
    publish_events: List[Tuple[float, int]] = field(default_factory=list)
    hit_batches: List[List[Pair]] = field(default_factory=list)
    conflicts: List[Pair] = field(default_factory=list)

    @property
    def n_crowdsourced(self) -> int:
        return sum(1 for p in self.provenance.values() if p is Provenance.CROWDSOURCED)

    @property
    def n_deduced(self) -> int:
        return sum(1 for p in self.provenance.values() if p is Provenance.DEDUCED)

    def matches(self) -> Set[Pair]:
        """Pairs labeled matching."""
        return {pair for pair, label in self.labels.items() if label is Label.MATCHING}


def _pairs_of(order: Sequence[CandidatePair | Pair]) -> List[Pair]:
    return [item.pair if isinstance(item, CandidatePair) else item for item in order]


def _report_from(
    engine: LabelingEngine,
    runtime_report: "_runtime.RuntimeReport",
    platform: SimulatedPlatform,
) -> CampaignReport:
    """Assemble the campaign view of an engine run + runtime report."""
    report = CampaignReport()
    for pair, outcome in engine.result.outcomes.items():
        report.labels[pair] = outcome.label
        report.provenance[pair] = outcome.provenance
    # Any still-outstanding HITs were paid for regardless; record their
    # answers as they land (they do not extend the completion time, which
    # is defined by the last *needed* label).
    for completion in runtime_report.leftovers:
        for pair, label in completion.labels.items():
            if pair not in report.labels:
                report.labels[pair] = label
                report.provenance[pair] = Provenance.CROWDSOURCED
    report.completion_hours = runtime_report.completion_hours
    report.publish_events = list(runtime_report.publish_events)
    report.hit_batches = [list(batch) for batch in runtime_report.hit_batches]
    report.conflicts = list(runtime_report.conflicts)
    report.n_hits = platform.stats.hits_published
    report.n_assignments = platform.stats.assignments_completed
    report.cost = platform.ledger.total
    return report


def run_non_transitive(
    candidates: Sequence[CandidatePair | Pair],
    platform: SimulatedPlatform,
) -> CampaignReport:
    """Publish every pair simultaneously; no deduction (paper's baseline)."""
    # FIRST_WINS because the baseline takes the crowd's word per pair: with
    # noisy workers the answers need not be mutually consistent, and no
    # deduction ever reads the graph anyway.
    engine = LabelingEngine(
        _pairs_of(candidates), policy=ConflictPolicy.FIRST_WINS, use_index=False
    )
    runtime = _runtime.CrowdRuntime(
        engine,
        SimulatedPlatformClient(platform),
        mode=_runtime.RuntimeMode.FLOOD,
    )
    return _report_from(engine, runtime.run_sync(), platform)


def run_transitive(
    candidates: Sequence[CandidatePair | Pair] | None = None,
    platform: SimulatedPlatform | None = None,
    instant_decision: bool | None = None,
    policy: ConflictPolicy | None = None,
    *,
    spec: "CampaignSpec | None" = None,
) -> CampaignReport:
    """The paper's framework against the simulated platform.

    The candidate order is taken as the labeling order (sort upstream with a
    :class:`~repro.core.ordering.Sorter`).  With ``instant_decision`` the
    must-crowdsource set is re-evaluated after *every* HIT completion
    (Parallel(ID)); otherwise only when the platform has drained (Parallel).

    A :class:`~repro.spec.CampaignSpec` may be passed instead of (or in
    addition to) the loose arguments: ``candidates`` defaults to the spec's
    order, the engine is configured from the spec (backend, thresholds,
    conflict policy), the runtime mode follows ``spec.mode``, and the spec's
    budget/timeout/review policies drive the runtime.  Explicit arguments
    override the spec field-by-field.

    Crowd answers always win for pairs that were published; deductions fill
    in the rest.  With noisy workers the answers may be mutually inconsistent
    — the FIRST_WINS policy keeps the first-inserted edges and logs
    conflicts, mirroring how cascaded deduction errors arise in the paper's
    Table 2.
    """
    if platform is None:
        raise TypeError("run_transitive() requires a platform")
    if spec is not None:
        if candidates is not None:
            spec = spec.with_order(candidates)
        engine_kwargs = spec.engine_kwargs()
        if policy is not None:
            engine_kwargs["policy"] = policy
        engine = LabelingEngine(list(spec.pairs), **engine_kwargs)
        if instant_decision is None:
            mode = spec.runtime_mode()
        else:
            mode = (
                _runtime.RuntimeMode.HIT_INSTANT
                if instant_decision
                else _runtime.RuntimeMode.HIT_ROUNDS
            )
    else:
        if candidates is None:
            raise TypeError("run_transitive() requires candidates or a spec")
        engine = LabelingEngine(
            _pairs_of(candidates),
            policy=ConflictPolicy.FIRST_WINS if policy is None else policy,
        )
        mode = (
            _runtime.RuntimeMode.HIT_ROUNDS
            if instant_decision is False
            else _runtime.RuntimeMode.HIT_INSTANT
        )
    runtime = _runtime.CrowdRuntime(
        engine,
        SimulatedPlatformClient(platform),
        spec=spec,
        mode=mode,
    )
    return _report_from(engine, runtime.run_sync(), platform)


def run_non_parallel(
    hits_pairs: Sequence[Sequence[Pair]],
    platform: SimulatedPlatform,
) -> CampaignReport:
    """Publish pre-batched HITs strictly one at a time (Table 1 baseline).

    Each inner sequence is one HIT's pairs; the next HIT is published only
    after the previous one fully completes.
    """
    flat = [pair for chunk in hits_pairs for pair in chunk]
    engine = LabelingEngine(flat, policy=ConflictPolicy.FIRST_WINS, use_index=False)
    runtime = _runtime.CrowdRuntime(
        engine,
        SimulatedPlatformClient(platform),
        mode=_runtime.RuntimeMode.SERIAL,
        preplanned=hits_pairs,
    )
    return _report_from(engine, runtime.run_sync(), platform)
