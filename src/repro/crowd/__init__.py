"""Crowd platforms — the simulator, async clients, and campaign runners.

Provides HIT batching, worker models, majority-vote aggregation, latency
models, a discrete-event platform simulator, the async
:class:`PlatformClient` seam (simulated / polling / webhook-push clients),
campaign runners for the paper's Section 6.4 experiments, assignment
review policies, and — under :mod:`repro.crowd.platforms` — the live
MTurk backend with its record/replay cassette layer (see ``docs/crowd.md``).
"""

# NOTE: import order matters here.  ``campaign`` sits on the engine side of
# the crowd<->engine seam (it drives ``repro.engine.async_dispatch``), so it
# must be imported after every module the engine's runtime needs from this
# package (budget, latency, hit, platform, clients); otherwise a first
# import entering through ``repro.engine`` cannot resolve the cycle.
from .aggregation import (
    MAX_TRACKED_ACCURACY,
    MIN_TRACKED_ACCURACY,
    QuorumError,
    VoteSummary,
    WeightedAggregation,
    WorkerAccuracyTracker,
    agreement_rate,
    aggregate_assignments,
    majority_vote,
    summarize_assignments,
    summarize_votes,
    unanimous_or,
)
from .budget import (
    DEFAULT_PRICE_PER_ASSIGNMENT,
    BudgetExceededError,
    BudgetPolicy,
    CostLedger,
    CostModel,
)
from .hit import (
    DEFAULT_ASSIGNMENTS,
    DEFAULT_BATCH_SIZE,
    HIT,
    Assignment,
    batch_pairs,
    n_hits_needed,
    pairs_of_hits,
)
from .latency import (
    FixedLatency,
    LatencyModel,
    LognormalLatency,
    TimeoutPolicy,
    ZeroLatency,
)
from .platform import HITCompletion, PlatformStats, SimulatedPlatform
from .review import (
    ApproveAll,
    EscalateOnLowConfidence,
    ReviewDecision,
    ReviewPolicy,
)
from .worker import (
    AmbiguityAwareWorker,
    BernoulliWorker,
    LikelihoodAwareWorker,
    PerfectWorker,
    QualificationTest,
    Worker,
    WorkerModel,
    make_worker_pool,
)
from .clients import (
    CallbackPlatformClient,
    HITExpiry,
    InMemoryCrowdBackend,
    ManualClock,
    PlatformClient,
    PlatformEvent,
    PollingPlatformClient,
    RestCrowdBackend,
    SimulatedPlatformClient,
)
from .campaign import (
    CampaignReport,
    run_non_parallel,
    run_non_transitive,
    run_transitive,
)
from .platforms import (
    Cassette,
    Credentials,
    FakeMTurkService,
    MTurkBackend,
    MTurkRequestError,
    RecordReplayBackend,
    ReplayDivergenceError,
    ThrottlePolicy,
)

__all__ = [
    "AmbiguityAwareWorker",
    "ApproveAll",
    "Assignment",
    "BernoulliWorker",
    "BudgetExceededError",
    "BudgetPolicy",
    "CallbackPlatformClient",
    "CampaignReport",
    "Cassette",
    "CostLedger",
    "CostModel",
    "Credentials",
    "DEFAULT_ASSIGNMENTS",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_PRICE_PER_ASSIGNMENT",
    "EscalateOnLowConfidence",
    "FakeMTurkService",
    "FixedLatency",
    "HIT",
    "HITCompletion",
    "HITExpiry",
    "InMemoryCrowdBackend",
    "LatencyModel",
    "LikelihoodAwareWorker",
    "LognormalLatency",
    "MAX_TRACKED_ACCURACY",
    "MIN_TRACKED_ACCURACY",
    "MTurkBackend",
    "MTurkRequestError",
    "ManualClock",
    "PerfectWorker",
    "PlatformClient",
    "PlatformEvent",
    "PlatformStats",
    "PollingPlatformClient",
    "QualificationTest",
    "QuorumError",
    "RecordReplayBackend",
    "ReplayDivergenceError",
    "RestCrowdBackend",
    "ReviewDecision",
    "ReviewPolicy",
    "SimulatedPlatform",
    "SimulatedPlatformClient",
    "ThrottlePolicy",
    "TimeoutPolicy",
    "VoteSummary",
    "WeightedAggregation",
    "Worker",
    "WorkerAccuracyTracker",
    "WorkerModel",
    "ZeroLatency",
    "aggregate_assignments",
    "agreement_rate",
    "batch_pairs",
    "majority_vote",
    "make_worker_pool",
    "n_hits_needed",
    "pairs_of_hits",
    "run_non_parallel",
    "run_non_transitive",
    "run_transitive",
    "summarize_assignments",
    "summarize_votes",
    "unanimous_or",
]
