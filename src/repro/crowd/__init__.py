"""Crowd platforms — the simulator, async clients, and campaign runners.

Provides HIT batching, worker models, majority-vote aggregation, latency
models, a discrete-event platform simulator, the async
:class:`PlatformClient` seam (simulated / polling / webhook-push clients),
and campaign runners for the paper's Section 6.4 experiments.
"""

# NOTE: import order matters here.  ``campaign`` sits on the engine side of
# the crowd<->engine seam (it drives ``repro.engine.async_dispatch``), so it
# must be imported after every module the engine's runtime needs from this
# package (budget, latency, hit, platform, clients); otherwise a first
# import entering through ``repro.engine`` cannot resolve the cycle.
from .aggregation import (
    agreement_rate,
    aggregate_assignments,
    majority_vote,
    unanimous_or,
)
from .budget import (
    DEFAULT_PRICE_PER_ASSIGNMENT,
    BudgetExceededError,
    BudgetPolicy,
    CostLedger,
    CostModel,
)
from .hit import (
    DEFAULT_ASSIGNMENTS,
    DEFAULT_BATCH_SIZE,
    HIT,
    Assignment,
    batch_pairs,
    n_hits_needed,
    pairs_of_hits,
)
from .latency import (
    FixedLatency,
    LatencyModel,
    LognormalLatency,
    TimeoutPolicy,
    ZeroLatency,
)
from .platform import HITCompletion, PlatformStats, SimulatedPlatform
from .worker import (
    AmbiguityAwareWorker,
    BernoulliWorker,
    PerfectWorker,
    QualificationTest,
    Worker,
    WorkerModel,
    make_worker_pool,
)
from .clients import (
    CallbackPlatformClient,
    HITExpiry,
    InMemoryCrowdBackend,
    ManualClock,
    PlatformClient,
    PlatformEvent,
    PollingPlatformClient,
    RestCrowdBackend,
    SimulatedPlatformClient,
)
from .campaign import (
    CampaignReport,
    run_non_parallel,
    run_non_transitive,
    run_transitive,
)

__all__ = [
    "AmbiguityAwareWorker",
    "Assignment",
    "BernoulliWorker",
    "BudgetExceededError",
    "BudgetPolicy",
    "CallbackPlatformClient",
    "CampaignReport",
    "CostLedger",
    "CostModel",
    "DEFAULT_ASSIGNMENTS",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_PRICE_PER_ASSIGNMENT",
    "FixedLatency",
    "HIT",
    "HITCompletion",
    "HITExpiry",
    "InMemoryCrowdBackend",
    "LatencyModel",
    "LognormalLatency",
    "ManualClock",
    "PerfectWorker",
    "PlatformClient",
    "PlatformEvent",
    "PlatformStats",
    "PollingPlatformClient",
    "QualificationTest",
    "RestCrowdBackend",
    "SimulatedPlatform",
    "SimulatedPlatformClient",
    "TimeoutPolicy",
    "Worker",
    "WorkerModel",
    "ZeroLatency",
    "aggregate_assignments",
    "agreement_rate",
    "batch_pairs",
    "majority_vote",
    "make_worker_pool",
    "n_hits_needed",
    "pairs_of_hits",
    "run_non_parallel",
    "run_non_transitive",
    "run_transitive",
    "unanimous_or",
]
