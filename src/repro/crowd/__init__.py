"""Simulated crowdsourcing platform — the AMT substitute.

Provides HIT batching, worker models, majority-vote aggregation, latency
models, a discrete-event platform simulator, and campaign runners for the
paper's Section 6.4 experiments.
"""

from .aggregation import (
    agreement_rate,
    aggregate_assignments,
    majority_vote,
    unanimous_or,
)
from .budget import DEFAULT_PRICE_PER_ASSIGNMENT, CostLedger, CostModel
from .campaign import (
    CampaignReport,
    run_non_parallel,
    run_non_transitive,
    run_transitive,
)
from .hit import (
    DEFAULT_ASSIGNMENTS,
    DEFAULT_BATCH_SIZE,
    HIT,
    Assignment,
    batch_pairs,
    n_hits_needed,
    pairs_of_hits,
)
from .latency import FixedLatency, LatencyModel, LognormalLatency, ZeroLatency
from .platform import HITCompletion, PlatformStats, SimulatedPlatform
from .worker import (
    AmbiguityAwareWorker,
    BernoulliWorker,
    PerfectWorker,
    QualificationTest,
    Worker,
    WorkerModel,
    make_worker_pool,
)

__all__ = [
    "AmbiguityAwareWorker",
    "Assignment",
    "BernoulliWorker",
    "CampaignReport",
    "CostLedger",
    "CostModel",
    "DEFAULT_ASSIGNMENTS",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_PRICE_PER_ASSIGNMENT",
    "FixedLatency",
    "HIT",
    "HITCompletion",
    "LatencyModel",
    "LognormalLatency",
    "PerfectWorker",
    "PlatformStats",
    "QualificationTest",
    "SimulatedPlatform",
    "Worker",
    "WorkerModel",
    "ZeroLatency",
    "aggregate_assignments",
    "agreement_rate",
    "batch_pairs",
    "majority_vote",
    "make_worker_pool",
    "n_hits_needed",
    "pairs_of_hits",
    "run_non_parallel",
    "run_non_transitive",
    "run_transitive",
    "unanimous_or",
]
