"""Turning similarity scores into match likelihoods.

The framework only needs a number in [0, 1] that is monotone in "how likely
is this pair a match".  The identity mapping (likelihood = similarity) is the
paper's choice; a logistic calibration is provided for when a small labeled
sample is available and better-calibrated probabilities help the expected-
cost analysis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple


def identity(similarity: float) -> float:
    """likelihood = similarity, clamped to [0, 1] (the paper's choice)."""
    return min(max(similarity, 0.0), 1.0)


@dataclass(frozen=True)
class LogisticCalibration:
    """likelihood = sigmoid(slope * (similarity - midpoint)).

    A soft step: pairs above ``midpoint`` lean matching, steeper with higher
    ``slope``.
    """

    midpoint: float = 0.5
    slope: float = 10.0

    def __call__(self, similarity: float) -> float:
        return 1.0 / (1.0 + math.exp(-self.slope * (similarity - self.midpoint)))


def fit_logistic(
    samples: Sequence[Tuple[float, bool]],
    learning_rate: float = 0.5,
    n_iterations: int = 500,
) -> LogisticCalibration:
    """Fit a 1-D logistic regression likelihood = sigmoid(w*s + b).

    Plain batch gradient descent — adequate for the single-feature problem.

    Args:
        samples: (similarity, is_match) training pairs.

    Raises:
        ValueError: with fewer than two samples or only one class.
    """
    if len(samples) < 2:
        raise ValueError("need at least two samples to calibrate")
    labels = {is_match for _, is_match in samples}
    if len(labels) < 2:
        raise ValueError("need both matching and non-matching samples")
    weight, bias = 1.0, 0.0
    n = len(samples)
    for _ in range(n_iterations):
        grad_w = 0.0
        grad_b = 0.0
        for similarity, is_match in samples:
            predicted = 1.0 / (1.0 + math.exp(-(weight * similarity + bias)))
            error = predicted - (1.0 if is_match else 0.0)
            grad_w += error * similarity
            grad_b += error
        weight -= learning_rate * grad_w / n
        bias -= learning_rate * grad_b / n
    # sigmoid(w*s + b) == sigmoid(slope * (s - midpoint)) with:
    slope = weight
    midpoint = -bias / weight if weight != 0 else 0.5
    return LogisticCalibration(midpoint=midpoint, slope=slope)


def threshold_filter(
    likelihoods: Iterable[Tuple[object, float]], threshold: float
) -> list:
    """Keep items whose likelihood is strictly above ``threshold``.

    The paper sweeps this threshold from 0.5 down to 0.1 (Figure 11): lower
    thresholds send more pairs to the crowd.
    """
    return [item for item, likelihood in likelihoods if likelihood > threshold]
