"""Machine-based candidate generation: the "machines first" half of the
hybrid human-machine workflow (paper Section 2.3)."""

from .blocking import (
    all_pairs,
    block_statistics,
    build_inverted_index,
    reduction_ratio,
    token_blocking,
)
from .candidates import CandidateGenerator, CandidateSet, likelihood_map
from .likelihood import LogisticCalibration, fit_logistic, identity, threshold_filter
from .similarity import (
    TfIdfCosine,
    WeightedFieldSimilarity,
    cosine_tokens,
    dice,
    jaccard,
    jaro,
    jaro_winkler,
    levenshtein_distance,
    levenshtein_similarity,
    monge_elkan,
    numeric_similarity,
    overlap_coefficient,
    string_cosine,
    string_jaccard,
)
from .tokenizers import (
    normalize,
    numeric_tokens,
    qgram_set,
    qgrams,
    record_text,
    token_set,
    word_tokens,
)

__all__ = [
    "CandidateGenerator",
    "CandidateSet",
    "LogisticCalibration",
    "TfIdfCosine",
    "WeightedFieldSimilarity",
    "all_pairs",
    "block_statistics",
    "build_inverted_index",
    "cosine_tokens",
    "dice",
    "fit_logistic",
    "identity",
    "jaccard",
    "jaro",
    "jaro_winkler",
    "levenshtein_distance",
    "levenshtein_similarity",
    "likelihood_map",
    "monge_elkan",
    "normalize",
    "numeric_similarity",
    "numeric_tokens",
    "overlap_coefficient",
    "qgram_set",
    "qgrams",
    "record_text",
    "reduction_ratio",
    "string_cosine",
    "string_jaccard",
    "threshold_filter",
    "token_blocking",
    "token_set",
    "word_tokens",
]
