"""Similarity functions over strings and token collections.

These produce the per-pair *likelihood* the framework sorts and thresholds by
(paper Sections 4.2 and 6: "the likelihood can be the similarity computed by
a given similarity function [25]").  Everything returns a score in [0, 1],
where 1 means identical.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Callable, Dict, Iterable, Mapping, Sequence, Set

from .tokenizers import token_set, word_tokens


def jaccard(a: Set[str], b: Set[str]) -> float:
    """|A ∩ B| / |A ∪ B|; 1.0 for two empty sets (vacuously identical)."""
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    intersection = len(a & b)
    return intersection / (len(a) + len(b) - intersection)


def dice(a: Set[str], b: Set[str]) -> float:
    """2|A ∩ B| / (|A| + |B|)."""
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    return 2.0 * len(a & b) / (len(a) + len(b))


def overlap_coefficient(a: Set[str], b: Set[str]) -> float:
    """|A ∩ B| / min(|A|, |B|)."""
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    return len(a & b) / min(len(a), len(b))


def cosine_tokens(a: Sequence[str], b: Sequence[str]) -> float:
    """Cosine similarity over token multiset vectors."""
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    counts_a = Counter(a)
    counts_b = Counter(b)
    dot = sum(counts_a[token] * counts_b.get(token, 0) for token in counts_a)
    norm_a = math.sqrt(sum(c * c for c in counts_a.values()))
    norm_b = math.sqrt(sum(c * c for c in counts_b.values()))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return dot / (norm_a * norm_b)


def levenshtein_distance(a: str, b: str) -> int:
    """Classic edit distance (insert/delete/substitute), O(len(a)*len(b))."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            )
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """1 - distance / max(len); both-empty strings are identical."""
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein_distance(a, b) / longest


def jaro(a: str, b: str) -> float:
    """Jaro similarity: transposition-tolerant matching for short strings."""
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    window = max(len(a), len(b)) // 2 - 1
    window = max(window, 0)
    matched_a = [False] * len(a)
    matched_b = [False] * len(b)
    matches = 0
    for i, char_a in enumerate(a):
        start = max(0, i - window)
        end = min(i + window + 1, len(b))
        for j in range(start, end):
            if matched_b[j] or b[j] != char_a:
                continue
            matched_a[i] = True
            matched_b[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i in range(len(a)):
        if not matched_a[i]:
            continue
        while not matched_b[j]:
            j += 1
        if a[i] != b[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    return (
        matches / len(a) + matches / len(b) + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler(a: str, b: str, prefix_weight: float = 0.1, max_prefix: int = 4) -> float:
    """Jaro-Winkler: Jaro boosted for a shared prefix.

    Raises:
        ValueError: if ``prefix_weight`` would push scores above 1
            (``prefix_weight * max_prefix`` must be <= 1).
    """
    if prefix_weight * max_prefix > 1.0:
        raise ValueError("prefix_weight * max_prefix must be <= 1")
    base = jaro(a, b)
    prefix = 0
    for char_a, char_b in zip(a, b):
        if char_a != char_b or prefix >= max_prefix:
            break
        prefix += 1
    return base + prefix * prefix_weight * (1.0 - base)


def monge_elkan(a: Sequence[str], b: Sequence[str],
                inner: Callable[[str, str], float] = jaro_winkler) -> float:
    """Monge-Elkan: average best inner-similarity of each token of ``a``
    against the tokens of ``b`` (asymmetric; symmetrise upstream if needed)."""
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    total = 0.0
    for token_a in a:
        total += max(inner(token_a, token_b) for token_b in b)
    return total / len(a)


class TfIdfCosine:
    """Cosine similarity with corpus-level inverse document frequency.

    Rare tokens (model numbers, author surnames) dominate the score, which is
    what makes TF-IDF the workhorse of record matching.

    Args:
        documents: the corpus, as pre-tokenised token sequences.
    """

    def __init__(self, documents: Iterable[Sequence[str]]) -> None:
        self._doc_count = 0
        document_frequency: Counter[str] = Counter()
        for tokens in documents:
            self._doc_count += 1
            document_frequency.update(set(tokens))
        self._idf: Dict[str, float] = {
            token: math.log((1 + self._doc_count) / (1 + df)) + 1.0
            for token, df in document_frequency.items()
        }
        self._default_idf = math.log(1 + self._doc_count) + 1.0

    @property
    def n_documents(self) -> int:
        return self._doc_count

    def idf(self, token: str) -> float:
        """IDF weight of a token (unseen tokens get the max weight)."""
        return self._idf.get(token, self._default_idf)

    def vector(self, tokens: Sequence[str]) -> Dict[str, float]:
        """The TF-IDF vector of a token sequence."""
        counts = Counter(tokens)
        return {token: count * self.idf(token) for token, count in counts.items()}

    def similarity(self, a: Sequence[str], b: Sequence[str]) -> float:
        """Cosine of the two TF-IDF vectors, in [0, 1]."""
        if not a and not b:
            return 1.0
        vec_a = self.vector(a)
        vec_b = self.vector(b)
        dot = sum(weight * vec_b.get(token, 0.0) for token, weight in vec_a.items())
        norm_a = math.sqrt(sum(w * w for w in vec_a.values()))
        norm_b = math.sqrt(sum(w * w for w in vec_b.values()))
        if norm_a == 0.0 or norm_b == 0.0:
            return 0.0
        return min(dot / (norm_a * norm_b), 1.0)


def string_jaccard(a: str, b: str) -> float:
    """Word-token Jaccard of two raw strings (normalised first)."""
    return jaccard(token_set(a), token_set(b))


def string_cosine(a: str, b: str) -> float:
    """Word-token cosine of two raw strings."""
    return cosine_tokens(word_tokens(a), word_tokens(b))


def numeric_similarity(a: float, b: float) -> float:
    """Relative closeness of two non-negative numbers: min/max ratio."""
    if a == b:
        return 1.0
    if a < 0 or b < 0:
        raise ValueError("numeric_similarity expects non-negative values")
    high = max(a, b)
    if high == 0.0:
        return 1.0
    return min(a, b) / high


class WeightedFieldSimilarity:
    """Record-level similarity: a weighted mix of per-field similarities.

    Args:
        fields: mapping of field name -> (similarity function over the two
            raw field values, weight).  Weights are normalised internally.

    Raises:
        ValueError: for an empty field map or non-positive total weight.
    """

    def __init__(
        self, fields: Mapping[str, tuple[Callable[[str, str], float], float]]
    ) -> None:
        if not fields:
            raise ValueError("at least one field is required")
        total = sum(weight for _, weight in fields.values())
        if total <= 0:
            raise ValueError("total field weight must be positive")
        self._fields = {
            name: (fn, weight / total) for name, (fn, weight) in fields.items()
        }

    def similarity(self, record_a: Mapping[str, str], record_b: Mapping[str, str]) -> float:
        """Weighted similarity over the configured fields; missing fields
        contribute 0."""
        score = 0.0
        for name, (fn, weight) in self._fields.items():
            value_a = record_a.get(name)
            value_b = record_b.get(name)
            if value_a is None or value_b is None:
                continue
            score += weight * fn(str(value_a), str(value_b))
        return min(max(score, 0.0), 1.0)
