"""Text normalisation and tokenization for record matching.

The machine-based step of the hybrid workflow (paper Section 2.3, following
CrowdER [25]) computes a similarity-based likelihood per pair.  All similarity
functions in :mod:`repro.matcher.similarity` consume tokens produced here.
"""

from __future__ import annotations

import re
import unicodedata
from typing import List, Sequence, Set

_WORD_RE = re.compile(r"[a-z0-9]+")
_WHITESPACE_RE = re.compile(r"\s+")


def normalize(text: str) -> str:
    """Lowercase, strip accents, collapse whitespace, drop outer blanks."""
    decomposed = unicodedata.normalize("NFKD", text)
    ascii_text = decomposed.encode("ascii", "ignore").decode("ascii")
    return _WHITESPACE_RE.sub(" ", ascii_text.lower()).strip()


def word_tokens(text: str) -> List[str]:
    """Alphanumeric word tokens of the normalised text, in order."""
    return _WORD_RE.findall(normalize(text))


def token_set(text: str) -> Set[str]:
    """Distinct word tokens."""
    return set(word_tokens(text))


def qgrams(text: str, q: int = 3, pad: bool = True) -> List[str]:
    """Character q-grams of the normalised text.

    Args:
        q: gram length (must be positive).
        pad: surround the string with ``q - 1`` boundary markers so prefixes
            and suffixes weigh as much as the middle (standard practice).

    Raises:
        ValueError: for non-positive ``q``.
    """
    if q < 1:
        raise ValueError(f"q must be >= 1, got {q}")
    base = normalize(text)
    if not base:
        return []
    if pad and q > 1:
        padding = "#" * (q - 1)
        base = f"{padding}{base}{padding}"
    if len(base) < q:
        return [base]
    return [base[i : i + q] for i in range(len(base) - q + 1)]


def qgram_set(text: str, q: int = 3) -> Set[str]:
    """Distinct q-grams."""
    return set(qgrams(text, q=q))


def numeric_tokens(text: str) -> List[str]:
    """The purely numeric tokens, useful for model numbers and years."""
    return [token for token in word_tokens(text) if token.isdigit()]


def record_text(fields: Sequence[str]) -> str:
    """Join several field values into one matching string."""
    return " ".join(str(value) for value in fields if value)
