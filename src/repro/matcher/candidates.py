"""Candidate generation: the machine half of the hybrid workflow.

Pipeline (paper Section 2.3): block the pair space, score every surviving
pair with a similarity function, convert scores to likelihoods, and keep the
pairs above a threshold.  The output — a list of
:class:`~repro.core.pairs.CandidatePair` — is exactly what the labeling
framework consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Sequence

from ..core.pairs import CandidatePair, Pair
from .blocking import all_pairs, token_blocking
from .likelihood import identity


@dataclass
class CandidateSet:
    """The scored candidate pairs plus bookkeeping for the experiments.

    Attributes:
        candidates: scored pairs with likelihood above the threshold, sorted
            by decreasing likelihood (the heuristic labeling order).
        threshold: the likelihood cut-off that was applied.
        n_scored: pairs that survived blocking and were scored.
        n_possible: size of the unblocked pair space.
    """

    candidates: List[CandidatePair]
    threshold: float
    n_scored: int
    n_possible: int

    def __len__(self) -> int:
        return len(self.candidates)

    def __iter__(self):
        return iter(self.candidates)

    def pairs(self) -> List[Pair]:
        return [c.pair for c in self.candidates]

    def above(self, threshold: float) -> List[CandidatePair]:
        """Re-threshold without re-scoring (for the Figure 11/12 sweeps).

        Raises:
            ValueError: when asking for a threshold below the one the set was
                generated with (those pairs were never kept).
        """
        if threshold < self.threshold:
            raise ValueError(
                f"candidates were generated at threshold {self.threshold}; "
                f"cannot recover pairs below it (asked {threshold})"
            )
        return [c for c in self.candidates if c.likelihood > threshold]


class CandidateGenerator:
    """Configurable machine-based candidate generation.

    Args:
        similarity: function scoring two record ids in [0, 1].  It receives
            the *ids*; closures over the record store keep this module free
            of any dataset dependency.
        tokens: record id -> tokens, used for blocking (None disables
            blocking and scores every pair — the paper's setting for the
            ~0.5M/1.2M pair spaces).
        source_of: record id -> source, for bipartite joins.
        max_block_size: stop-word cut-off for token blocking.
        calibration: similarity -> likelihood mapping (default identity).
    """

    def __init__(
        self,
        similarity: Callable[[Hashable, Hashable], float],
        tokens: Optional[Mapping[Hashable, Sequence[str]]] = None,
        source_of: Optional[Mapping[Hashable, str]] = None,
        max_block_size: Optional[int] = 200,
        calibration: Callable[[float], float] = identity,
    ) -> None:
        self._similarity = similarity
        self._tokens = tokens
        self._source_of = source_of
        self._max_block_size = max_block_size
        self._calibration = calibration

    def generate(
        self, record_ids: Sequence[Hashable], threshold: float = 0.0
    ) -> CandidateSet:
        """Score the (blocked) pair space and keep pairs above ``threshold``.

        Returns candidates sorted by decreasing likelihood with deterministic
        tie-breaks, ready to be used as the heuristic labeling order.
        """
        ids = list(record_ids)
        if self._tokens is not None:
            pair_space = token_blocking(
                {rid: self._tokens[rid] for rid in ids},
                max_block_size=self._max_block_size,
                source_of=self._source_of,
            )
        else:
            pair_space = all_pairs(ids, source_of=self._source_of)
        n_possible = len(all_pairs(ids, source_of=self._source_of)) if self._source_of else (
            len(ids) * (len(ids) - 1) // 2
        )
        candidates: List[CandidatePair] = []
        for pair in pair_space:
            likelihood = self._calibration(self._similarity(pair.left, pair.right))
            if likelihood > threshold:
                candidates.append(CandidatePair(pair, likelihood))
        candidates.sort(key=lambda c: (-c.likelihood, repr(c.pair.left), repr(c.pair.right)))
        return CandidateSet(
            candidates=candidates,
            threshold=threshold,
            n_scored=len(pair_space),
            n_possible=n_possible,
        )


def likelihood_map(candidates: Sequence[CandidatePair]) -> Dict[Pair, float]:
    """pair -> likelihood, for platform worker models and NF scheduling."""
    return {c.pair: c.likelihood for c in candidates}
