"""Blocking: cheaply pruning the quadratic pair space.

The hybrid workflow "first uses machine-based techniques to weed out a large
number of obvious non-matching pairs" (paper Section 1, following
CrowdER [25]).  Token blocking builds an inverted index from tokens to
records; only pairs sharing at least one (sufficiently rare) token survive.
For two-table (bipartite) joins, only cross-table pairs are produced.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Set

from ..core.pairs import Pair


def build_inverted_index(
    token_lists: Mapping[Hashable, Sequence[str]],
    max_block_size: Optional[int] = None,
) -> Dict[str, List[Hashable]]:
    """token -> record ids containing it, dropping oversized blocks.

    Args:
        token_lists: record id -> its tokens.
        max_block_size: tokens appearing in more than this many records are
            considered stop words and dropped (None keeps everything).
    """
    index: Dict[str, List[Hashable]] = defaultdict(list)
    for record_id, tokens in token_lists.items():
        for token in set(tokens):
            index[token].append(record_id)
    if max_block_size is not None:
        index = {
            token: ids for token, ids in index.items() if len(ids) <= max_block_size
        }
    return dict(index)


def token_blocking(
    token_lists: Mapping[Hashable, Sequence[str]],
    max_block_size: Optional[int] = 200,
    source_of: Optional[Mapping[Hashable, str]] = None,
) -> Set[Pair]:
    """All pairs sharing at least one indexed token.

    Args:
        token_lists: record id -> tokens.
        max_block_size: stop-word cut-off for block sizes.
        source_of: optional record id -> source name; when given, only pairs
            from *different* sources are produced (bipartite join).

    Returns:
        The candidate pair set (unordered pairs of record ids).
    """
    index = build_inverted_index(token_lists, max_block_size=max_block_size)
    pairs: Set[Pair] = set()
    for ids in index.values():
        for i in range(len(ids)):
            for j in range(i + 1, len(ids)):
                a, b = ids[i], ids[j]
                if source_of is not None and source_of.get(a) == source_of.get(b):
                    continue
                pairs.add(Pair(a, b))
    return pairs


def all_pairs(
    record_ids: Iterable[Hashable],
    source_of: Optional[Mapping[Hashable, str]] = None,
) -> Set[Pair]:
    """The unblocked pair space: every pair (or every cross-source pair).

    This is the paper's starting point — 496,506 pairs for the 997-record
    Paper dataset, 1,180,452 for Product — before likelihood thresholding.
    """
    ids = list(record_ids)
    pairs: Set[Pair] = set()
    for i in range(len(ids)):
        for j in range(i + 1, len(ids)):
            a, b = ids[i], ids[j]
            if source_of is not None and source_of.get(a) == source_of.get(b):
                continue
            pairs.add(Pair(a, b))
    return pairs


def block_statistics(
    token_lists: Mapping[Hashable, Sequence[str]],
    max_block_size: Optional[int] = 200,
) -> dict:
    """Diagnostics: block count, the largest block, and mean block size."""
    index = build_inverted_index(token_lists, max_block_size=max_block_size)
    sizes = [len(ids) for ids in index.values()]
    if not sizes:
        return {"n_blocks": 0, "max_block": 0, "mean_block": 0.0}
    return {
        "n_blocks": len(sizes),
        "max_block": max(sizes),
        "mean_block": sum(sizes) / len(sizes),
    }


def reduction_ratio(n_records: int, n_candidates: int) -> float:
    """Fraction of the quadratic pair space eliminated by blocking."""
    total = n_records * (n_records - 1) // 2
    if total == 0:
        return 0.0
    return 1.0 - n_candidates / total
