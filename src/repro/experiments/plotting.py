"""ASCII plots for the figure experiments.

The paper's figures are log-log scatter and line charts; in a terminal-only
reproduction we render them as character rasters.  These are deliberately
simple: fixed-size canvas, log or linear axes, one glyph per series.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

DEFAULT_WIDTH = 64
DEFAULT_HEIGHT = 18
GLYPHS = "ox+*#@"


def _scale(value: float, low: float, high: float, steps: int, log: bool) -> int:
    """Map ``value`` into [0, steps-1] along a linear or log axis."""
    if log:
        value, low, high = math.log10(value), math.log10(low), math.log10(high)
    if high <= low:
        return 0
    position = (value - low) / (high - low)
    return min(max(int(round(position * (steps - 1))), 0), steps - 1)


def ascii_plot(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = DEFAULT_WIDTH,
    height: int = DEFAULT_HEIGHT,
    log_x: bool = False,
    log_y: bool = False,
    title: Optional[str] = None,
) -> str:
    """Render named (x, y) series on one canvas.

    Args:
        series: name -> sequence of (x, y) points; each series gets a glyph.
        log_x, log_y: logarithmic axes (points with non-positive coordinates
            on a log axis are dropped).

    Raises:
        ValueError: if no plottable points remain.
    """
    points: List[Tuple[str, float, float]] = []
    for name, data in series.items():
        for x, y in data:
            if log_x and x <= 0:
                continue
            if log_y and y <= 0:
                continue
            points.append((name, x, y))
    if not points:
        raise ValueError("nothing to plot")
    xs = [x for _, x, _ in points]
    ys = [y for _, _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    canvas = [[" "] * width for _ in range(height)]
    glyph_of = {name: GLYPHS[i % len(GLYPHS)] for i, name in enumerate(series)}
    for name, x, y in points:
        column = _scale(x, x_low, x_high, width, log_x)
        row = height - 1 - _scale(y, y_low, y_high, height, log_y)
        canvas[row][column] = glyph_of[name]
    lines: List[str] = []
    if title:
        lines.append(title)
    y_label_high = f"{y_high:g}"
    y_label_low = f"{y_low:g}"
    margin = max(len(y_label_high), len(y_label_low)) + 1
    for i, row in enumerate(canvas):
        if i == 0:
            prefix = y_label_high.rjust(margin - 1) + "|"
        elif i == height - 1:
            prefix = y_label_low.rjust(margin - 1) + "|"
        else:
            prefix = " " * (margin - 1) + "|"
        lines.append(prefix + "".join(row))
    axis = " " * (margin - 1) + "+" + "-" * width
    lines.append(axis)
    x_axis_label = f"{x_low:g}".ljust(width - 8) + f"{x_high:g}".rjust(8)
    lines.append(" " * margin + x_axis_label)
    legend = "   ".join(f"{glyph_of[name]} {name}" for name in series)
    lines.append(" " * margin + legend)
    if log_x or log_y:
        scales = []
        if log_x:
            scales.append("log x")
        if log_y:
            scales.append("log y")
        lines.append(" " * margin + f"({', '.join(scales)})")
    return "\n".join(lines)


def plot_histogram(
    sizes: Sequence[float], counts: Sequence[float], title: Optional[str] = None
) -> str:
    """Figure-10-style log-log scatter of a cluster-size histogram."""
    return ascii_plot(
        {"clusters": list(zip(sizes, counts))},
        log_x=True,
        log_y=True,
        title=title,
    )


def plot_series(
    named_values: Dict[str, Sequence[float]],
    log_y: bool = False,
    title: Optional[str] = None,
) -> str:
    """Line-ish chart: each series plotted against its index (1-based)."""
    series = {
        name: [(i + 1, v) for i, v in enumerate(values)]
        for name, values in named_values.items()
    }
    return ascii_plot(series, log_y=log_y, title=title)
