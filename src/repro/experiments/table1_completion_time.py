"""Table 1: completion time of Parallel(ID) vs Non-Parallel on the platform.

The paper publishes the *same* HITs two ways (threshold 0.3, 20 pairs/HIT,
correct answers simulated): Non-Parallel posts one HIT at a time and waits;
Parallel(ID) posts every must-crowdsource pair as soon as it is identified.
The money cost is identical by construction; completion time drops by nearly
an order of magnitude (78 h -> 8 h on Paper, 97 h -> 14 h on Product).

Our platform reproduces the mechanism: publishing serially pays the pickup
delay once per HIT; publishing in parallel overlaps pickups across the
worker pool.
"""

from __future__ import annotations

from ..core.ordering import expected_order
from ..crowd.campaign import run_non_parallel, run_transitive
from ..crowd.latency import LognormalLatency
from ..crowd.platform import SimulatedPlatform
from ..crowd.worker import make_worker_pool
from .config import ExperimentConfig
from .harness import prepare
from .reporting import ExperimentResult


def _make_platform(config: ExperimentConfig, prepared, seed_offset: int) -> SimulatedPlatform:
    workers = make_worker_pool(config.n_workers, seed=config.seed + seed_offset)
    return SimulatedPlatform(
        workers=workers,
        truth=prepared.truth,
        likelihoods=prepared.likelihoods,
        latency=LognormalLatency(),
        batch_size=config.batch_size,
        n_assignments=config.n_assignments,
        seed=config.seed + seed_offset,
    )


def run(
    config: ExperimentConfig = ExperimentConfig(), threshold: float = 0.3
) -> ExperimentResult:
    """Reproduce Table 1 for the configured dataset.

    Workers answer perfectly (the paper simulated correct labels to isolate
    the timing difference), so both strategies label the same pairs.
    """
    prepared = prepare(config)
    candidates = expected_order(prepared.candidates_above(threshold))

    # Parallel(ID): the transitive campaign with instant decision.
    parallel_platform = _make_platform(config, prepared, seed_offset=1)
    parallel_report = run_transitive(
        candidates, parallel_platform, instant_decision=True
    )

    # Non-Parallel: "used the same HITs as Parallel(ID), but published a
    # single one per iteration" (paper Section 6.4) — replay the identical
    # HIT compositions serially, so cost is equal by construction.
    non_parallel_platform = _make_platform(config, prepared, seed_offset=2)
    non_parallel_report = run_non_parallel(
        parallel_report.hit_batches, non_parallel_platform
    )

    result = ExperimentResult(
        experiment_id="table1",
        title=f"Parallel(ID) vs Non-Parallel completion time ({config.dataset})",
        columns=["strategy", "n_hits", "hours", "cost_usd"],
        rows=[
            {
                "strategy": "non_parallel",
                "n_hits": non_parallel_report.n_hits,
                "hours": non_parallel_report.completion_hours,
                "cost_usd": non_parallel_report.cost,
            },
            {
                "strategy": "parallel_id",
                "n_hits": parallel_report.n_hits,
                "hours": parallel_report.completion_hours,
                "cost_usd": parallel_report.cost,
            },
        ],
    )
    speedup = (
        non_parallel_report.completion_hours / parallel_report.completion_hours
        if parallel_report.completion_hours
        else float("inf")
    )
    result.notes.append(f"speedup: {speedup:.1f}x (paper: ~10x on Paper, ~7x on Product)")
    result.notes.append(
        "paper reference: Paper 68 HITs, 78 h -> 8 h; Product 144 HITs, 97 h -> 14 h"
    )
    return result


def run_both(
    config: ExperimentConfig = ExperimentConfig(), threshold: float = 0.3
) -> dict:
    """Table 1, both dataset rows."""
    return {
        "paper": run(config.with_dataset("paper"), threshold),
        "product": run(config.with_dataset("product"), threshold),
    }
