"""Plain-text rendering of experiment results.

Every runner returns an :class:`ExperimentResult`; ``render()`` prints the
same rows/series the paper's tables and figures report, as aligned ASCII.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence


def format_value(value: Any) -> str:
    """Human formatting: thousands separators for ints, 2dp for floats."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        return f"{value:,.2f}"
    return str(value)


def render_table(columns: Sequence[str], rows: Sequence[Dict[str, Any]]) -> str:
    """Aligned ASCII table; missing cells render as '-'."""
    formatted = [
        [format_value(row.get(column, "-")) for column in columns] for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(line[i]) for line in formatted)) if formatted else len(str(column))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(line[i].rjust(widths[i]) for i in range(len(columns)))
        for line in formatted
    ]
    return "\n".join([header, separator, *body])


def render_series(name: str, values: Sequence[Any], per_line: int = 12) -> str:
    """A named numeric series, wrapped for readability."""
    chunks: List[str] = []
    formatted = [format_value(v) for v in values]
    for start in range(0, len(formatted), per_line):
        chunks.append(" ".join(formatted[start : start + per_line]))
    prefix = f"{name} ({len(values)} points):"
    if not chunks:
        return f"{prefix} (empty)"
    indent = " " * 2
    return "\n".join([prefix] + [indent + chunk for chunk in chunks])


@dataclass
class ExperimentResult:
    """Uniform result record for all table/figure reproductions.

    Attributes:
        experiment_id: e.g. "figure11" or "table2".
        title: human-readable description.
        columns: table column order for rendering.
        rows: the data rows (each a dict keyed by column).
        series: named numeric series (for figures that plot curves).
        notes: free-form remarks (calibration caveats, paper references).
    """

    experiment_id: str
    title: str
    columns: List[str] = field(default_factory=list)
    rows: List[Dict[str, Any]] = field(default_factory=list)
    series: Dict[str, List[Any]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        """The full plain-text report."""
        parts: List[str] = [f"== {self.experiment_id}: {self.title} =="]
        if self.rows:
            parts.append(render_table(self.columns, self.rows))
        for name, values in self.series.items():
            parts.append(render_series(name, values))
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n\n".join(parts)

    def row_lookup(self, **criteria: Any) -> Dict[str, Any]:
        """First row matching all the given column values.

        Raises:
            KeyError: when no row matches.
        """
        for row in self.rows:
            if all(row.get(column) == value for column, value in criteria.items()):
                return row
        raise KeyError(f"no row matching {criteria}")
