"""Figure 10: cluster-size distributions of the two datasets.

The paper plots, for each dataset, the number of ground-truth clusters of
each size (log-log).  Paper/Cora shows a heavy tail up to a 102-record
cluster; Product/Abt-Buy never exceeds size 6.  Our synthetic datasets hit
these histograms by construction, so this experiment doubles as a generator
sanity check.
"""

from __future__ import annotations

from ..datasets import histogram_of
from .config import ExperimentConfig
from .harness import generate_dataset
from .reporting import ExperimentResult


def run(config: ExperimentConfig = ExperimentConfig()) -> ExperimentResult:
    """Reproduce Figure 10 for the configured dataset."""
    dataset = generate_dataset(config)
    histogram = histogram_of(dataset.cluster_size_histogram())
    result = ExperimentResult(
        experiment_id="figure10",
        title=f"cluster-size distribution ({config.dataset})",
        columns=["cluster_size", "n_clusters"],
        rows=[
            {"cluster_size": size, "n_clusters": count} for size, count in histogram
        ],
    )
    result.series["cluster_sizes"] = [size for size, _ in histogram]
    result.series["cluster_counts"] = [count for _, count in histogram]
    summary = dataset.summary()
    result.notes.append(
        f"{summary['n_records']} records, {summary['n_entities']} entities, "
        f"max cluster {summary['max_cluster_size']} "
        f"(paper: Paper=997 records/max 102, Product=2173 records/max 6)"
    )
    return result


def run_both(config: ExperimentConfig = ExperimentConfig()) -> dict:
    """Figure 10(a) and 10(b): both datasets."""
    return {
        "paper": run(config.with_dataset("paper")),
        "product": run(config.with_dataset("product")),
    }
