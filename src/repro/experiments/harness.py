"""Experiment harness: dataset + candidate preparation with caching.

All table/figure runners share the same machine step (paper Section 2.3):
generate the dataset, tokenize, score the blocked pair space with TF-IDF
cosine, and keep every pair above the base threshold.  Preparation is cached
in-process because the figure sweeps re-use one candidate set at many
thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.oracle import GroundTruthOracle
from ..core.pairs import CandidatePair, Pair
from ..datasets import (
    Dataset,
    generate_paper_dataset,
    generate_product_dataset,
    paper_spec,
    product_spec,
)
from ..matcher import CandidateGenerator, CandidateSet, TfIdfCosine, word_tokens
from .config import ExperimentConfig


@dataclass
class PreparedDataset:
    """Everything an experiment needs about one dataset.

    Attributes:
        dataset: the generated records + ground truth.
        candidates: pairs above the base threshold, likelihood-sorted.
        truth: perfect oracle over the dataset's entities.
        likelihoods: pair -> machine likelihood (for worker difficulty and
            the NF answer policy).
    """

    dataset: Dataset
    candidates: CandidateSet
    truth: GroundTruthOracle
    likelihoods: Dict[Pair, float]

    def candidates_above(self, threshold: float) -> List[CandidatePair]:
        """Re-threshold the cached candidate set (likelihood-sorted)."""
        return self.candidates.above(threshold)


_CACHE: Dict[tuple, PreparedDataset] = {}


def generate_dataset(config: ExperimentConfig) -> Dataset:
    """Generate the configured dataset at the configured scale."""
    if config.dataset == "paper":
        spec = paper_spec(config.scale)
        return generate_paper_dataset(spec=spec, seed=config.seed)
    spec = product_spec(config.scale)
    return generate_product_dataset(spec=spec, seed=config.seed)


def prepare(config: ExperimentConfig, use_cache: bool = True) -> PreparedDataset:
    """Run the machine step for ``config``; cached across calls.

    Returns:
        The prepared dataset bundle; repeated calls with an equal config
        return the same object.
    """
    key = (
        config.dataset,
        config.scale,
        config.seed,
        config.base_threshold,
        config.max_block_size,
    )
    if use_cache and key in _CACHE:
        return _CACHE[key]

    dataset = generate_dataset(config)
    texts = dataset.texts()
    tokens = {record_id: word_tokens(text) for record_id, text in texts.items()}
    tfidf = TfIdfCosine(tokens.values())

    def similarity(a, b) -> float:
        return tfidf.similarity(tokens[a], tokens[b])

    source_of = dataset.source_of() if dataset.is_bipartite else None
    generator = CandidateGenerator(
        similarity,
        tokens=tokens,
        source_of=source_of,
        max_block_size=config.max_block_size,
    )
    candidate_set = generator.generate(dataset.ids(), threshold=config.base_threshold)
    prepared = PreparedDataset(
        dataset=dataset,
        candidates=candidate_set,
        truth=dataset.truth_oracle(),
        likelihoods={c.pair: c.likelihood for c in candidate_set},
    )
    if use_cache:
        _CACHE[key] = prepared
    return prepared


def clear_cache() -> None:
    """Drop all cached preparations (tests use this for isolation)."""
    _CACHE.clear()
