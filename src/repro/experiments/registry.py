"""Registry mapping experiment ids to their runners.

Used by ``python -m repro.experiments`` and the benchmark harness so every
paper table/figure is runnable by name.
"""

from __future__ import annotations

from typing import Callable, Dict

from . import (
    ablations,
    fig10_cluster_sizes,
    fig11_transitive_effectiveness,
    fig12_labeling_orders,
    fig13_14_parallel_iterations,
    fig15_optimizations,
    table1_completion_time,
    table2_quality,
)
from .config import ExperimentConfig
from .reporting import ExperimentResult


def _figure13(config: ExperimentConfig) -> ExperimentResult:
    return fig13_14_parallel_iterations.run(config, threshold=0.3)


def _figure14(config: ExperimentConfig) -> ExperimentResult:
    return fig13_14_parallel_iterations.run(config, threshold=0.4)


def _heuristic_gap(config: ExperimentConfig) -> ExperimentResult:
    return ablations.run_heuristic_gap_study(seed=config.seed)


RUNNERS: Dict[str, Callable[[ExperimentConfig], ExperimentResult]] = {
    "figure10": fig10_cluster_sizes.run,
    "figure11": fig11_transitive_effectiveness.run,
    "figure12": fig12_labeling_orders.run,
    "figure13": _figure13,
    "figure14": _figure14,
    "figure15": fig15_optimizations.run,
    "table1": table1_completion_time.run,
    "table2": table2_quality.run,
    "ablation-batch-size": ablations.run_batch_size_ablation,
    "ablation-worker-noise": ablations.run_worker_noise_ablation,
    "ablation-heuristic-gap": _heuristic_gap,
}

PAPER_RESULT_IDS = (
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "table1",
    "table2",
)


def run_experiment(
    experiment_id: str, config: ExperimentConfig = ExperimentConfig()
) -> ExperimentResult:
    """Run one experiment by id ("figure10" .. "table2").

    Raises:
        KeyError: for unknown experiment ids.
    """
    if experiment_id not in RUNNERS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(RUNNERS)}"
        )
    return RUNNERS[experiment_id](config)


def all_experiment_ids() -> list[str]:
    """Every runnable experiment id: paper results first, then ablations."""
    return list(RUNNERS)


def paper_experiment_ids() -> list[str]:
    """Only the paper's tables and figures, in paper order."""
    return list(PAPER_RESULT_IDS)
