"""Table 2: Transitive vs Non-Transitive with noisy workers.

The paper's end-to-end AMT comparison at threshold 0.3: number of HITs,
completion time, and result quality (pairwise precision/recall/F-measure),
with quality control via qualification tests and 3-way majority voting.

Expected shape:
* Paper dataset — Transitive cuts HITs by ~96 % and time by ~95 % at a few
  points of quality loss (wrong answers cascade through deductions in the
  big clusters);
* Product dataset — Transitive saves ~10 % of HITs, quality is essentially
  unchanged, and completion can take *longer* because publishing is
  iterative while Non-Transitive posts everything at once.
"""

from __future__ import annotations

from ..core.ordering import expected_order
from ..crowd.campaign import CampaignReport, run_non_transitive, run_transitive
from ..crowd.latency import LognormalLatency
from ..crowd.platform import SimulatedPlatform
from ..crowd.worker import QualificationTest, make_worker_pool
from ..er.metrics import evaluate_labels
from .config import ExperimentConfig
from .harness import prepare
from .reporting import ExperimentResult

# Per-dataset worker error profiles, calibrated against the paper's measured
# crowd behaviour (Table 2): on Cora the crowd over-reported "matching"
# (precision 68.8 % even without transitivity); on Abt-Buy it missed matches
# whose listings looked different (recall 68.9 % at 95.7 % precision).
WORKER_PROFILES = {
    "paper": {
        "base_error": 0.06,
        "ambiguous_error": 0.35,
        "false_positive_bias": 2.0,
        "false_negative_bias": 0.6,
        "systematic_fraction": 0.7,
    },
    "product": {
        "base_error": 0.04,
        "ambiguous_error": 0.35,
        "false_positive_bias": 0.35,
        "false_negative_bias": 1.1,
        "systematic_fraction": 0.7,
    },
}


def _make_platform(
    config: ExperimentConfig, prepared, seed_offset: int
) -> SimulatedPlatform:
    profile = WORKER_PROFILES[config.dataset]
    workers = make_worker_pool(
        config.n_workers,
        ambiguity_aware=True,
        qualification=QualificationTest(),
        seed=config.seed + seed_offset,
        **profile,
    )
    return SimulatedPlatform(
        workers=workers,
        truth=prepared.truth,
        likelihoods=prepared.likelihoods,
        latency=LognormalLatency(),
        batch_size=config.batch_size,
        n_assignments=config.n_assignments,
        seed=config.seed + seed_offset,
    )


def _row(name: str, report: CampaignReport, prepared) -> dict:
    quality = evaluate_labels(report.labels, prepared.truth)
    return {
        "strategy": name,
        "n_hits": report.n_hits,
        "hours": report.completion_hours,
        "cost_usd": report.cost,
        "precision": 100.0 * quality.precision,
        "recall": 100.0 * quality.recall,
        "f_measure": 100.0 * quality.f_measure,
    }


def run(
    config: ExperimentConfig = ExperimentConfig(), threshold: float = 0.3
) -> ExperimentResult:
    """Reproduce Table 2 for the configured dataset."""
    prepared = prepare(config)
    candidates = expected_order(prepared.candidates_above(threshold))

    non_transitive_platform = _make_platform(config, prepared, seed_offset=11)
    non_transitive = run_non_transitive(candidates, non_transitive_platform)

    transitive_platform = _make_platform(config, prepared, seed_offset=12)
    transitive = run_transitive(candidates, transitive_platform, instant_decision=True)

    result = ExperimentResult(
        experiment_id="table2",
        title=f"Transitive vs Non-Transitive with noisy workers ({config.dataset})",
        columns=[
            "strategy",
            "n_hits",
            "hours",
            "cost_usd",
            "precision",
            "recall",
            "f_measure",
        ],
        rows=[
            _row("non_transitive", non_transitive, prepared),
            _row("transitive", transitive, prepared),
        ],
    )
    hit_savings = (
        100.0 * (non_transitive.n_hits - transitive.n_hits) / non_transitive.n_hits
        if non_transitive.n_hits
        else 0.0
    )
    result.notes.append(
        f"HIT savings: {hit_savings:.1f}%; deduction conflicts observed: "
        f"{len(transitive.conflicts)}"
    )
    result.notes.append(
        "paper reference: Paper 1,465 -> 52 HITs (F 79.8% -> 74.3%); "
        "Product 158 -> 144 HITs (F 80.1% -> 79.7%, longer completion)"
    )
    return result


def run_both(
    config: ExperimentConfig = ExperimentConfig(), threshold: float = 0.3
) -> dict:
    """Table 2(a) and 2(b)."""
    return {
        "paper": run(config.with_dataset("paper"), threshold),
        "product": run(config.with_dataset("product"), threshold),
    }
