"""Figures 13 and 14: parallel vs non-parallel labeling iterations.

At a fixed threshold (0.3 for Figure 13, 0.4 for Figure 14), label the
candidates in the expected order and report how many pairs each iteration
crowdsources.  Non-Parallel publishes one pair per iteration (``C``
iterations for ``C`` crowdsourced pairs); Parallel compresses the run into a
handful of front-loaded rounds (paper: 1,237 pairs in 14 iterations, the
first publishing 908).  Higher thresholds leave a sparser candidate graph and
hence even fewer iterations.
"""

from __future__ import annotations

from ..core.ordering import expected_order
from ..core.parallel import label_parallel
from .config import ExperimentConfig
from .harness import prepare
from .reporting import ExperimentResult


def run(
    config: ExperimentConfig = ExperimentConfig(), threshold: float = 0.3
) -> ExperimentResult:
    """Reproduce Figure 13 (threshold 0.3) or 14 (threshold 0.4)."""
    prepared = prepare(config)
    candidates = expected_order(prepared.candidates_above(threshold))
    parallel = label_parallel(candidates, prepared.truth)
    figure = "figure13" if abs(threshold - 0.3) < 1e-9 else "figure14"
    result = ExperimentResult(
        experiment_id=figure,
        title=(
            f"parallel vs non-parallel iterations "
            f"({config.dataset}, threshold {threshold})"
        ),
        columns=["iteration", "parallel_pairs", "non_parallel_pairs"],
    )
    sizes = parallel.round_sizes()
    for index, size in enumerate(sizes, start=1):
        result.rows.append(
            {"iteration": index, "parallel_pairs": size, "non_parallel_pairs": 1}
        )
    result.series["parallel_round_sizes"] = sizes
    result.notes.append(
        f"parallel: {parallel.n_crowdsourced} crowdsourced pairs in "
        f"{parallel.n_rounds} iterations; non-parallel needs "
        f"{parallel.n_crowdsourced} iterations of one pair each"
    )
    result.notes.append(
        "paper reference shape (Fig 13a): 1,237 pairs in 14 iterations, "
        "first round 908; higher thresholds need fewer iterations (Fig 14)"
    )
    return result


def run_both(
    config: ExperimentConfig = ExperimentConfig(), threshold: float = 0.3
) -> dict:
    """Both datasets at one threshold (a or b panel of the figure)."""
    return {
        "paper": run(config.with_dataset("paper"), threshold),
        "product": run(config.with_dataset("product"), threshold),
    }
