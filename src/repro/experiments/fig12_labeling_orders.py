"""Figure 12: the number of crowdsourced pairs under different labeling
orders.

Optimal (matching first), Expected (decreasing likelihood), Random, and
Worst (non-matching first) orders across the threshold sweep.  Expected
shape: Worst >> Random > Expected >= Optimal, with the Worst order an order
of magnitude above Optimal on the Paper dataset at low thresholds.
"""

from __future__ import annotations

from ..core.ordering import expected_order, optimal_order, random_order, worst_order
from ..core.sequential import label_sequential
from .config import ExperimentConfig
from .harness import prepare
from .reporting import ExperimentResult

ORDER_NAMES = ("optimal", "expected", "random", "worst")


def run(config: ExperimentConfig = ExperimentConfig()) -> ExperimentResult:
    """Reproduce Figure 12 for the configured dataset."""
    prepared = prepare(config)
    result = ExperimentResult(
        experiment_id="figure12",
        title=f"crowdsourced pairs by labeling order ({config.dataset})",
        columns=["threshold", *ORDER_NAMES],
    )
    for threshold in config.thresholds:
        candidates = prepared.candidates_above(threshold)
        orders = {
            "optimal": optimal_order(candidates, prepared.truth),
            "expected": expected_order(candidates),
            "random": random_order(candidates, seed=config.seed),
            "worst": worst_order(candidates, prepared.truth),
        }
        row = {"threshold": threshold}
        for name, ordered in orders.items():
            row[name] = label_sequential(ordered, prepared.truth).n_crowdsourced
        result.rows.append(row)
    for name in ORDER_NAMES:
        result.series[name] = [row[name] for row in result.rows]
    result.notes.append(
        "paper reference shape: on Paper at threshold 0.1 the worst order needs "
        "139,181 pairs, ~26x the optimal order; the expected order stays close "
        "to optimal"
    )
    return result


def run_both(config: ExperimentConfig = ExperimentConfig()) -> dict:
    """Figure 12(a) and 12(b)."""
    return {
        "paper": run(config.with_dataset("paper")),
        "product": run(config.with_dataset("product")),
    }
