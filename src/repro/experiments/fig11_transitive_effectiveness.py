"""Figure 11: effectiveness of transitive relations.

For likelihood thresholds 0.5 down to 0.1, compare the number of
crowdsourced pairs with (Transitive) and without (Non-Transitive) transitive
relations, using the optimal labeling order as the paper does.  Expected
shape: Transitive saves ~95 % on the Paper dataset (big clusters) and a
threshold-dependent 0-27 % on Product (tiny clusters), with savings growing
as the threshold drops.
"""

from __future__ import annotations

from ..core.ordering import optimal_order
from ..core.sequential import label_sequential
from .config import ExperimentConfig
from .harness import prepare
from .reporting import ExperimentResult


def run(config: ExperimentConfig = ExperimentConfig()) -> ExperimentResult:
    """Reproduce Figure 11 for the configured dataset."""
    prepared = prepare(config)
    result = ExperimentResult(
        experiment_id="figure11",
        title=f"effectiveness of transitive relations ({config.dataset})",
        columns=[
            "threshold",
            "non_transitive",
            "transitive",
            "savings_pct",
        ],
    )
    for threshold in config.thresholds:
        candidates = prepared.candidates_above(threshold)
        ordered = optimal_order(candidates, prepared.truth)
        transitive = label_sequential(ordered, prepared.truth)
        non_transitive = len(candidates)  # the baseline crowdsources all
        savings = (
            100.0 * (non_transitive - transitive.n_crowdsourced) / non_transitive
            if non_transitive
            else 0.0
        )
        result.rows.append(
            {
                "threshold": threshold,
                "non_transitive": non_transitive,
                "transitive": transitive.n_crowdsourced,
                "savings_pct": savings,
            }
        )
    result.series["non_transitive"] = [row["non_transitive"] for row in result.rows]
    result.series["transitive"] = [row["transitive"] for row in result.rows]
    result.notes.append(
        "paper reference shape: Paper saves ~95% (29,281 -> 1,065 at 0.3); "
        "Product saves ~20-26% at low thresholds (8,315 -> 6,134 at 0.2)"
    )
    return result


def run_both(config: ExperimentConfig = ExperimentConfig()) -> dict:
    """Figure 11(a) and 11(b)."""
    return {
        "paper": run(config.with_dataset("paper")),
        "product": run(config.with_dataset("product")),
    }
