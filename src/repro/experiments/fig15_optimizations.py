"""Figure 15: the instant-decision and non-matching-first optimisations.

Simulates answer-at-a-time crowdsourcing at threshold 0.3 for three labelers:

* Parallel          — round-based; publishes nothing until a round drains;
* Parallel(ID)      — re-decides after every answer (instant decision);
* Parallel(ID+NF)   — ID plus workers answering least-likely-matching first.

The figure plots how many published pairs remain available on the platform
as answers accumulate.  Expected shape: Parallel's pool periodically drains
to zero (idle workers); ID keeps it stocked; ID+NF keeps it fullest.
"""

from __future__ import annotations

from ..engine.dispatch import AnswerPolicy, InstantDispatch
from ..core.ordering import expected_order
from .config import ExperimentConfig
from .harness import prepare
from .reporting import ExperimentResult

VARIANTS = ("parallel", "parallel_id", "parallel_id_nf")


def run(
    config: ExperimentConfig = ExperimentConfig(), threshold: float = 0.3
) -> ExperimentResult:
    """Reproduce Figure 15 for the configured dataset."""
    prepared = prepare(config)
    candidates = expected_order(prepared.candidates_above(threshold))
    labelers = {
        "parallel": InstantDispatch(
            instant_decision=False, answer_policy=AnswerPolicy.RANDOM, seed=config.seed
        ),
        "parallel_id": InstantDispatch(
            instant_decision=True, answer_policy=AnswerPolicy.RANDOM, seed=config.seed
        ),
        "parallel_id_nf": InstantDispatch(
            instant_decision=True,
            answer_policy=AnswerPolicy.NON_MATCHING_FIRST,
            seed=config.seed,
        ),
    }
    result = ExperimentResult(
        experiment_id="figure15",
        title=(
            f"availability under optimisation techniques "
            f"({config.dataset}, threshold {threshold})"
        ),
        columns=[
            "variant",
            "crowdsourced",
            "mean_available",
            "min_available_mid_run",
            "starvation_events",
        ],
    )
    for name, labeler in labelers.items():
        run_record = labeler.run(candidates, prepared.truth)
        trace = run_record.trace
        interior = trace[:-1] if trace else []
        result.rows.append(
            {
                "variant": name,
                "crowdsourced": run_record.n_crowdsourced,
                "mean_available": run_record.mean_availability(),
                "min_available_mid_run": (
                    min(p.n_available for p in interior) if interior else 0
                ),
                "starvation_events": run_record.starvation_count(below=1),
            }
        )
        result.series[f"{name}_available"] = [p.n_available for p in trace]
    result.notes.append(
        "paper reference shape: Parallel drains to ~1 available pair between "
        "rounds while ID keeps hundreds available and ID+NF the most "
        "(e.g. 1 vs 219 vs 281 after 1,420 answers on Product)"
    )
    return result


def run_both(
    config: ExperimentConfig = ExperimentConfig(), threshold: float = 0.3
) -> dict:
    """Figure 15(a) and 15(b)."""
    return {
        "paper": run(config.with_dataset("paper"), threshold),
        "product": run(config.with_dataset("product"), threshold),
    }
