"""Shared experiment configuration.

Every experiment runner takes an :class:`ExperimentConfig`; the defaults
reproduce the paper's setup at full dataset scale.  ``scale`` shrinks the
synthetic datasets proportionally (preserving the cluster-size *shape*) so
the benchmark suite stays fast; the experiment scripts run at scale 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

PAPER_THRESHOLDS: Tuple[float, ...] = (0.5, 0.4, 0.3, 0.2, 0.1)


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by the table/figure reproductions.

    Attributes:
        dataset: "paper" (Cora-like) or "product" (Abt-Buy-like).
        scale: dataset size multiplier in (0, 1]; 1.0 is the paper's size.
        seed: master seed for data generation and simulations.
        base_threshold: the lowest likelihood ever needed; candidates are
            generated once at this threshold and re-thresholded per run.
        thresholds: the sweep used by Figures 11 and 12.
        max_block_size: token-blocking stop-word cut-off.
        batch_size: pairs per HIT (paper: 20).
        n_assignments: assignment replication per HIT (paper: 3).
        n_workers: simulated worker pool size for platform experiments.
        worker_base_error: error rate of workers on unambiguous pairs.
        worker_ambiguous_error: error rate on maximally ambiguous pairs.
        worker_false_positive_bias: error multiplier on truly non-matching
            pairs (real crowds over-report "matching"; the paper's Cora run
            shows 68.8 % precision even without transitivity).
    """

    dataset: str = "paper"
    scale: float = 1.0
    seed: int = 0
    base_threshold: float = 0.1
    thresholds: Tuple[float, ...] = PAPER_THRESHOLDS
    max_block_size: int = 250
    batch_size: int = 20
    n_assignments: int = 3
    n_workers: int = 30
    worker_base_error: float = 0.05
    worker_ambiguous_error: float = 0.35
    worker_false_positive_bias: float = 2.5

    def __post_init__(self) -> None:
        if self.dataset not in ("paper", "product"):
            raise ValueError(f"unknown dataset {self.dataset!r}")
        if not 0.0 < self.scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {self.scale}")
        if not all(t >= self.base_threshold for t in self.thresholds):
            raise ValueError("every sweep threshold must be >= base_threshold")

    def with_dataset(self, dataset: str) -> "ExperimentConfig":
        """The same config pointed at the other dataset."""
        from dataclasses import replace

        return replace(self, dataset=dataset)
